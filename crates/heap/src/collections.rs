//! Heap-resident collections: the `java.util` of this substrate.
//!
//! The paper's programming interface (§5.1) shows NRMI applied to JDK
//! collection types — `class RestorableHashMap extends java.util.HashMap
//! implements java.rmi.Restorable` — and its motivating applications
//! index shared data through lists and maps. Those collections must
//! themselves live *in the object heap* (not in Rust memory) so that
//! they serialize, alias, and restore like any other object graph.
//!
//! Two collections are provided, both operating through [`HeapAccess`]
//! so the same code runs locally, on a server copy, or over remote
//! pointers:
//!
//! * [`HList`] — an `ArrayList`: a header object with a `size` field and
//!   an over-allocated backing array, grown by reallocation;
//! * [`HMap`] — a `HashMap` with string keys: bucket array of
//!   association-list entries, resized at a 0.75 load factor.
//!
//! Handles ([`HList`], [`HMap`]) are plain wrappers around the header
//! object's [`ObjId`]; pass that id through remote calls and re-wrap on
//! the other side.

use crate::class::{ClassId, ClassRegistry, FieldType};
use crate::heap_impl::HeapAccess;
use crate::value::{ObjId, Value};
use crate::Result;

/// Class ids for the collection library. Register once per registry via
/// [`register_collections`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollectionClasses {
    /// `ArrayList` header: `{ int size; Object[] items; }`.
    pub list: ClassId,
    /// `HashMap` header: `{ int size; Object[] buckets; }`.
    pub map: ClassId,
    /// Map entry: `{ String key; Object value; MapEntry next; }`.
    pub entry: ClassId,
    /// The shared `Object[]` array class.
    pub array: ClassId,
}

/// Registers the collection classes. Headers are **restorable** (the
/// `RestorableHashMap` pattern): passing a list or map to a remote
/// method restores its mutations in place.
pub fn register_collections(registry: &mut ClassRegistry) -> CollectionClasses {
    let array = registry
        .by_name("Object[]")
        .unwrap_or_else(|| registry.define_array("Object[]", FieldType::Any));
    let list = registry
        .define("ArrayList")
        .field_int("size")
        .field_ref("items")
        .restorable()
        .register();
    let map = registry
        .define("HashMap")
        .field_int("size")
        .field_ref("buckets")
        .restorable()
        .register();
    let entry = registry
        .define("MapEntry")
        .field_str("key")
        .field_any("value")
        .field_ref("next")
        .serializable()
        .register();
    CollectionClasses {
        list,
        map,
        entry,
        array,
    }
}

/// Resolves [`CollectionClasses`] from a registry where
/// [`register_collections`] already ran (e.g. on the other side of a
/// connection).
///
/// # Panics
/// Panics if the collection classes are missing from the registry.
pub fn collection_classes(registry: &crate::class::ClassRegistry) -> CollectionClasses {
    CollectionClasses {
        list: registry.by_name("ArrayList").expect("ArrayList registered"),
        map: registry.by_name("HashMap").expect("HashMap registered"),
        entry: registry.by_name("MapEntry").expect("MapEntry registered"),
        array: registry.by_name("Object[]").expect("Object[] registered"),
    }
}

/// A handle to a heap-resident `ArrayList`.
///
/// ```
/// use nrmi_heap::collections::{register_collections, HList};
/// use nrmi_heap::{ClassRegistry, Heap, Value};
///
/// # fn main() -> Result<(), nrmi_heap::HeapError> {
/// let mut reg = ClassRegistry::new();
/// let classes = register_collections(&mut reg);
/// let mut heap = Heap::new(reg.snapshot());
/// let list = HList::new(&mut heap, classes)?;
/// list.push(&mut heap, Value::Int(7))?;
/// list.push(&mut heap, Value::Str("seven".into()))?;
/// assert_eq!(list.len(&mut heap)?, 2);
/// assert_eq!(list.get(&mut heap, 0)?, Value::Int(7));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HList {
    id: ObjId,
    classes: CollectionClasses,
}

impl HList {
    /// Allocates an empty list.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn new(heap: &mut dyn HeapAccess, classes: CollectionClasses) -> Result<Self> {
        let items = heap.alloc_array_raw(classes.array, vec![Value::Null; 4])?;
        let id = heap.alloc_raw(classes.list, vec![Value::Int(0), Value::Ref(items)])?;
        Ok(HList { id, classes })
    }

    /// Wraps an existing list header (e.g. received through a call).
    pub fn from_id(id: ObjId, classes: CollectionClasses) -> Self {
        HList { id, classes }
    }

    /// The header object's id (what you pass as a call argument).
    pub fn id(&self) -> ObjId {
        self.id
    }

    /// Number of elements.
    ///
    /// # Errors
    /// Propagates heap access failures.
    pub fn len(&self, heap: &mut dyn HeapAccess) -> Result<usize> {
        Ok(heap.get_field(self.id, "size")?.as_int().unwrap_or(0) as usize)
    }

    /// True if the list has no elements.
    ///
    /// # Errors
    /// Propagates heap access failures.
    pub fn is_empty(&self, heap: &mut dyn HeapAccess) -> Result<bool> {
        Ok(self.len(heap)? == 0)
    }

    /// Appends a value, growing the backing array by doubling when full
    /// (exactly `ArrayList.add`).
    ///
    /// # Errors
    /// Propagates heap access failures.
    pub fn push(&self, heap: &mut dyn HeapAccess, value: Value) -> Result<()> {
        let size = self.len(heap)?;
        let mut items = heap
            .get_field(self.id, "items")?
            .as_ref_id()
            .expect("list backing array");
        let capacity = heap.slot_count(items)?;
        if size == capacity {
            let grown =
                heap.alloc_array_raw(self.classes.array, vec![Value::Null; capacity * 2])?;
            for i in 0..size {
                let v = heap.get_element(items, i)?;
                heap.set_element(grown, i, v)?;
            }
            heap.set_field(self.id, "items", Value::Ref(grown))?;
            items = grown;
        }
        heap.set_element(items, size, value)?;
        heap.set_field(self.id, "size", Value::Int((size + 1) as i32))?;
        Ok(())
    }

    /// Reads element `index`.
    ///
    /// # Errors
    /// Fails for out-of-range indices.
    pub fn get(&self, heap: &mut dyn HeapAccess, index: usize) -> Result<Value> {
        let size = self.len(heap)?;
        if index >= size {
            return Err(crate::HeapError::ArrayIndexOutOfBounds { index, len: size });
        }
        let items = heap
            .get_field(self.id, "items")?
            .as_ref_id()
            .expect("backing array");
        heap.get_element(items, index)
    }

    /// Writes element `index`.
    ///
    /// # Errors
    /// Fails for out-of-range indices.
    pub fn set(&self, heap: &mut dyn HeapAccess, index: usize, value: Value) -> Result<()> {
        let size = self.len(heap)?;
        if index >= size {
            return Err(crate::HeapError::ArrayIndexOutOfBounds { index, len: size });
        }
        let items = heap
            .get_field(self.id, "items")?
            .as_ref_id()
            .expect("backing array");
        heap.set_element(items, index, value)
    }

    /// Collects all elements into a `Vec`.
    ///
    /// # Errors
    /// Propagates heap access failures.
    pub fn to_vec(&self, heap: &mut dyn HeapAccess) -> Result<Vec<Value>> {
        let size = self.len(heap)?;
        let items = heap
            .get_field(self.id, "items")?
            .as_ref_id()
            .expect("backing array");
        (0..size).map(|i| heap.get_element(items, i)).collect()
    }
}

/// A handle to a heap-resident `HashMap<String, Value>`.
///
/// ```
/// use nrmi_heap::collections::{register_collections, HMap};
/// use nrmi_heap::{ClassRegistry, Heap, Value};
///
/// # fn main() -> Result<(), nrmi_heap::HeapError> {
/// let mut reg = ClassRegistry::new();
/// let classes = register_collections(&mut reg);
/// let mut heap = Heap::new(reg.snapshot());
/// let map = HMap::new(&mut heap, classes)?;
/// map.put(&mut heap, "answer", Value::Int(42))?;
/// assert_eq!(map.get(&mut heap, "answer")?, Some(Value::Int(42)));
/// assert_eq!(map.remove(&mut heap, "answer")?, Some(Value::Int(42)));
/// assert!(map.is_empty(&mut heap)?);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HMap {
    id: ObjId,
    classes: CollectionClasses,
}

const INITIAL_BUCKETS: usize = 8;

fn bucket_of(key: &str, buckets: usize) -> usize {
    // FNV-1a, stable across platforms (determinism matters: both sides
    // must lay out isomorphic maps identically).
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    (hash % buckets as u64) as usize
}

impl HMap {
    /// Allocates an empty map.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn new(heap: &mut dyn HeapAccess, classes: CollectionClasses) -> Result<Self> {
        let buckets = heap.alloc_array_raw(classes.array, vec![Value::Null; INITIAL_BUCKETS])?;
        let id = heap.alloc_raw(classes.map, vec![Value::Int(0), Value::Ref(buckets)])?;
        Ok(HMap { id, classes })
    }

    /// Wraps an existing map header.
    pub fn from_id(id: ObjId, classes: CollectionClasses) -> Self {
        HMap { id, classes }
    }

    /// The header object's id.
    pub fn id(&self) -> ObjId {
        self.id
    }

    /// Number of entries.
    ///
    /// # Errors
    /// Propagates heap access failures.
    pub fn len(&self, heap: &mut dyn HeapAccess) -> Result<usize> {
        Ok(heap.get_field(self.id, "size")?.as_int().unwrap_or(0) as usize)
    }

    /// True if the map has no entries.
    ///
    /// # Errors
    /// Propagates heap access failures.
    pub fn is_empty(&self, heap: &mut dyn HeapAccess) -> Result<bool> {
        Ok(self.len(heap)? == 0)
    }

    /// Inserts or updates `key`, returning the previous value if any.
    ///
    /// # Errors
    /// Propagates heap access failures.
    pub fn put(&self, heap: &mut dyn HeapAccess, key: &str, value: Value) -> Result<Option<Value>> {
        let buckets = heap
            .get_field(self.id, "buckets")?
            .as_ref_id()
            .expect("buckets");
        let capacity = heap.slot_count(buckets)?;
        let slot = bucket_of(key, capacity);
        // Walk the chain looking for the key.
        let mut cursor = heap.get_element(buckets, slot)?.as_ref_id();
        while let Some(entry) = cursor {
            if heap.get_field(entry, "key")?.as_str() == Some(key) {
                let old = heap.get_field(entry, "value")?;
                heap.set_field(entry, "value", value)?;
                return Ok(Some(old));
            }
            cursor = heap.get_field(entry, "next")?.as_ref_id();
        }
        // Prepend a new entry.
        let head = heap.get_element(buckets, slot)?;
        let entry = heap.alloc_raw(
            self.classes.entry,
            vec![Value::Str(key.to_owned()), value, head],
        )?;
        heap.set_element(buckets, slot, Value::Ref(entry))?;
        let size = self.len(heap)? + 1;
        heap.set_field(self.id, "size", Value::Int(size as i32))?;
        if size * 4 > capacity * 3 {
            self.rehash(heap, capacity * 2)?;
        }
        Ok(None)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    /// Propagates heap access failures.
    pub fn get(&self, heap: &mut dyn HeapAccess, key: &str) -> Result<Option<Value>> {
        let buckets = heap
            .get_field(self.id, "buckets")?
            .as_ref_id()
            .expect("buckets");
        let capacity = heap.slot_count(buckets)?;
        let mut cursor = heap
            .get_element(buckets, bucket_of(key, capacity))?
            .as_ref_id();
        while let Some(entry) = cursor {
            if heap.get_field(entry, "key")?.as_str() == Some(key) {
                return Ok(Some(heap.get_field(entry, "value")?));
            }
            cursor = heap.get_field(entry, "next")?.as_ref_id();
        }
        Ok(None)
    }

    /// Removes `key`, returning its value if present.
    ///
    /// # Errors
    /// Propagates heap access failures.
    pub fn remove(&self, heap: &mut dyn HeapAccess, key: &str) -> Result<Option<Value>> {
        let buckets = heap
            .get_field(self.id, "buckets")?
            .as_ref_id()
            .expect("buckets");
        let capacity = heap.slot_count(buckets)?;
        let slot = bucket_of(key, capacity);
        let mut prev: Option<ObjId> = None;
        let mut cursor = heap.get_element(buckets, slot)?.as_ref_id();
        while let Some(entry) = cursor {
            let next = heap.get_field(entry, "next")?;
            if heap.get_field(entry, "key")?.as_str() == Some(key) {
                let value = heap.get_field(entry, "value")?;
                match prev {
                    Some(p) => heap.set_field(p, "next", next)?,
                    None => heap.set_element(buckets, slot, next)?,
                }
                let size = self.len(heap)? - 1;
                heap.set_field(self.id, "size", Value::Int(size as i32))?;
                return Ok(Some(value));
            }
            prev = Some(entry);
            cursor = next.as_ref_id();
        }
        Ok(None)
    }

    /// All `(key, value)` pairs, in bucket order.
    ///
    /// # Errors
    /// Propagates heap access failures.
    pub fn entries(&self, heap: &mut dyn HeapAccess) -> Result<Vec<(String, Value)>> {
        let buckets = heap
            .get_field(self.id, "buckets")?
            .as_ref_id()
            .expect("buckets");
        let capacity = heap.slot_count(buckets)?;
        let mut out = Vec::new();
        for slot in 0..capacity {
            let mut cursor = heap.get_element(buckets, slot)?.as_ref_id();
            while let Some(entry) = cursor {
                let key = heap
                    .get_field(entry, "key")?
                    .as_str()
                    .map(str::to_owned)
                    .unwrap_or_default();
                out.push((key, heap.get_field(entry, "value")?));
                cursor = heap.get_field(entry, "next")?.as_ref_id();
            }
        }
        Ok(out)
    }

    fn rehash(&self, heap: &mut dyn HeapAccess, new_capacity: usize) -> Result<()> {
        let entries = self.entries_raw(heap)?;
        let fresh = heap.alloc_array_raw(self.classes.array, vec![Value::Null; new_capacity])?;
        for entry in entries {
            let key = heap
                .get_field(entry, "key")?
                .as_str()
                .map(str::to_owned)
                .unwrap_or_default();
            let slot = bucket_of(&key, new_capacity);
            let head = heap.get_element(fresh, slot)?;
            heap.set_field(entry, "next", head)?;
            heap.set_element(fresh, slot, Value::Ref(entry))?;
        }
        heap.set_field(self.id, "buckets", Value::Ref(fresh))?;
        Ok(())
    }

    fn entries_raw(&self, heap: &mut dyn HeapAccess) -> Result<Vec<ObjId>> {
        let buckets = heap
            .get_field(self.id, "buckets")?
            .as_ref_id()
            .expect("buckets");
        let capacity = heap.slot_count(buckets)?;
        let mut out = Vec::new();
        for slot in 0..capacity {
            let mut cursor = heap.get_element(buckets, slot)?.as_ref_id();
            while let Some(entry) = cursor {
                out.push(entry);
                cursor = heap.get_field(entry, "next")?.as_ref_id();
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassRegistry, Heap};

    fn setup() -> (Heap, CollectionClasses) {
        let mut reg = ClassRegistry::new();
        let classes = register_collections(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    #[test]
    fn list_push_get_grow() {
        let (mut heap, classes) = setup();
        let list = HList::new(&mut heap, classes).unwrap();
        assert!(list.is_empty(&mut heap).unwrap());
        for i in 0..100 {
            list.push(&mut heap, Value::Int(i)).unwrap();
        }
        assert_eq!(list.len(&mut heap).unwrap(), 100);
        assert_eq!(list.get(&mut heap, 0).unwrap(), Value::Int(0));
        assert_eq!(list.get(&mut heap, 99).unwrap(), Value::Int(99));
        assert!(list.get(&mut heap, 100).is_err());
        list.set(&mut heap, 5, Value::Str("five".into())).unwrap();
        assert_eq!(list.get(&mut heap, 5).unwrap(), Value::Str("five".into()));
        let all = list.to_vec(&mut heap).unwrap();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn list_survives_wire_roundtrip() {
        let (mut heap, classes) = setup();
        let list = HList::new(&mut heap, classes).unwrap();
        for i in 0..10 {
            list.push(&mut heap, Value::Int(i * i)).unwrap();
        }
        let enc = nrmi_wire_roundtrip(&heap, list.id());
        let mut dst = Heap::new(heap.registry_handle().clone());
        let dec = crate_test_deserialize(&enc, &mut dst);
        let list2 = HList::from_id(dec, classes);
        assert_eq!(list2.len(&mut dst).unwrap(), 10);
        assert_eq!(list2.get(&mut dst, 3).unwrap(), Value::Int(9));
    }

    // The heap crate cannot depend on nrmi-wire (it is the other way
    // around), so the round trip here is a deep copy — the structural
    // equivalent.
    fn nrmi_wire_roundtrip(heap: &Heap, root: ObjId) -> (Vec<ObjId>, Heap) {
        let mut dst = Heap::new(heap.registry_handle().clone());
        let map = crate::copy::deep_copy_between(heap, &[root], &mut dst).unwrap();
        (vec![map[&root]], dst)
    }

    fn crate_test_deserialize(enc: &(Vec<ObjId>, Heap), dst: &mut Heap) -> ObjId {
        let (roots, src) = enc;
        let map = crate::copy::deep_copy_between(src, roots, dst).unwrap();
        map[&roots[0]]
    }

    #[test]
    fn map_put_get_update_remove() {
        let (mut heap, classes) = setup();
        let map = HMap::new(&mut heap, classes).unwrap();
        assert!(map.is_empty(&mut heap).unwrap());
        assert_eq!(map.put(&mut heap, "a", Value::Int(1)).unwrap(), None);
        assert_eq!(map.put(&mut heap, "b", Value::Int(2)).unwrap(), None);
        assert_eq!(map.get(&mut heap, "a").unwrap(), Some(Value::Int(1)));
        assert_eq!(map.get(&mut heap, "missing").unwrap(), None);
        // Update returns the old value.
        assert_eq!(
            map.put(&mut heap, "a", Value::Int(10)).unwrap(),
            Some(Value::Int(1))
        );
        assert_eq!(map.get(&mut heap, "a").unwrap(), Some(Value::Int(10)));
        assert_eq!(map.len(&mut heap).unwrap(), 2);
        // Remove.
        assert_eq!(map.remove(&mut heap, "a").unwrap(), Some(Value::Int(10)));
        assert_eq!(map.remove(&mut heap, "a").unwrap(), None);
        assert_eq!(map.len(&mut heap).unwrap(), 1);
    }

    #[test]
    fn map_rehashes_and_keeps_all_entries() {
        let (mut heap, classes) = setup();
        let map = HMap::new(&mut heap, classes).unwrap();
        for i in 0..200 {
            map.put(&mut heap, &format!("key-{i}"), Value::Int(i))
                .unwrap();
        }
        assert_eq!(map.len(&mut heap).unwrap(), 200);
        for i in 0..200 {
            assert_eq!(
                map.get(&mut heap, &format!("key-{i}")).unwrap(),
                Some(Value::Int(i)),
                "key-{i} lost during rehash"
            );
        }
        assert_eq!(map.entries(&mut heap).unwrap().len(), 200);
    }

    #[test]
    fn map_handles_chained_collisions() {
        let (mut heap, classes) = setup();
        let map = HMap::new(&mut heap, classes).unwrap();
        // With 8 buckets, 24 keys guarantee chains before the first
        // rehash threshold would allow them to disperse fully.
        for i in 0..6 {
            map.put(&mut heap, &format!("k{i}"), Value::Int(i)).unwrap();
        }
        for i in 0..6 {
            assert_eq!(
                map.get(&mut heap, &format!("k{i}")).unwrap(),
                Some(Value::Int(i))
            );
        }
        // Remove from the middle of a chain.
        map.remove(&mut heap, "k2").unwrap();
        assert_eq!(map.get(&mut heap, "k2").unwrap(), None);
        assert_eq!(map.get(&mut heap, "k3").unwrap(), Some(Value::Int(3)));
    }

    #[test]
    fn collection_classes_resolvable_by_name() {
        let mut reg = ClassRegistry::new();
        let created = register_collections(&mut reg);
        let resolved = collection_classes(&reg);
        assert_eq!(created.list, resolved.list);
        assert_eq!(created.map, resolved.map);
        assert_eq!(created.entry, resolved.entry);
        assert_eq!(created.array, resolved.array);
    }

    #[test]
    fn bucket_hash_is_deterministic() {
        assert_eq!(bucket_of("hello", 8), bucket_of("hello", 8));
        // FNV-1a of "" is the offset basis; just pin stability.
        let h1 = bucket_of("a", 1024);
        let h2 = bucket_of("a", 1024);
        assert_eq!(h1, h2);
    }
}
