//! Alias-preserving deep copies within and across heaps.
//!
//! Call-by-copy middleware deep-copies everything reachable from the
//! arguments to the callee's address space (§2). Crucially, sharing must
//! be *replicated, not duplicated*: the paper (§4.1) calls out the common
//! misconception that copy-restore implies multiple copies for shared
//! structure. This module is the in-process model of that marshalling
//! step, used by tests and by the loopback fast path; the real wire
//! marshalling lives in `nrmi-wire` and obeys the same contract.

use std::collections::HashMap;

use crate::heap_impl::Heap;
use crate::traverse::LinearMap;
use crate::value::{ObjId, Value};
use crate::Result;

/// Deep-copies everything reachable from `roots` in `src` into `dst`,
/// preserving aliasing and cycles. Returns the mapping from source ids to
/// destination ids (a bijection on the reachable set).
///
/// The destination ids are allocated in linear-map order, which is what
/// makes position-based matching between the two sides work.
///
/// # Errors
/// Propagates dangling-reference errors from either heap.
pub fn deep_copy_between(
    src: &Heap,
    roots: &[ObjId],
    dst: &mut Heap,
) -> Result<HashMap<ObjId, ObjId>> {
    let map = LinearMap::build(src, roots)?;
    copy_by_linear_map(src, &map, dst)
}

/// Deep-copies the objects of a prebuilt linear map into `dst`. Exposed
/// separately because the copy-restore pipeline already has the map.
///
/// # Errors
/// Propagates dangling-reference errors from either heap.
pub fn copy_by_linear_map(
    src: &Heap,
    map: &LinearMap,
    dst: &mut Heap,
) -> Result<HashMap<ObjId, ObjId>> {
    // Pass 1: allocate shells in traversal order.
    let mut translation: HashMap<ObjId, ObjId> = HashMap::with_capacity(map.len());
    for &id in map.order() {
        let obj = src.get(id)?;
        let new_id = if obj.is_array() {
            dst.alloc_array(obj.class(), Vec::new())?
        } else {
            dst.alloc_default(obj.class())?
        };
        translation.insert(id, new_id);
    }
    // Pass 2: fill slots, translating references.
    for &id in map.order() {
        let obj = src.get(id)?;
        let slots: Vec<Value> = obj
            .body()
            .slots()
            .iter()
            .map(|v| translate_value(v, &translation))
            .collect();
        dst.overwrite_slots(translation[&id], slots)?;
    }
    Ok(translation)
}

/// Deep-copies a subgraph within one heap (used by the "shadow tree"
/// manual-restore emulation in the benchmarks).
///
/// # Errors
/// Propagates dangling-reference errors.
pub fn deep_copy_within(heap: &mut Heap, roots: &[ObjId]) -> Result<HashMap<ObjId, ObjId>> {
    let map = LinearMap::build(heap, roots)?;
    // Snapshot the source objects first; allocation may reuse nothing but
    // borrowing rules require a materialized copy anyway.
    let mut translation: HashMap<ObjId, ObjId> = HashMap::with_capacity(map.len());
    let snapshots: Vec<(ObjId, crate::Object)> = map
        .order()
        .iter()
        .map(|&id| heap.get(id).cloned().map(|o| (id, o)))
        .collect::<Result<_>>()?;
    for (id, obj) in &snapshots {
        let new_id = if obj.is_array() {
            heap.alloc_array(obj.class(), Vec::new())?
        } else {
            heap.alloc_default(obj.class())?
        };
        translation.insert(*id, new_id);
    }
    for (id, obj) in &snapshots {
        let slots: Vec<Value> = obj
            .body()
            .slots()
            .iter()
            .map(|v| translate_value(v, &translation))
            .collect();
        heap.overwrite_slots(translation[id], slots)?;
    }
    Ok(translation)
}

fn translate_value(v: &Value, translation: &HashMap<ObjId, ObjId>) -> Value {
    match v {
        Value::Ref(id) => Value::Ref(
            *translation
                .get(id)
                .expect("linear map covers all reachable objects"),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::isomorphic;
    use crate::tree::{self, TreeClasses};
    use crate::{ClassRegistry, HeapAccess};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    #[test]
    fn copy_preserves_structure_and_data() {
        let (mut src, classes) = setup();
        let root = tree::build_random_tree(&mut src, &classes, 32, 3).unwrap();
        let mut dst = Heap::new(src.registry_handle().clone());
        let translation = deep_copy_between(&src, &[root], &mut dst).unwrap();
        assert_eq!(translation.len(), 32);
        assert!(isomorphic(&src, root, &dst, translation[&root]).unwrap());
    }

    #[test]
    fn copy_replicates_sharing_not_duplicates() {
        let (mut src, classes) = setup();
        let shared = src
            .alloc(classes.tree, vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        let root = src
            .alloc(
                classes.tree,
                vec![Value::Int(0), Value::Ref(shared), Value::Ref(shared)],
            )
            .unwrap();
        let mut dst = Heap::new(src.registry_handle().clone());
        let t = deep_copy_between(&src, &[root], &mut dst).unwrap();
        assert_eq!(t.len(), 2, "shared node copied once");
        let new_root = t[&root];
        let l = dst.get_ref(new_root, "left").unwrap().unwrap();
        let r = dst.get_ref(new_root, "right").unwrap().unwrap();
        assert_eq!(l, r, "aliasing replicated in the copy");
    }

    #[test]
    fn copy_handles_cycles() {
        let (mut src, classes) = setup();
        let a = src.alloc_default(classes.tree).unwrap();
        let b = src.alloc_default(classes.tree).unwrap();
        src.set_field(a, "left", Value::Ref(b)).unwrap();
        src.set_field(b, "left", Value::Ref(a)).unwrap();
        let mut dst = Heap::new(src.registry_handle().clone());
        let t = deep_copy_between(&src, &[a], &mut dst).unwrap();
        let a2 = t[&a];
        let b2 = dst.get_ref(a2, "left").unwrap().unwrap();
        assert_eq!(
            dst.get_ref(b2, "left").unwrap(),
            Some(a2),
            "cycle closed in copy"
        );
    }

    #[test]
    fn copy_within_is_disjoint_from_source() {
        let (mut heap, classes) = setup();
        let root = tree::build_random_tree(&mut heap, &classes, 16, 9).unwrap();
        let before = heap.live_count();
        let t = deep_copy_within(&mut heap, &[root]).unwrap();
        assert_eq!(heap.live_count(), before * 2);
        // Mutating the copy leaves the original untouched.
        let copy_root = t[&root];
        heap.set_field(copy_root, "data", Value::Int(12345))
            .unwrap();
        assert_ne!(heap.get_field(root, "data").unwrap(), Value::Int(12345));
        assert!(isomorphic_within(&heap, root, copy_root));
    }

    fn isomorphic_within(heap: &Heap, a: ObjId, b: ObjId) -> bool {
        // Data differs after mutation; check structure only via node count.
        let na = tree::collect_nodes(heap, a).unwrap().len();
        let nb = tree::collect_nodes(heap, b).unwrap().len();
        na == nb
    }

    #[test]
    fn copy_arrays() {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        let arr_class = reg.define_array("Object[]", crate::FieldType::Ref);
        let mut src = Heap::new(reg.snapshot());
        let leaf = src.alloc_default(classes.tree).unwrap();
        let arr = src
            .alloc_array(
                arr_class,
                vec![Value::Ref(leaf), Value::Ref(leaf), Value::Null],
            )
            .unwrap();
        let mut dst = Heap::new(src.registry_handle().clone());
        let t = deep_copy_between(&src, &[arr], &mut dst).unwrap();
        let arr2 = t[&arr];
        assert_eq!(dst.slot_count(arr2).unwrap(), 3);
        let e0 = dst.get_element(arr2, 0).unwrap().as_ref_id().unwrap();
        let e1 = dst.get_element(arr2, 1).unwrap().as_ref_id().unwrap();
        assert_eq!(e0, e1, "array aliasing preserved");
        assert_eq!(dst.get_element(arr2, 2).unwrap(), Value::Null);
    }
}
