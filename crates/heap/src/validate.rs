//! Heap integrity validation.
//!
//! The substrate underpins every correctness claim in this repository,
//! so it must be possible to *prove* a heap is internally consistent at
//! any point: after a restore, after a GC, after a fault-injected
//! failure. [`validate`] checks every live object against the structural
//! invariants and returns the violations (empty = sound).

use crate::class::FieldType;
use crate::heap_impl::Heap;
use crate::value::Value;

/// One detected inconsistency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A reference slot points at a freed or never-allocated slot.
    DanglingReference {
        /// The object holding the bad reference.
        holder: crate::ObjId,
        /// Slot index within the holder.
        slot: usize,
        /// The dangling target index.
        target: u32,
    },
    /// An object's class id is not in the registry.
    UnknownClass {
        /// The object.
        object: crate::ObjId,
        /// Its class index.
        class: u32,
    },
    /// A non-array object's slot count differs from its class's declared
    /// field count.
    ArityMismatch {
        /// The object.
        object: crate::ObjId,
        /// Declared field count.
        declared: usize,
        /// Actual slot count.
        actual: usize,
    },
    /// A slot holds a value its declared field type does not admit.
    TypeMismatch {
        /// The object.
        object: crate::ObjId,
        /// Slot index.
        slot: usize,
        /// The field's declared type.
        declared: FieldType,
        /// The offending value's kind.
        found: &'static str,
    },
    /// A stub object whose key slot is malformed.
    MalformedStub {
        /// The stub object.
        object: crate::ObjId,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DanglingReference {
                holder,
                slot,
                target,
            } => {
                write!(f, "{holder} slot {slot} dangles to freed slot #{target}")
            }
            Violation::UnknownClass { object, class } => {
                write!(f, "{object} has unknown class id {class}")
            }
            Violation::ArityMismatch {
                object,
                declared,
                actual,
            } => {
                write!(f, "{object} has {actual} slots, class declares {declared}")
            }
            Violation::TypeMismatch {
                object,
                slot,
                declared,
                found,
            } => {
                write!(
                    f,
                    "{object} slot {slot} holds {found}, declared {declared:?}"
                )
            }
            Violation::MalformedStub { object } => write!(f, "{object} is a malformed stub"),
        }
    }
}

/// Checks every live object of `heap` against the structural invariants:
/// no dangling references, classes known, slot arity and types matching
/// declarations, stubs carrying valid keys. Returns all violations.
pub fn validate(heap: &Heap) -> Vec<Violation> {
    let mut violations = Vec::new();
    let registry = heap.registry_handle().clone();
    for (id, obj) in heap.iter() {
        let desc = match registry.get(obj.class()) {
            Ok(desc) => desc,
            Err(_) => {
                violations.push(Violation::UnknownClass {
                    object: id,
                    class: obj.class().index(),
                });
                continue;
            }
        };
        let slots = obj.body().slots();
        if !obj.is_array() {
            if slots.len() != desc.field_count() {
                violations.push(Violation::ArityMismatch {
                    object: id,
                    declared: desc.field_count(),
                    actual: slots.len(),
                });
            }
            for (i, (fd, v)) in desc.fields().iter().zip(slots).enumerate() {
                if !fd.ty().admits(v) {
                    violations.push(Violation::TypeMismatch {
                        object: id,
                        slot: i,
                        declared: fd.ty(),
                        found: v.kind_name(),
                    });
                }
            }
            if desc.flags().stub && !matches!(slots.first(), Some(Value::Long(_))) {
                violations.push(Violation::MalformedStub { object: id });
            }
        } else if let Some(elem_ty) = desc.element_type() {
            for (i, v) in slots.iter().enumerate() {
                if !elem_ty.admits(v) {
                    violations.push(Violation::TypeMismatch {
                        object: id,
                        slot: i,
                        declared: elem_ty,
                        found: v.kind_name(),
                    });
                }
            }
        }
        for (i, v) in slots.iter().enumerate() {
            if let Value::Ref(target) = v {
                if !heap.contains(*target) {
                    violations.push(Violation::DanglingReference {
                        holder: id,
                        slot: i,
                        target: target.index(),
                    });
                }
            }
        }
    }
    violations
}

/// Panics with a readable report if `heap` is inconsistent. For tests.
///
/// # Panics
/// Panics when [`validate`] reports any violation.
pub fn assert_valid(heap: &Heap) {
    let violations = validate(heap);
    assert!(
        violations.is_empty(),
        "heap integrity violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  - {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{self, TreeClasses};
    use crate::{ClassRegistry, HeapAccess};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    #[test]
    fn fresh_graphs_validate() {
        let (mut heap, classes) = setup();
        let _ = tree::build_running_example(&mut heap, &classes).unwrap();
        let root = tree::build_random_tree(&mut heap, &classes, 64, 3).unwrap();
        tree::run_foo(&mut heap, root).unwrap_or(());
        assert_valid(&heap);
        assert!(validate(&heap).is_empty());
    }

    #[test]
    fn dangling_reference_detected() {
        let (mut heap, classes) = setup();
        let child = heap.alloc_default(classes.tree).unwrap();
        let parent = heap
            .alloc(
                classes.tree,
                vec![Value::Int(0), Value::Ref(child), Value::Null],
            )
            .unwrap();
        // Free the child WITHOUT unlinking — the validator must notice.
        heap.free(child).unwrap();
        let violations = validate(&heap);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0],
            Violation::DanglingReference { holder, slot: 1, .. } if holder == parent
        ));
        assert!(violations[0].to_string().contains("dangles"));
    }

    #[test]
    fn stubs_validate() {
        let (mut heap, _) = setup();
        let stub = heap.alloc_stub(42).unwrap();
        assert_valid(&heap);
        // Corrupt the key slot through the raw interface... the typed
        // heap refuses (Long field), so stubs are well-formed by
        // construction — assert that the write is rejected.
        assert!(heap
            .set_field_raw(stub, 0, Value::Str("bad".into()))
            .is_err());
    }

    #[test]
    #[should_panic(expected = "heap integrity violations")]
    fn assert_valid_panics_on_bad_heap() {
        let (mut heap, classes) = setup();
        let child = heap.alloc_default(classes.tree).unwrap();
        let _parent = heap
            .alloc(
                classes.tree,
                vec![Value::Int(0), Value::Ref(child), Value::Null],
            )
            .unwrap();
        heap.free(child).unwrap();
        assert_valid(&heap);
    }
}
