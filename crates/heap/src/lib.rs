//! # nrmi-heap — managed object-graph substrate
//!
//! NRMI (Tilevich & Smaragdakis, ICDCS 2003) is middleware for a language
//! with a garbage-collected heap of freely-aliased mutable objects (Java).
//! Rust has no such runtime, so this crate builds one: a [`Heap`] is an
//! arena of [`Object`]s addressed by stable [`ObjId`] handles, and a field
//! holding [`Value::Ref`] is the moral equivalent of a Java reference.
//! Two fields holding the same `ObjId` *are* an alias — exactly the
//! situation NRMI's call-by-copy-restore semantics is about.
//!
//! The crate also provides the runtime metadata that Java gets from
//! reflection: every object belongs to a class registered in a
//! [`ClassRegistry`], whose [`ClassDescriptor`] lists field names and types
//! and carries the NRMI marker flags (`serializable`, `restorable`,
//! `remote` — the analogues of `java.io.Serializable`,
//! `java.rmi.Restorable` and `java.rmi.server.UnicastRemoteObject`).
//!
//! On top of the raw heap sit the pieces the NRMI algorithm needs:
//!
//! * [`traverse`] — deterministic preorder depth-first reachability and
//!   the **linear map** (step 1 of the paper's algorithm);
//! * [`copy`] — alias-preserving deep copies within and across heaps;
//! * [`graph`] — alias-structure-aware isomorphism checks and an ASCII
//!   renderer used to regenerate the paper's figures;
//! * [`gc`] — a mark-sweep collector plus a reference-counting space that
//!   (faithfully to RMI's distributed GC) cannot reclaim cycles;
//! * [`tree`] — builders for the paper's running example and the random
//!   binary trees of its benchmarks.
//!
//! ## Example
//!
//! ```
//! use nrmi_heap::{ClassRegistry, Heap, HeapAccess, Value};
//!
//! # fn main() -> Result<(), nrmi_heap::HeapError> {
//! let mut registry = ClassRegistry::new();
//! let point = registry
//!     .define("Point")
//!     .field_int("x")
//!     .field_int("y")
//!     .serializable()
//!     .register();
//!
//! let mut heap = Heap::new(registry.snapshot());
//! let p = heap.alloc(point, vec![Value::Int(3), Value::Int(4)])?;
//! heap.set_field(p, "x", Value::Int(7))?;
//! assert_eq!(heap.get_field(p, "x")?, Value::Int(7));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod error;
mod heap_impl;
mod object;
#[cfg(feature = "sanitize")]
mod sanitize;
mod value;

pub mod collections;
pub mod copy;
pub mod densemap;
pub mod gc;
pub mod graph;
pub mod snapshot;
pub mod traverse;
pub mod tree;
pub mod validate;

pub use densemap::{DenseIdMap, DenseObjSet, DensePositionMap};

pub use class::{
    ClassBuilder, ClassDescriptor, ClassFlags, ClassId, ClassRegistry, FieldDescriptor, FieldType,
    SharedRegistry,
};
pub use error::HeapError;
pub use heap_impl::{Heap, HeapAccess, HeapStats};
pub use object::{Object, ObjectBody};
pub use snapshot::{HeapDiff, HeapSnapshot};
pub use traverse::{LinearMap, TraverseScratch};
pub use value::{ObjId, Value};

/// Convenient result alias for heap operations.
pub type Result<T> = std::result::Result<T, HeapError>;
