//! Error type for heap operations.

use std::error::Error;
use std::fmt;

/// Errors raised by heap, class-registry, and traversal operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum HeapError {
    /// The handle refers to a freed or never-allocated slot.
    DanglingRef(u32),
    /// A class id was not issued by the registry in use.
    UnknownClass(u32),
    /// A class name was registered twice.
    DuplicateClass(String),
    /// The class declares no field with the given name.
    NoSuchField {
        /// Class name.
        class: String,
        /// Field name that was requested.
        field: String,
    },
    /// A field index was out of bounds for the object's class.
    FieldIndexOutOfBounds {
        /// Class name.
        class: String,
        /// Offending index.
        index: usize,
        /// Number of declared fields.
        len: usize,
    },
    /// A value's kind does not match the field's declared type.
    TypeMismatch {
        /// Class name.
        class: String,
        /// Field name.
        field: String,
        /// Expected static type, e.g. `"int"`.
        expected: &'static str,
        /// Kind of the offending value.
        found: &'static str,
    },
    /// An array operation was applied to a non-array object or vice versa.
    NotAnArray(String),
    /// Array element index out of bounds.
    ArrayIndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Array length.
        len: usize,
    },
    /// Wrong number of field initializers passed to `alloc`.
    ArityMismatch {
        /// Class name.
        class: String,
        /// Number of declared fields.
        expected: usize,
        /// Number of initializers supplied.
        found: usize,
    },
    /// An operation required a marker flag the class does not carry
    /// (e.g. serializing a non-serializable class).
    MarkerViolation {
        /// Class name.
        class: String,
        /// The missing capability, e.g. `"serializable"`.
        required: &'static str,
    },
    /// A heap access routed through a remote proxy failed at the network
    /// layer — the `RemoteException` of the remote-pointer world, where
    /// even a field read can fail.
    RemoteAccess(String),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::DanglingRef(idx) => {
                write!(f, "dangling reference to heap slot #{idx}")
            }
            HeapError::UnknownClass(idx) => write!(f, "unknown class id {idx}"),
            HeapError::DuplicateClass(name) => {
                write!(f, "class {name:?} is already registered")
            }
            HeapError::NoSuchField { class, field } => {
                write!(f, "class {class} has no field named {field:?}")
            }
            HeapError::FieldIndexOutOfBounds { class, index, len } => {
                write!(
                    f,
                    "field index {index} out of bounds for {class} ({len} fields)"
                )
            }
            HeapError::TypeMismatch {
                class,
                field,
                expected,
                found,
            } => write!(
                f,
                "type mismatch writing {class}.{field}: expected {expected}, found {found}"
            ),
            HeapError::NotAnArray(class) => {
                write!(f, "array operation on non-array class {class}")
            }
            HeapError::ArrayIndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds (len {len})")
            }
            HeapError::ArityMismatch {
                class,
                expected,
                found,
            } => write!(
                f,
                "wrong initializer count for {class}: expected {expected}, found {found}"
            ),
            HeapError::MarkerViolation { class, required } => {
                write!(f, "class {class} is not {required}")
            }
            HeapError::RemoteAccess(msg) => {
                write!(f, "remote heap access failed: {msg}")
            }
        }
    }
}

impl Error for HeapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + Error + 'static>() {}
        assert_bounds::<HeapError>();
    }

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors: Vec<HeapError> = vec![
            HeapError::DanglingRef(1),
            HeapError::UnknownClass(2),
            HeapError::DuplicateClass("A".into()),
            HeapError::NoSuchField {
                class: "A".into(),
                field: "f".into(),
            },
            HeapError::FieldIndexOutOfBounds {
                class: "A".into(),
                index: 3,
                len: 1,
            },
            HeapError::TypeMismatch {
                class: "A".into(),
                field: "f".into(),
                expected: "int",
                found: "ref",
            },
            HeapError::NotAnArray("A".into()),
            HeapError::ArrayIndexOutOfBounds { index: 4, len: 2 },
            HeapError::ArityMismatch {
                class: "A".into(),
                expected: 2,
                found: 0,
            },
            HeapError::MarkerViolation {
                class: "A".into(),
                required: "serializable",
            },
            HeapError::RemoteAccess("link down".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
            assert!(!s.ends_with('.'), "{s}");
        }
    }
}
