//! Whole-heap snapshots and diffs.
//!
//! Middleware correctness statements are often of the form "this
//! operation changed *exactly* these objects and nothing else" — a
//! failed call must change nothing, a copy-mode call must leave the
//! caller untouched, a delta-applied restore must change the same set as
//! a full restore. [`HeapSnapshot`] captures every live object's state;
//! [`HeapSnapshot::diff`] reports what appeared, vanished, or changed
//! between two captures, down to the slot.

use std::collections::{BTreeMap, BTreeSet};

use crate::heap_impl::Heap;
use crate::value::{ObjId, Value};

/// A point-in-time capture of every live object in a heap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeapSnapshot {
    objects: BTreeMap<ObjId, (crate::ClassId, Vec<Value>)>,
}

/// The difference between two snapshots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeapDiff {
    /// Objects present in the newer snapshot only.
    pub added: BTreeSet<ObjId>,
    /// Objects present in the older snapshot only.
    pub removed: BTreeSet<ObjId>,
    /// Objects present in both whose class or slots differ, with the
    /// indices of the differing slots.
    pub changed: BTreeMap<ObjId, Vec<usize>>,
}

impl HeapDiff {
    /// True if the two snapshots were identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// Total number of differing objects.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len() + self.changed.len()
    }

    /// A terse human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "+{} -{} ~{}",
            self.added.len(),
            self.removed.len(),
            self.changed.len()
        )
    }
}

impl HeapSnapshot {
    /// Captures every live object of `heap`.
    pub fn capture(heap: &Heap) -> Self {
        let objects = heap
            .iter()
            .map(|(id, obj)| (id, (obj.class(), obj.body().slots().to_vec())))
            .collect();
        HeapSnapshot { objects }
    }

    /// Number of objects captured.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the heap had no live objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// True if `id` was live at capture time.
    pub fn contains(&self, id: ObjId) -> bool {
        self.objects.contains_key(&id)
    }

    /// The captured slots of `id`, if it was live.
    pub fn slots_of(&self, id: ObjId) -> Option<&[Value]> {
        self.objects.get(&id).map(|(_, slots)| slots.as_slice())
    }

    /// Diffs `self` (the older state) against `newer`.
    pub fn diff(&self, newer: &HeapSnapshot) -> HeapDiff {
        let mut diff = HeapDiff::default();
        for (&id, (class, slots)) in &newer.objects {
            match self.objects.get(&id) {
                None => {
                    diff.added.insert(id);
                }
                Some((old_class, old_slots)) => {
                    if class != old_class || slots.len() != old_slots.len() {
                        // Class or arity changed: report every slot.
                        diff.changed
                            .insert(id, (0..slots.len().max(old_slots.len())).collect());
                    } else {
                        let changed_slots: Vec<usize> = slots
                            .iter()
                            .zip(old_slots)
                            .enumerate()
                            .filter(|(_, (a, b))| a != b)
                            .map(|(i, _)| i)
                            .collect();
                        if !changed_slots.is_empty() {
                            diff.changed.insert(id, changed_slots);
                        }
                    }
                }
            }
        }
        for &id in self.objects.keys() {
            if !newer.objects.contains_key(&id) {
                diff.removed.insert(id);
            }
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{self, TreeClasses};
    use crate::{ClassRegistry, HeapAccess};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let (mut heap, classes) = setup();
        let _ = tree::build_random_tree(&mut heap, &classes, 16, 1).unwrap();
        let a = HeapSnapshot::capture(&heap);
        let b = HeapSnapshot::capture(&heap);
        let diff = a.diff(&b);
        assert!(diff.is_empty());
        assert_eq!(diff.len(), 0);
        assert_eq!(diff.summary(), "+0 -0 ~0");
        assert_eq!(a.len(), 16);
        assert!(!a.is_empty());
    }

    #[test]
    fn detects_additions_removals_and_changes() {
        let (mut heap, classes) = setup();
        let root = tree::build_random_tree(&mut heap, &classes, 4, 2).unwrap();
        let nodes = tree::collect_nodes(&heap, root).unwrap();
        let before = HeapSnapshot::capture(&heap);

        // Change: mutate root's data (slot 0).
        heap.set_field(root, "data", Value::Int(31337)).unwrap();
        // Add: a fresh node.
        let fresh = heap.alloc_default(classes.tree).unwrap();
        // Remove: free a leaf (after unlinking it).
        let victim = *nodes.last().unwrap();
        for &n in &nodes {
            for side in ["left", "right"] {
                if heap.get_ref(n, side).unwrap() == Some(victim) {
                    heap.set_field(n, side, Value::Null).unwrap();
                }
            }
        }
        heap.free(victim).unwrap();

        let after = HeapSnapshot::capture(&heap);
        let diff = before.diff(&after);
        assert!(diff.added.contains(&fresh));
        assert!(diff.removed.contains(&victim));
        assert!(diff.changed.contains_key(&root));
        // Root changed slot 0 (data); its parent-of-victim changed a ref
        // slot too — but the root's entry must list slot 0.
        assert!(diff.changed[&root].contains(&0));
        assert!(!diff.is_empty());
        assert!(diff.len() >= 3);
    }

    #[test]
    fn slot_reuse_after_free_reports_change_not_identity() {
        // Freeing an object and allocating a new one may recycle the
        // ObjId; the diff sees it as CHANGED (the snapshot keys by id).
        let (mut heap, classes) = setup();
        let a = heap
            .alloc(classes.tree, vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        let before = HeapSnapshot::capture(&heap);
        heap.free(a).unwrap();
        let b = heap
            .alloc(classes.tree, vec![Value::Int(2), Value::Null, Value::Null])
            .unwrap();
        assert_eq!(a, b, "slot recycled");
        let after = HeapSnapshot::capture(&heap);
        let diff = before.diff(&after);
        assert_eq!(diff.changed.get(&a), Some(&vec![0]));
    }

    #[test]
    fn accessors() {
        let (mut heap, classes) = setup();
        let a = heap
            .alloc(classes.tree, vec![Value::Int(9), Value::Null, Value::Null])
            .unwrap();
        let snap = HeapSnapshot::capture(&heap);
        assert!(snap.contains(a));
        assert_eq!(snap.slots_of(a).unwrap()[0], Value::Int(9));
        assert!(!snap.contains(ObjId::from_index(99)));
        assert!(snap.slots_of(ObjId::from_index(99)).is_none());
    }
}
