//! Real TCP transport with length-prefixed framing.
//!
//! The simulated environment regenerates the paper's numbers; this
//! transport demonstrates that the middleware genuinely distributes —
//! client and server can run in different processes or on different
//! machines. Framing is a 4-byte big-endian length followed by the
//! encoded frame; a size cap guards against corrupt peers, and the
//! resumable [`framed::FrameReader`] keeps the stream in sync across
//! receive timeouts.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::endpoint::{Transport, TransportReceiver, TransportSender};
use crate::framed::{self, FrameReader};
use crate::message::Frame;
use crate::simnet::{LinkSpec, SimEnv};
use crate::{Result, TransportError};

/// Largest accepted frame (64 MiB) — far above any benchmark payload,
/// low enough to fail fast on corrupt length prefixes.
pub const MAX_FRAME: usize = 64 << 20;

/// A connected TCP frame transport.
pub struct TcpTransport {
    stream: TcpStream,
    /// The dialed address, kept so [`Transport::reconnect`] can re-dial.
    /// `None` for accepted (server-side) streams, which cannot dial the
    /// client back.
    peer: Option<SocketAddr>,
    env: Option<SimEnv>,
    link: LinkSpec,
    send_buf: Vec<u8>,
    reader: FrameReader,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}

impl TcpTransport {
    /// Connects to a listening peer.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr().ok();
        Ok(TcpTransport {
            stream,
            peer,
            env: None,
            link: LinkSpec::free(),
            send_buf: Vec::new(),
            reader: FrameReader::new(),
        })
    }

    /// Wraps an accepted stream.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn from_stream(stream: TcpStream) -> Result<Self> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            peer: None,
            env: None,
            link: LinkSpec::free(),
            send_buf: Vec::new(),
            reader: FrameReader::new(),
        })
    }

    /// Attaches simulated-cost accounting (in addition to the real
    /// network the bytes actually traverse).
    pub fn with_sim(mut self, env: SimEnv, link: LinkSpec) -> Self {
        self.env = Some(env);
        self.link = link;
        self
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &Frame) -> Result<()> {
        let body_len = framed::write_frame(&mut self.stream, frame, &mut self.send_buf)?;
        if let Some(env) = &self.env {
            env.charge_transfer(&self.link, body_len);
        }
        Ok(())
    }

    fn send_batch(&mut self, frames: &[&Frame]) -> Result<()> {
        // Simulated links charge per frame (which needs each body's
        // size), so they keep the per-frame path; real links flush the
        // whole train with one vectored write.
        if frames.len() <= 1 || self.env.is_some() || !framed::wire_batching_enabled() {
            for frame in frames {
                self.send(frame)?;
            }
            return Ok(());
        }
        framed::write_frames_vectored(&mut self.stream, frames, &mut self.send_buf).map(|_| ())
    }

    fn recv(&mut self) -> Result<Frame> {
        // Fast path: a frame already sitting in the read-ahead needs no
        // syscalls at all (not even the timeout-reset setsockopt).
        if let Some(result) = self.reader.read_frame_buffered() {
            return result;
        }
        crate::blocking::blocking_region("tcp.recv");
        self.stream.set_read_timeout(None)?;
        self.recv_inner()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame> {
        if let Some(result) = self.reader.read_frame_buffered() {
            return result;
        }
        crate::blocking::blocking_region("tcp.recv_timeout");
        self.stream.set_read_timeout(Some(timeout))?;
        let result = self.recv_inner();
        let _ = self.stream.set_read_timeout(None);
        match result {
            Err(TransportError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(TransportError::Timeout)
            }
            other => other,
        }
    }

    fn reconnect(&mut self) -> Result<bool> {
        let Some(addr) = self.peer else {
            return Ok(false);
        };
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        self.stream = stream;
        self.reader.reset();
        Ok(true)
    }

    fn split(&mut self) -> Option<(Box<dyn TransportSender>, Box<dyn TransportReceiver>)> {
        // A TCP socket duplicates into independent handles; the receiver
        // half inherits the resumable reader so bytes buffered across an
        // earlier recv_timeout are not lost.
        let send_stream = self.stream.try_clone().ok()?;
        let recv_stream = self.stream.try_clone().ok()?;
        let sender = TcpSenderHalf {
            stream: send_stream,
            env: self.env.clone(),
            link: self.link,
            send_buf: std::mem::take(&mut self.send_buf),
        };
        let receiver = TcpReceiverHalf {
            stream: recv_stream,
            reader: std::mem::take(&mut self.reader),
        };
        Some((Box::new(sender), Box::new(receiver)))
    }
}

impl TcpTransport {
    fn recv_inner(&mut self) -> Result<Frame> {
        self.reader.read_frame(&mut self.stream)
    }
}

/// Write half of a split [`TcpTransport`].
struct TcpSenderHalf {
    stream: TcpStream,
    env: Option<SimEnv>,
    link: LinkSpec,
    send_buf: Vec<u8>,
}

impl TransportSender for TcpSenderHalf {
    fn send(&mut self, frame: &Frame) -> Result<()> {
        let body_len = framed::write_frame(&mut self.stream, frame, &mut self.send_buf)?;
        if let Some(env) = &self.env {
            env.charge_transfer(&self.link, body_len);
        }
        Ok(())
    }

    fn send_batch(&mut self, frames: &[&Frame]) -> Result<()> {
        if frames.len() <= 1 || self.env.is_some() || !framed::wire_batching_enabled() {
            for frame in frames {
                self.send(frame)?;
            }
            return Ok(());
        }
        framed::write_frames_vectored(&mut self.stream, frames, &mut self.send_buf).map(|_| ())
    }
}

/// Read half of a split [`TcpTransport`].
struct TcpReceiverHalf {
    stream: TcpStream,
    reader: FrameReader,
}

impl TransportReceiver for TcpReceiverHalf {
    fn recv(&mut self) -> Result<Frame> {
        if let Some(result) = self.reader.read_frame_buffered() {
            return result;
        }
        crate::blocking::blocking_region("tcp.recv");
        self.stream.set_read_timeout(None)?;
        self.reader.read_frame(&mut self.stream)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame> {
        if let Some(result) = self.reader.read_frame_buffered() {
            return result;
        }
        crate::blocking::blocking_region("tcp.recv_timeout");
        self.stream.set_read_timeout(Some(timeout))?;
        let result = self.reader.read_frame(&mut self.stream);
        let _ = self.stream.set_read_timeout(None);
        match result {
            Err(TransportError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(TransportError::Timeout)
            }
            other => other,
        }
    }
}

/// A listener that accepts [`TcpTransport`] connections.
#[derive(Debug)]
pub struct TcpListenerTransport {
    listener: TcpListener,
}

impl TcpListenerTransport {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Self> {
        Ok(TcpListenerTransport {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound local address.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Blocks until a client connects.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn accept(&self) -> Result<TcpTransport> {
        self.listener.set_nonblocking(false)?;
        let (stream, _) = self.listener.accept()?;
        TcpTransport::from_stream(stream)
    }

    /// Waits up to `timeout` for a client. `std` listeners have no
    /// native accept deadline, so this polls a non-blocking accept (the
    /// shared loop in `crate::listen`) — coarse, but it lets a serve
    /// loop check a shutdown flag between waits instead of blocking in
    /// `accept` forever.
    ///
    /// # Errors
    /// [`TransportError::Timeout`] if nobody connected in time;
    /// otherwise propagates socket errors.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<TcpTransport> {
        let stream = crate::listen::poll_accept(
            |nb| self.listener.set_nonblocking(nb),
            || self.listener.accept().map(|(stream, _)| stream),
            timeout,
        )?;
        // Accepted sockets may inherit the listener's non-blocking flag
        // (platform-dependent); undo it.
        stream.set_nonblocking(false)?;
        TcpTransport::from_stream(stream)
    }
}

impl crate::endpoint::Listener for TcpListenerTransport {
    type Conn = TcpTransport;

    fn accept(&self) -> Result<TcpTransport> {
        TcpListenerTransport::accept(self)
    }

    fn accept_timeout(&self, timeout: Duration) -> Result<TcpTransport> {
        TcpListenerTransport::accept_timeout(self, timeout)
    }
}

#[cfg(unix)]
impl crate::endpoint::ReactorIo for TcpTransport {
    fn raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        self.stream.as_raw_fd()
    }

    fn set_nonblocking(&self, nonblocking: bool) -> Result<()> {
        Ok(self.stream.set_nonblocking(nonblocking)?)
    }

    fn try_read_frame(&mut self) -> Result<Option<Frame>> {
        // The resumable reader keeps its cursor across WouldBlock, so a
        // frame straddling readiness events assembles incrementally.
        match self.reader.read_frame(&mut self.stream) {
            Ok(frame) => Ok(Some(frame)),
            Err(TransportError::Io(e)) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn has_buffered_input(&self) -> bool {
        self.reader.has_buffered_input()
    }

    fn flush_queue(&mut self, queue: &mut crate::SendQueue) -> Result<bool> {
        queue.flush(&mut self.stream)
    }
}

#[cfg(unix)]
impl crate::endpoint::PollableListener for TcpListenerTransport {
    fn raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        self.listener.as_raw_fd()
    }

    fn set_nonblocking(&self, nonblocking: bool) -> Result<()> {
        Ok(self.listener.set_nonblocking(nonblocking)?)
    }

    fn try_accept(&self) -> Result<Option<TcpTransport>> {
        match self.listener.accept() {
            Ok((stream, _)) => TcpTransport::from_stream(stream).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn tcp_roundtrip() {
        let listener = TcpListenerTransport::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut t = listener.accept().unwrap();
            let f = t.recv().unwrap();
            assert_eq!(
                f,
                Frame::Lookup {
                    name: "echo".into()
                }
            );
            t.send(&Frame::LookupReply { found: true }).unwrap();
            // Large frame across the socket.
            let big = t.recv().unwrap();
            match big {
                Frame::CallRequest { payload, .. } => assert_eq!(payload.len(), 100_000),
                other => panic!("unexpected {other:?}"),
            }
            t.send(&Frame::CallReply {
                payload: vec![7; 10],
            })
            .unwrap();
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client
            .send(&Frame::Lookup {
                name: "echo".into(),
            })
            .unwrap();
        assert_eq!(client.recv().unwrap(), Frame::LookupReply { found: true });
        client
            .send(&Frame::CallRequest {
                service: "s".into(),
                method: "m".into(),
                mode: 0,
                payload: vec![1; 100_000],
            })
            .unwrap();
        assert_eq!(
            client.recv().unwrap(),
            Frame::CallReply {
                payload: vec![7; 10]
            }
        );
        server.join().unwrap();
    }

    #[test]
    fn disconnect_detected() {
        let listener = TcpListenerTransport::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let t = listener.accept().unwrap();
            drop(t);
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        server.join().unwrap();
        assert!(matches!(client.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn recv_timeout_fires() {
        let listener = TcpListenerTransport::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _keepalive = thread::spawn(move || {
            let t = listener.accept().unwrap();
            thread::sleep(Duration::from_millis(300));
            drop(t);
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        let err = client.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout), "{err:?}");
    }

    #[test]
    fn timeout_mid_frame_then_completion() {
        // Regression for the stream-desync bug: the server sends the
        // length prefix, pauses past the client's deadline, then sends
        // the body. The client's first recv times out; the second must
        // deliver the frame intact instead of misreading body bytes as
        // a fresh length.
        use std::io::Write;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let body = Frame::CallReply {
                payload: vec![0x42; 2000],
            }
            .encode();
            let prefix = (body.len() as u32).to_be_bytes();
            stream.write_all(&prefix).unwrap();
            stream.write_all(&body[..10]).unwrap();
            stream.flush().unwrap();
            thread::sleep(Duration::from_millis(150));
            stream.write_all(&body[10..]).unwrap();
            stream.flush().unwrap();
            // Hold the connection until the client is done reading.
            thread::sleep(Duration::from_millis(200));
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        let err = client.recv_timeout(Duration::from_millis(30)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout), "{err:?}");
        let frame = client.recv().unwrap();
        assert_eq!(
            frame,
            Frame::CallReply {
                payload: vec![0x42; 2000]
            }
        );
        server.join().unwrap();
    }

    #[test]
    fn reconnect_redials_the_listener() {
        let listener = TcpListenerTransport::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            // First connection: answer one frame, then drop.
            let mut t = listener.accept().unwrap();
            let _ = t.recv().unwrap();
            t.send(&Frame::Ack).unwrap();
            drop(t);
            // Second connection after the client reconnects.
            let mut t = listener.accept().unwrap();
            let _ = t.recv().unwrap();
            t.send(&Frame::CountReply(2)).unwrap();
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client.send(&Frame::Ack).unwrap();
        assert_eq!(client.recv().unwrap(), Frame::Ack);
        // Wait for the server to drop the first connection.
        assert!(matches!(client.recv(), Err(TransportError::Disconnected)));
        assert!(client.reconnect().unwrap());
        client.send(&Frame::Ack).unwrap();
        assert_eq!(client.recv().unwrap(), Frame::CountReply(2));
        server.join().unwrap();
    }

    #[test]
    fn accepted_streams_do_not_reconnect() {
        let listener = TcpListenerTransport::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || {
            let _t = TcpTransport::connect(addr).unwrap();
            thread::sleep(Duration::from_millis(50));
        });
        let mut server_side = listener.accept().unwrap();
        assert!(!server_side.reconnect().unwrap());
        client.join().unwrap();
    }

    #[test]
    fn sim_accounting_attaches() {
        let listener = TcpListenerTransport::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut t = listener.accept().unwrap();
            let _ = t.recv().unwrap();
        });
        let env = SimEnv::new();
        let mut client = TcpTransport::connect(addr)
            .unwrap()
            .with_sim(env.clone(), LinkSpec::lan_100mbps());
        client.send(&Frame::Ack).unwrap();
        server.join().unwrap();
        assert_eq!(env.report().messages, 1);
    }
}
