//! The transport abstraction and the in-process channel transport.

use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::message::Frame;
use crate::simnet::{LinkSpec, SimEnv};
use crate::{Result, TransportError};

/// A bidirectional, ordered, reliable frame pipe between two nodes.
///
/// Implementations always move *encoded* frames, so byte accounting (and
/// the exercise of the codec) is identical for in-process and TCP
/// transports.
pub trait Transport: Send {
    /// Sends one frame to the peer.
    ///
    /// # Errors
    /// [`TransportError::Disconnected`] if the peer is gone.
    fn send(&mut self, frame: &Frame) -> Result<()>;

    /// Sends a train of frames, preserving order. Implementations backed
    /// by a stream socket override this to flush the whole train with one
    /// vectored write; the default just loops [`Transport::send`], so
    /// every transport keeps identical wire bytes and error semantics.
    ///
    /// # Errors
    /// [`TransportError::Disconnected`] if the peer is gone. On error the
    /// train may be partially sent; callers that need exactly-once
    /// delivery layer their own retransmission (see `ReliableTransport`).
    fn send_batch(&mut self, frames: &[&Frame]) -> Result<()> {
        for frame in frames {
            self.send(frame)?;
        }
        Ok(())
    }

    /// Receives the next frame, blocking until one arrives.
    ///
    /// # Errors
    /// [`TransportError::Disconnected`] if the peer is gone.
    fn recv(&mut self) -> Result<Frame>;

    /// Receives with a deadline.
    ///
    /// # Errors
    /// [`TransportError::Timeout`] if nothing arrives in time;
    /// [`TransportError::Disconnected`] if the peer is gone.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame>;

    /// Attempts to re-establish the underlying connection after a
    /// failure. Returns `Ok(true)` when a fresh connection replaced the
    /// broken one (any in-flight partial frame is discarded), `Ok(false)`
    /// when this transport has nothing to re-dial — the default, and the
    /// right answer for in-process channels and accepted server-side
    /// streams.
    ///
    /// # Errors
    /// Propagates connection errors from the re-dial.
    fn reconnect(&mut self) -> Result<bool> {
        Ok(false)
    }

    /// Splits this transport into independently owned send and receive
    /// halves, so one thread can write frames while another blocks in a
    /// read — the substrate for pipelined serve loops that reply out of
    /// order while a reader keeps draining requests.
    ///
    /// Returns `None` when the transport cannot be split (in-flight
    /// fault injectors, decorators, simulated links) — callers fall back
    /// to single-threaded operation. After a successful split the
    /// original transport must not be used again: socket transports
    /// hand their buffered read state to the receiver half, and the
    /// channel transport's receive side moves out entirely.
    fn split(&mut self) -> Option<(Box<dyn TransportSender>, Box<dyn TransportReceiver>)> {
        None
    }
}

/// The write half of a [`Transport::split`]: sends frames to the peer,
/// usable concurrently with the matching [`TransportReceiver`].
pub trait TransportSender: Send {
    /// Sends one frame to the peer.
    ///
    /// # Errors
    /// [`TransportError::Disconnected`] if the peer is gone.
    fn send(&mut self, frame: &Frame) -> Result<()>;

    /// Sends a train of frames in order; socket-backed halves override
    /// this with a single vectored write (see [`Transport::send_batch`]).
    ///
    /// # Errors
    /// [`TransportError::Disconnected`] if the peer is gone.
    fn send_batch(&mut self, frames: &[&Frame]) -> Result<()> {
        for frame in frames {
            self.send(frame)?;
        }
        Ok(())
    }
}

/// The read half of a [`Transport::split`].
pub trait TransportReceiver: Send {
    /// Receives the next frame, blocking until one arrives.
    ///
    /// # Errors
    /// [`TransportError::Disconnected`] if the peer is gone.
    fn recv(&mut self) -> Result<Frame>;

    /// Receives with a deadline.
    ///
    /// # Errors
    /// [`TransportError::Timeout`] if nothing arrives in time;
    /// [`TransportError::Disconnected`] if the peer is gone.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame>;
}

/// A bound server socket producing accepted [`Transport`] connections —
/// the abstraction serve loops are written against, so TCP and
/// Unix-domain servers share one accept loop.
pub trait Listener {
    /// The transport type of an accepted connection.
    type Conn: Transport + 'static;

    /// Blocks until a client connects.
    ///
    /// # Errors
    /// Propagates socket errors.
    fn accept(&self) -> Result<Self::Conn>;

    /// Waits up to `timeout` for a client, so an accept loop can poll a
    /// shutdown flag instead of blocking forever.
    ///
    /// # Errors
    /// [`TransportError::Timeout`] if nobody connected in time;
    /// otherwise propagates socket errors.
    fn accept_timeout(&self, timeout: Duration) -> Result<Self::Conn>;
}

/// Non-blocking I/O surface a reactor needs from a connection: raw-fd
/// registration, explicit blocking-mode control, resumable frame reads,
/// and readiness-driven flushing of a [`SendQueue`](crate::SendQueue).
///
/// Implementors are ordinary [`Transport`]s (TCP, Unix-domain) whose
/// socket a reactor temporarily owns in non-blocking mode. When a
/// connection escalates to a dedicated thread, the reactor restores
/// blocking mode and hands it back to the blocking serve loop — the
/// same object serves both disciplines.
#[cfg(unix)]
pub trait ReactorIo: Transport {
    /// The raw descriptor to register with a
    /// [`Poller`](crate::poller::Poller).
    fn raw_fd(&self) -> std::os::unix::io::RawFd;

    /// Switches the underlying socket between blocking and non-blocking
    /// mode.
    ///
    /// # Errors
    /// Propagates socket errors.
    fn set_nonblocking(&self, nonblocking: bool) -> Result<()>;

    /// Attempts one non-blocking frame read: `Ok(Some)` with a decoded
    /// frame, `Ok(None)` when the socket has no complete frame yet
    /// (partial progress is retained for the next readiness event).
    ///
    /// # Errors
    /// [`TransportError::Disconnected`] on peer closure; decode and I/O
    /// errors as-is.
    fn try_read_frame(&mut self) -> Result<Option<Frame>>;

    /// True when frame bytes already read from the socket sit buffered
    /// in user space. A level-triggered poller never reports these —
    /// the kernel buffer may be empty — so an event loop that pauses
    /// reads (back-pressure) and later resumes must consult this, not
    /// just readiness, or buffered frames strand until the peer happens
    /// to send more.
    fn has_buffered_input(&self) -> bool {
        false
    }

    /// Flushes as much of `queue` as the socket accepts without
    /// blocking; `Ok(true)` when the queue drained.
    ///
    /// # Errors
    /// As [`SendQueue::flush`](crate::SendQueue::flush).
    fn flush_queue(&mut self, queue: &mut crate::SendQueue) -> Result<bool>;
}

/// Listener-side counterpart of [`ReactorIo`]: lets a reactor register
/// the listening socket itself and accept without blocking.
#[cfg(unix)]
pub trait PollableListener: Listener {
    /// The raw descriptor to register with a
    /// [`Poller`](crate::poller::Poller).
    fn raw_fd(&self) -> std::os::unix::io::RawFd;

    /// Switches the listening socket between blocking and non-blocking
    /// mode.
    ///
    /// # Errors
    /// Propagates socket errors.
    fn set_nonblocking(&self, nonblocking: bool) -> Result<()>;

    /// Accepts one pending connection without blocking; `Ok(None)` when
    /// the backlog is empty. The accepted connection's blocking mode is
    /// unspecified — callers set it explicitly before use.
    ///
    /// # Errors
    /// Propagates socket errors.
    fn try_accept(&self) -> Result<Option<Self::Conn>>;
}

/// In-process transport over crossbeam channels.
///
/// When built with [`channel_pair`]'s `env`/`link` parameters, every sent
/// frame charges the simulated network with its encoded size — the same
/// accounting a real link would see.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    env: Option<SimEnv>,
    link: LinkSpec,
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("link", &self.link)
            .field("simulated", &self.env.is_some())
            .finish()
    }
}

/// Creates a connected pair of in-process transports. If `env` is given,
/// both directions charge it for transfers over `link`.
pub fn channel_pair(env: Option<SimEnv>, link: LinkSpec) -> (ChannelTransport, ChannelTransport) {
    let (atx, brx) = crossbeam::channel::unbounded();
    let (btx, arx) = crossbeam::channel::unbounded();
    (
        ChannelTransport {
            tx: atx,
            rx: arx,
            env: env.clone(),
            link,
        },
        ChannelTransport {
            tx: btx,
            rx: brx,
            env,
            link,
        },
    )
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &Frame) -> Result<()> {
        let bytes = frame.encode();
        if let Some(env) = &self.env {
            env.charge_transfer(&self.link, bytes.len());
        }
        self.tx
            .send(bytes)
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv(&mut self) -> Result<Frame> {
        crate::blocking::blocking_region("channel.recv");
        let bytes = self.rx.recv().map_err(|_| TransportError::Disconnected)?;
        Frame::decode(&bytes)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame> {
        crate::blocking::blocking_region("channel.recv_timeout");
        let bytes = self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })?;
        Frame::decode(&bytes)
    }

    fn split(&mut self) -> Option<(Box<dyn TransportSender>, Box<dyn TransportReceiver>)> {
        // The receive side moves out; the original transport keeps a
        // receiver whose sender was dropped, so any further recv on it
        // reports Disconnected instead of silently stealing frames.
        let (dead_tx, dead_rx) = crossbeam::channel::unbounded();
        drop(dead_tx);
        let rx = std::mem::replace(&mut self.rx, dead_rx);
        let sender = ChannelSenderHalf {
            tx: self.tx.clone(),
            env: self.env.clone(),
            link: self.link,
        };
        Some((Box::new(sender), Box::new(ChannelReceiverHalf { rx })))
    }
}

/// Write half of a split [`ChannelTransport`].
struct ChannelSenderHalf {
    tx: Sender<Vec<u8>>,
    env: Option<SimEnv>,
    link: LinkSpec,
}

impl TransportSender for ChannelSenderHalf {
    fn send(&mut self, frame: &Frame) -> Result<()> {
        let bytes = frame.encode();
        if let Some(env) = &self.env {
            env.charge_transfer(&self.link, bytes.len());
        }
        self.tx
            .send(bytes)
            .map_err(|_| TransportError::Disconnected)
    }
}

/// Read half of a split [`ChannelTransport`].
struct ChannelReceiverHalf {
    rx: Receiver<Vec<u8>>,
}

impl TransportReceiver for ChannelReceiverHalf {
    fn recv(&mut self) -> Result<Frame> {
        crate::blocking::blocking_region("channel.recv");
        let bytes = self.rx.recv().map_err(|_| TransportError::Disconnected)?;
        Frame::decode(&bytes)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame> {
        crate::blocking::blocking_region("channel.recv_timeout");
        let bytes = self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })?;
        Frame::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simnet::{LinkSpec, SimEnv};

    #[test]
    fn frames_cross_the_pair() {
        let (mut a, mut b) = channel_pair(None, LinkSpec::free());
        a.send(&Frame::Ack).unwrap();
        assert_eq!(b.recv().unwrap(), Frame::Ack);
        b.send(&Frame::Lookup { name: "svc".into() }).unwrap();
        assert_eq!(a.recv().unwrap(), Frame::Lookup { name: "svc".into() });
    }

    #[test]
    fn send_charges_sim_env() {
        let env = SimEnv::new();
        let (mut a, mut b) = channel_pair(Some(env.clone()), LinkSpec::lan_100mbps());
        let frame = Frame::CallReply {
            payload: vec![0u8; 1000],
        };
        a.send(&frame).unwrap();
        let r = env.report();
        assert_eq!(r.messages, 1);
        assert_eq!(r.bytes_sent as usize, frame.wire_size());
        assert!(r.transfer_us > 200.0, "latency + bandwidth time");
        let _ = b.recv().unwrap();
    }

    #[test]
    fn disconnect_detected() {
        let (mut a, b) = channel_pair(None, LinkSpec::free());
        drop(b);
        assert!(matches!(
            a.send(&Frame::Ack),
            Err(TransportError::Disconnected)
        ));
        assert!(matches!(a.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn recv_timeout_fires() {
        let (mut a, _b) = channel_pair(None, LinkSpec::free());
        let err = a.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout));
    }

    #[test]
    fn split_halves_work_concurrently() {
        let (mut a, mut b) = channel_pair(None, LinkSpec::free());
        let (mut tx, mut rx) = a.split().expect("channel transports split");
        tx.send(&Frame::Ack).unwrap();
        assert_eq!(b.recv().unwrap(), Frame::Ack);
        b.send(&Frame::CountReply(9)).unwrap();
        assert_eq!(rx.recv().unwrap(), Frame::CountReply(9));
        // The original transport's receive side moved into the half.
        assert!(matches!(a.recv(), Err(TransportError::Disconnected)));
        let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout));
    }

    #[test]
    fn ordering_preserved() {
        let (mut a, mut b) = channel_pair(None, LinkSpec::free());
        for i in 0..100u64 {
            a.send(&Frame::CountReply(i)).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(b.recv().unwrap(), Frame::CountReply(i));
        }
    }
}
