//! Fault injection: deterministic partial failure for testing.
//!
//! The paper endorses the Waldo et al. position (§6.2): middleware must
//! not hide that networks fail — "NRMI remote methods throw remote
//! exceptions that the programmer is responsible for catching". This
//! module makes those failures reproducible: [`FaultyTransport`] wraps
//! any [`Transport`] and injects faults from a deterministic
//! [`FaultPlan`], so tests can prove that a failed call surfaces as an
//! error *and leaves the caller's heap untouched* (no partial restore).

use std::collections::VecDeque;
use std::time::Duration;

use crate::endpoint::Transport;
use crate::message::Frame;
use crate::{Result, TransportError};

/// What to do to one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Let it through.
    Pass,
    /// Drop the frame silently (the peer never sees it).
    DropFrame,
    /// Fail the operation with a disconnect error.
    Disconnect,
    /// Corrupt the frame's bytes before delivery.
    Corrupt,
    /// Deliver the frame twice (a retransmission the network duplicated:
    /// on send the peer sees two copies; on recv the same frame is
    /// handed up again on the next receive).
    Duplicate,
    /// Hold the frame for the given duration before delivery. Against a
    /// receive deadline shorter than the delay this surfaces as a
    /// [`TransportError::Timeout`] — the frame is late, not lost.
    Delay(Duration),
}

/// A deterministic schedule of faults: the `n`-th send consults
/// `sends[n]` (out-of-range ⇒ pass), and likewise for receives.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Faults applied to sends, in order.
    pub sends: Vec<Fault>,
    /// Faults applied to receives, in order.
    pub recvs: Vec<Fault>,
}

impl FaultPlan {
    /// A plan that never faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fails the `n`-th send (0-based) with a disconnect.
    pub fn disconnect_on_send(n: usize) -> Self {
        let mut sends = vec![Fault::Pass; n];
        sends.push(Fault::Disconnect);
        FaultPlan {
            sends,
            recvs: Vec::new(),
        }
    }

    /// Drops the `n`-th send silently (the caller will block or time out
    /// waiting for a reply that never comes).
    pub fn drop_on_send(n: usize) -> Self {
        let mut sends = vec![Fault::Pass; n];
        sends.push(Fault::DropFrame);
        FaultPlan {
            sends,
            recvs: Vec::new(),
        }
    }

    /// Corrupts the `n`-th received frame.
    pub fn corrupt_on_recv(n: usize) -> Self {
        let mut recvs = vec![Fault::Pass; n];
        recvs.push(Fault::Corrupt);
        FaultPlan {
            recvs,
            sends: Vec::new(),
        }
    }

    /// Duplicates the `n`-th send (the peer sees the frame twice).
    pub fn duplicate_on_send(n: usize) -> Self {
        let mut sends = vec![Fault::Pass; n];
        sends.push(Fault::Duplicate);
        FaultPlan {
            sends,
            recvs: Vec::new(),
        }
    }

    /// Drops the `n`-th received frame (the reply vanishes in flight;
    /// under a receive deadline the caller observes a timeout).
    pub fn drop_on_recv(n: usize) -> Self {
        let mut recvs = vec![Fault::Pass; n];
        recvs.push(Fault::DropFrame);
        FaultPlan {
            recvs,
            sends: Vec::new(),
        }
    }
}

/// A [`Transport`] wrapper that injects faults per a [`FaultPlan`].
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    sends_seen: usize,
    recvs_seen: usize,
    /// Frames queued for redelivery by [`Fault::Duplicate`] on receive.
    /// Popped ahead of the plan (a duplicate is a free delivery, not a
    /// scheduled operation).
    pending: VecDeque<Frame>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for FaultyTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("inner", &self.inner)
            .field("sends_seen", &self.sends_seen)
            .field("recvs_seen", &self.recvs_seen)
            .finish()
    }
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the given schedule.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultyTransport {
            inner,
            plan,
            sends_seen: 0,
            recvs_seen: 0,
            pending: VecDeque::new(),
        }
    }

    /// Operations observed so far, `(sends, recvs)`.
    pub fn observed(&self) -> (usize, usize) {
        (self.sends_seen, self.recvs_seen)
    }

    fn next_send_fault(&mut self) -> Fault {
        let f = self
            .plan
            .sends
            .get(self.sends_seen)
            .copied()
            .unwrap_or(Fault::Pass);
        self.sends_seen += 1;
        f
    }

    fn next_recv_fault(&mut self) -> Fault {
        let f = self
            .plan
            .recvs
            .get(self.recvs_seen)
            .copied()
            .unwrap_or(Fault::Pass);
        self.recvs_seen += 1;
        f
    }

    fn corrupt(frame: &Frame) -> Frame {
        // Re-encode with a flipped byte; decoding at the consumer fails
        // (or yields a detectably different frame). Here we model the
        // post-decode effect: deliver an ErrorReply-shaped poison frame.
        let mut bytes = frame.encode();
        if let Some(b) = bytes.first_mut() {
            *b ^= 0x5a;
        }
        match Frame::decode(&bytes) {
            Ok(decoded) => decoded,
            Err(_) => Frame::ErrorReply {
                message: "corrupted frame".into(),
            },
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, frame: &Frame) -> Result<()> {
        match self.next_send_fault() {
            Fault::Pass => self.inner.send(frame),
            Fault::DropFrame => Ok(()),
            Fault::Disconnect => Err(TransportError::Disconnected),
            Fault::Corrupt => self.inner.send(&Self::corrupt(frame)),
            Fault::Duplicate => {
                self.inner.send(frame)?;
                self.inner.send(frame)
            }
            Fault::Delay(d) => {
                std::thread::sleep(d);
                self.inner.send(frame)
            }
        }
    }

    fn recv(&mut self) -> Result<Frame> {
        if let Some(frame) = self.pending.pop_front() {
            return Ok(frame);
        }
        let fault = self.next_recv_fault();
        match fault {
            Fault::Pass => self.inner.recv(),
            Fault::DropFrame => {
                let _ = self.inner.recv()?;
                self.inner.recv()
            }
            Fault::Disconnect => Err(TransportError::Disconnected),
            Fault::Corrupt => {
                let frame = self.inner.recv()?;
                Ok(Self::corrupt(&frame))
            }
            Fault::Duplicate => {
                let frame = self.inner.recv()?;
                self.pending.push_back(frame.clone());
                Ok(frame)
            }
            Fault::Delay(d) => {
                std::thread::sleep(d);
                self.inner.recv()
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame> {
        if let Some(frame) = self.pending.pop_front() {
            return Ok(frame);
        }
        match self.next_recv_fault() {
            Fault::Pass => self.inner.recv_timeout(timeout),
            Fault::DropFrame => {
                let _ = self.inner.recv_timeout(timeout)?;
                self.inner.recv_timeout(timeout)
            }
            Fault::Disconnect => Err(TransportError::Disconnected),
            Fault::Corrupt => {
                let frame = self.inner.recv_timeout(timeout)?;
                Ok(Self::corrupt(&frame))
            }
            Fault::Duplicate => {
                let frame = self.inner.recv_timeout(timeout)?;
                self.pending.push_back(frame.clone());
                Ok(frame)
            }
            Fault::Delay(d) => {
                // The frame is late: if the deadline expires first the
                // caller sees a timeout and the frame stays queued
                // inside the inner transport for a later receive.
                if d >= timeout {
                    std::thread::sleep(timeout);
                    Err(TransportError::Timeout)
                } else {
                    std::thread::sleep(d);
                    self.inner.recv_timeout(timeout - d)
                }
            }
        }
    }

    fn reconnect(&mut self) -> Result<bool> {
        // A reconnect abandons the old stream; late duplicates die with
        // it.
        self.pending.clear();
        self.inner.reconnect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::channel_pair;
    use crate::simnet::LinkSpec;

    #[test]
    fn pass_through_without_faults() {
        let (a, mut b) = channel_pair(None, LinkSpec::free());
        let mut faulty = FaultyTransport::new(a, FaultPlan::none());
        faulty.send(&Frame::Ack).unwrap();
        assert_eq!(b.recv().unwrap(), Frame::Ack);
        b.send(&Frame::CountReply(9)).unwrap();
        assert_eq!(faulty.recv().unwrap(), Frame::CountReply(9));
        assert_eq!(faulty.observed(), (1, 1));
    }

    #[test]
    fn scheduled_disconnect_fires_once_at_position() {
        let (a, mut b) = channel_pair(None, LinkSpec::free());
        let mut faulty = FaultyTransport::new(a, FaultPlan::disconnect_on_send(1));
        faulty.send(&Frame::Ack).unwrap();
        assert!(matches!(
            faulty.send(&Frame::Ack),
            Err(TransportError::Disconnected)
        ));
        // Past the schedule: passes again.
        faulty.send(&Frame::Ack).unwrap();
        assert_eq!(b.recv().unwrap(), Frame::Ack);
        assert_eq!(b.recv().unwrap(), Frame::Ack);
    }

    #[test]
    fn dropped_send_never_arrives() {
        let (a, mut b) = channel_pair(None, LinkSpec::free());
        let mut faulty = FaultyTransport::new(a, FaultPlan::drop_on_send(0));
        faulty.send(&Frame::CountReply(1)).unwrap(); // dropped
        faulty.send(&Frame::CountReply(2)).unwrap();
        assert_eq!(
            b.recv().unwrap(),
            Frame::CountReply(2),
            "first frame vanished"
        );
    }

    #[test]
    fn dropped_recv_skips_one_frame() {
        let (a, mut b) = channel_pair(None, LinkSpec::free());
        let plan = FaultPlan {
            sends: Vec::new(),
            recvs: vec![Fault::DropFrame],
        };
        let mut faulty = FaultyTransport::new(a, plan);
        b.send(&Frame::CountReply(1)).unwrap();
        b.send(&Frame::CountReply(2)).unwrap();
        assert_eq!(
            faulty.recv().unwrap(),
            Frame::CountReply(2),
            "first frame swallowed"
        );
    }

    #[test]
    fn duplicated_send_arrives_twice() {
        let (a, mut b) = channel_pair(None, LinkSpec::free());
        let mut faulty = FaultyTransport::new(a, FaultPlan::duplicate_on_send(0));
        faulty.send(&Frame::CountReply(5)).unwrap();
        assert_eq!(b.recv().unwrap(), Frame::CountReply(5));
        assert_eq!(b.recv().unwrap(), Frame::CountReply(5), "duplicate copy");
    }

    #[test]
    fn duplicated_recv_redelivers_the_frame() {
        let (a, mut b) = channel_pair(None, LinkSpec::free());
        let plan = FaultPlan {
            sends: Vec::new(),
            recvs: vec![Fault::Duplicate],
        };
        let mut faulty = FaultyTransport::new(a, plan);
        b.send(&Frame::CountReply(1)).unwrap();
        b.send(&Frame::CountReply(2)).unwrap();
        assert_eq!(faulty.recv().unwrap(), Frame::CountReply(1));
        assert_eq!(faulty.recv().unwrap(), Frame::CountReply(1), "redelivered");
        assert_eq!(faulty.recv().unwrap(), Frame::CountReply(2));
    }

    #[test]
    fn delayed_recv_times_out_then_delivers() {
        let (a, mut b) = channel_pair(None, LinkSpec::free());
        let plan = FaultPlan {
            sends: Vec::new(),
            recvs: vec![Fault::Delay(Duration::from_millis(50))],
        };
        let mut faulty = FaultyTransport::new(a, plan);
        b.send(&Frame::CountReply(9)).unwrap();
        // Deadline shorter than the delay: the frame is late.
        let err = faulty.recv_timeout(Duration::from_millis(5)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout), "{err:?}");
        // Past the schedule: the queued frame is still there.
        assert_eq!(faulty.recv().unwrap(), Frame::CountReply(9));
    }

    #[test]
    fn delayed_recv_within_deadline_delivers() {
        let (a, mut b) = channel_pair(None, LinkSpec::free());
        let plan = FaultPlan {
            sends: Vec::new(),
            recvs: vec![Fault::Delay(Duration::from_millis(5))],
        };
        let mut faulty = FaultyTransport::new(a, plan);
        b.send(&Frame::CountReply(3)).unwrap();
        assert_eq!(
            faulty.recv_timeout(Duration::from_millis(200)).unwrap(),
            Frame::CountReply(3)
        );
    }

    #[test]
    fn corrupted_recv_changes_the_frame() {
        let (a, mut b) = channel_pair(None, LinkSpec::free());
        let mut faulty = FaultyTransport::new(a, FaultPlan::corrupt_on_recv(0));
        b.send(&Frame::CountReply(42)).unwrap();
        let got = faulty.recv().unwrap();
        assert_ne!(got, Frame::CountReply(42), "corruption must be observable");
    }
}
