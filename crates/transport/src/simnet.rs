//! Deterministic simulated-time model of the paper's test environment.
//!
//! The evaluation hardware (§5.3.3) — a dual 750 MHz SunBlade 1000, a
//! 440 MHz Ultra 10, and a 100 Mbps effective-bandwidth network — is long
//! gone, and wall-clock measurements on a modern laptop would reproduce
//! neither the CPU/network balance nor the fast/slow machine asymmetry
//! the paper's numbers rest on. This module models that environment:
//! middleware code charges a shared [`SimEnv`] with CPU microseconds
//! (scaled by the executing [`MachineSpec`]'s speed factor) and with byte
//! transfers over a [`LinkSpec`] (latency + serialization delay at the
//! link's bandwidth). The accumulated clock is the simulated elapsed time
//! of a synchronous RPC exchange, which is exactly what the paper's
//! tables report (milliseconds per call).

use std::sync::Arc;

use parking_lot::Mutex;

/// A machine participating in the experiment, characterized by how much
/// slower it is than the reference machine.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    /// Human-readable name (for reports).
    pub name: String,
    /// CPU time multiplier relative to the reference machine: the paper's
    /// fast 750 MHz node is `1.0`; its slow 440 MHz node is `750/440 ≈ 1.7`.
    pub speed_factor: f64,
}

impl MachineSpec {
    /// The paper's fast node: SunBlade 1000, 750 MHz (reference speed).
    pub fn fast() -> Self {
        MachineSpec {
            name: "sunblade-750MHz".to_owned(),
            speed_factor: 1.0,
        }
    }

    /// The paper's slow node: Ultra 10, 440 MHz.
    pub fn slow() -> Self {
        MachineSpec {
            name: "ultra10-440MHz".to_owned(),
            speed_factor: 750.0 / 440.0,
        }
    }

    /// A custom machine.
    pub fn new(name: impl Into<String>, speed_factor: f64) -> Self {
        assert!(speed_factor > 0.0, "speed factor must be positive");
        MachineSpec {
            name: name.into(),
            speed_factor,
        }
    }
}

/// A network link between two machines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// One-way latency in microseconds.
    pub latency_us: f64,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: f64,
}

impl LinkSpec {
    /// The paper's LAN: 100 Mbps effective bandwidth; we model a typical
    /// switched-Ethernet one-way latency of 200 µs.
    pub fn lan_100mbps() -> Self {
        LinkSpec {
            latency_us: 200.0,
            bandwidth_bps: 100e6,
        }
    }

    /// Two JVMs on one physical machine (Table 3's configuration):
    /// loopback transfers modelled as memory-speed (≈ 10 Gbps, 20 µs).
    pub fn same_machine() -> Self {
        LinkSpec {
            latency_us: 20.0,
            bandwidth_bps: 10e9,
        }
    }

    /// A zero-cost link: transfers are free. Used for the pure local
    /// baseline (Table 1), where no middleware runs at all.
    pub fn free() -> Self {
        LinkSpec {
            latency_us: 0.0,
            bandwidth_bps: f64::INFINITY,
        }
    }

    /// A custom link.
    pub fn new(latency_us: f64, bandwidth_bps: f64) -> Self {
        assert!(
            latency_us >= 0.0 && bandwidth_bps > 0.0,
            "invalid link parameters"
        );
        LinkSpec {
            latency_us,
            bandwidth_bps,
        }
    }

    /// Microseconds to move `bytes` one way over this link.
    pub fn transfer_us(&self, bytes: usize) -> f64 {
        if self.bandwidth_bps.is_infinite() {
            return self.latency_us;
        }
        self.latency_us + (bytes as f64 * 8.0) / self.bandwidth_bps * 1e6
    }
}

#[derive(Debug, Default)]
struct Tallies {
    cpu_us: f64,
    transfer_us: f64,
    bytes_sent: u64,
    messages: u64,
}

/// A point-in-time report of accumulated simulated costs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimReport {
    /// CPU microseconds, already scaled by machine speed factors.
    pub cpu_us: f64,
    /// Transfer microseconds (latency + bandwidth-limited serialization).
    pub transfer_us: f64,
    /// Total bytes sent across the link.
    pub bytes_sent: u64,
    /// Number of messages sent.
    pub messages: u64,
}

impl SimReport {
    /// Total simulated elapsed microseconds (synchronous exchange: CPU
    /// and transfer time add).
    pub fn total_us(&self) -> f64 {
        self.cpu_us + self.transfer_us
    }

    /// Total simulated elapsed milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_us() / 1000.0
    }
}

/// Shared simulated-cost accumulator for one experiment.
///
/// Clone handles freely; all clones share one clock. Middleware charges
/// it as work happens; benchmarks snapshot with [`SimEnv::report`] and
/// reset between measurements with [`SimEnv::reset`].
#[derive(Clone, Debug, Default)]
pub struct SimEnv {
    inner: Arc<Mutex<Tallies>>,
}

impl SimEnv {
    /// Creates a fresh environment with the clock at zero.
    pub fn new() -> Self {
        SimEnv::default()
    }

    /// Charges `us` microseconds of CPU work executed on `machine`.
    pub fn charge_cpu(&self, machine: &MachineSpec, us: f64) {
        debug_assert!(us >= 0.0);
        self.inner.lock().cpu_us += us * machine.speed_factor;
    }

    /// Charges a one-way transfer of `bytes` over `link`.
    pub fn charge_transfer(&self, link: &LinkSpec, bytes: usize) {
        let mut t = self.inner.lock();
        t.transfer_us += link.transfer_us(bytes);
        t.bytes_sent += bytes as u64;
        t.messages += 1;
    }

    /// Snapshots the accumulated costs.
    pub fn report(&self) -> SimReport {
        let t = self.inner.lock();
        SimReport {
            cpu_us: t.cpu_us,
            transfer_us: t.transfer_us,
            bytes_sent: t.bytes_sent,
            messages: t.messages,
        }
    }

    /// Resets the clock and counters to zero.
    pub fn reset(&self) {
        *self.inner.lock() = Tallies::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_specs_match_paper_hardware() {
        let fast = MachineSpec::fast();
        let slow = MachineSpec::slow();
        assert_eq!(fast.speed_factor, 1.0);
        assert!((slow.speed_factor - 1.7045).abs() < 0.001);
    }

    #[test]
    #[should_panic(expected = "speed factor must be positive")]
    fn zero_speed_rejected() {
        let _ = MachineSpec::new("broken", 0.0);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let lan = LinkSpec::lan_100mbps();
        // 12,500 bytes = 100,000 bits = 1 ms at 100 Mbps, plus latency.
        let us = lan.transfer_us(12_500);
        assert!((us - (200.0 + 1000.0)).abs() < 1e-6, "{us}");
        // Free link: everything is latency (zero).
        assert_eq!(LinkSpec::free().transfer_us(1_000_000), 0.0);
    }

    #[test]
    fn same_machine_link_is_much_faster_than_lan() {
        let bytes = 50_000;
        assert!(
            LinkSpec::same_machine().transfer_us(bytes)
                < LinkSpec::lan_100mbps().transfer_us(bytes) / 10.0
        );
    }

    #[test]
    fn cpu_charges_scale_by_machine() {
        let env = SimEnv::new();
        env.charge_cpu(&MachineSpec::fast(), 100.0);
        env.charge_cpu(&MachineSpec::slow(), 100.0);
        let r = env.report();
        assert!((r.cpu_us - (100.0 + 100.0 * 750.0 / 440.0)).abs() < 1e-9);
    }

    #[test]
    fn transfer_accounting_and_reset() {
        let env = SimEnv::new();
        env.charge_transfer(&LinkSpec::lan_100mbps(), 1000);
        env.charge_transfer(&LinkSpec::lan_100mbps(), 2000);
        let r = env.report();
        assert_eq!(r.bytes_sent, 3000);
        assert_eq!(r.messages, 2);
        assert!(r.transfer_us > 0.0);
        assert!(r.total_ms() > 0.0);
        env.reset();
        assert_eq!(env.report(), SimReport::default());
    }

    #[test]
    fn clones_share_the_clock() {
        let env = SimEnv::new();
        let clone = env.clone();
        clone.charge_cpu(&MachineSpec::fast(), 42.0);
        assert_eq!(env.report().cpu_us, 42.0);
    }
}
