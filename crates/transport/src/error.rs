//! Transport error type.

use std::error::Error;
use std::fmt;

/// Errors raised by transports and frame codecs.
#[derive(Debug)]
#[non_exhaustive]
pub enum TransportError {
    /// The peer closed the connection (channel disconnected / EOF).
    Disconnected,
    /// A receive deadline elapsed.
    Timeout,
    /// A frame failed to encode or decode.
    Codec(nrmi_wire::WireError),
    /// An unknown frame tag was received.
    UnknownFrame(u8),
    /// Underlying socket I/O failed.
    Io(std::io::Error),
    /// A frame exceeded the maximum allowed size.
    FrameTooLarge {
        /// Declared frame length.
        len: usize,
        /// Maximum accepted length.
        max: usize,
    },
    /// A reliable call exhausted its deadline or retry budget without a
    /// reply. The call executed *at most once* on the server — it may
    /// have run without its reply surviving, but it never ran twice.
    DeadlineExceeded {
        /// Send attempts made before giving up.
        attempts: u32,
    },
    /// A reply was requested for a call id that is not outstanding: no
    /// call was issued, or its reply was already consumed. This is the
    /// typed replacement for what used to be an `expect` panic in the
    /// single-in-flight receive path.
    NoPendingCall {
        /// The requested call seq, when a specific one was named.
        seq: Option<u64>,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Timeout => write!(f, "receive timed out"),
            TransportError::Codec(e) => write!(f, "frame codec error: {e}"),
            TransportError::UnknownFrame(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            TransportError::Io(e) => write!(f, "socket error: {e}"),
            TransportError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds maximum {max}")
            }
            TransportError::DeadlineExceeded { attempts } => {
                write!(f, "call deadline exceeded after {attempts} attempt(s)")
            }
            TransportError::NoPendingCall { seq: Some(seq) } => {
                write!(f, "no pending call with seq {seq} (never issued, or its reply was already consumed)")
            }
            TransportError::NoPendingCall { seq: None } => {
                write!(f, "no call is pending a reply")
            }
        }
    }
}

impl Error for TransportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransportError::Codec(e) => Some(e),
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nrmi_wire::WireError> for TransportError {
    fn from(e: nrmi_wire::WireError) -> Self {
        TransportError::Codec(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + Error + 'static>() {}
        assert_bounds::<TransportError>();
    }

    #[test]
    fn displays() {
        assert!(TransportError::Disconnected
            .to_string()
            .contains("disconnected"));
        assert!(TransportError::Timeout.to_string().contains("timed out"));
        assert!(TransportError::UnknownFrame(0xab)
            .to_string()
            .contains("0xab"));
        assert!(TransportError::FrameTooLarge { len: 10, max: 5 }
            .to_string()
            .contains("10"));
        assert!(TransportError::DeadlineExceeded { attempts: 3 }
            .to_string()
            .contains("3 attempt"));
        assert!(TransportError::NoPendingCall { seq: Some(7) }
            .to_string()
            .contains("seq 7"));
        assert!(TransportError::NoPendingCall { seq: None }
            .to_string()
            .contains("no call"));
        let codec = TransportError::Codec(nrmi_wire::WireError::BadMagic);
        assert!(codec.source().is_some());
    }
}
