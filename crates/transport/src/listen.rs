//! The shared non-blocking accept-poll loop behind the TCP and
//! Unix-domain `accept_timeout` implementations.
//!
//! `std` listeners have no native accept deadline, so a timed accept
//! flips the listener non-blocking and polls. Both socket families need
//! the identical loop, and both must restore the listener's blocking
//! flag on *every* exit path — success, timeout, and accept error alike
//! — or the next plain `accept` spins on `WouldBlock`. A drop guard
//! makes the restoration unconditional instead of hand-copied per
//! return.

use std::io::ErrorKind;
use std::time::{Duration, Instant};

use crate::{Result, TransportError};

/// How long the poll loop sleeps between non-blocking accept attempts.
const ACCEPT_POLL_STEP: Duration = Duration::from_millis(2);

/// Restores the listener's blocking flag when the poll loop exits by
/// any path (including panics unwinding through an accept callback).
struct BlockingGuard<'a> {
    set_nonblocking: &'a dyn Fn(bool) -> std::io::Result<()>,
}

impl Drop for BlockingGuard<'_> {
    fn drop(&mut self) {
        let _ = (self.set_nonblocking)(false);
    }
}

/// Polls `accept` (which must be non-blocking once `set_nonblocking`
/// has run) until a connection arrives or `timeout` elapses. The
/// listener's blocking flag is restored on every exit path.
///
/// # Errors
/// [`TransportError::Timeout`] if nobody connected in time; otherwise
/// propagates accept/socket errors.
pub(crate) fn poll_accept<S>(
    set_nonblocking: impl Fn(bool) -> std::io::Result<()>,
    mut accept: impl FnMut() -> std::io::Result<S>,
    timeout: Duration,
) -> Result<S> {
    set_nonblocking(true)?;
    let _restore = BlockingGuard {
        set_nonblocking: &set_nonblocking,
    };
    let deadline = Instant::now() + timeout;
    loop {
        match accept() {
            Ok(conn) => return Ok(conn),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(TransportError::Timeout);
                }
                std::thread::sleep(ACCEPT_POLL_STEP.min(timeout));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn success_restores_blocking_flag() {
        let flag = Cell::new(false);
        let got: Result<u32> = poll_accept(
            |nb| {
                flag.set(nb);
                Ok(())
            },
            || Ok(42u32),
            Duration::from_millis(50),
        );
        assert_eq!(got.unwrap(), 42);
        assert!(!flag.get(), "blocking flag restored after success");
    }

    #[test]
    fn timeout_restores_blocking_flag() {
        let flag = Cell::new(false);
        let got: Result<u32> = poll_accept(
            |nb| {
                flag.set(nb);
                Ok(())
            },
            || Err(std::io::Error::new(ErrorKind::WouldBlock, "empty")),
            Duration::from_millis(10),
        );
        assert!(matches!(got, Err(TransportError::Timeout)));
        assert!(!flag.get(), "blocking flag restored after timeout");
    }

    #[test]
    fn accept_error_restores_blocking_flag() {
        let flag = Cell::new(false);
        let got: Result<u32> = poll_accept(
            |nb| {
                flag.set(nb);
                Ok(())
            },
            || Err(std::io::Error::other("listener torn down")),
            Duration::from_millis(50),
        );
        assert!(matches!(got, Err(TransportError::Io(_))));
        assert!(!flag.get(), "blocking flag restored after accept error");
    }

    #[test]
    fn set_nonblocking_failure_propagates() {
        let got: Result<u32> = poll_accept(
            |_| Err(std::io::Error::other("no fcntl for you")),
            || Ok(1u32),
            Duration::from_millis(10),
        );
        assert!(got.is_err());
    }
}
