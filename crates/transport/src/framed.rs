//! Length-prefixed framing shared by the socket transports.
//!
//! A frame travels as a 4-byte big-endian length followed by the encoded
//! frame body. Both halves are built in one pooled buffer and shipped
//! with a single `write_all`, so the prefix and body never straddle
//! separate writes (small frames leave in one packet even without
//! Nagle's algorithm) and steady-state sends reuse the buffer
//! allocation. The receive side reuses its buffer the same way.

use std::io::{Read, Write};

use nrmi_wire::ByteWriter;

use crate::message::Frame;
use crate::tcp::MAX_FRAME;
use crate::{Result, TransportError};

/// Encodes `[length][frame]` into `buf` (reusing its storage) and ships
/// it with a single write. The buffer is handed back through `buf` even
/// when the write fails. Returns the frame body length, for transfer
/// accounting.
pub(crate) fn write_frame(
    stream: &mut impl Write,
    frame: &Frame,
    buf: &mut Vec<u8>,
) -> Result<usize> {
    let mut w = ByteWriter::with_buffer(std::mem::take(buf));
    w.put_slice(&[0u8; 4]);
    frame.encode_into(&mut w);
    let mut bytes = w.into_bytes();
    let body_len = bytes.len() - 4;
    bytes[..4].copy_from_slice(&(body_len as u32).to_be_bytes());
    let outcome = stream.write_all(&bytes).and_then(|()| stream.flush());
    *buf = bytes;
    outcome?;
    Ok(body_len)
}

/// Reads one `[length][frame]` message, reusing `buf` as the receive
/// buffer. EOF at a frame boundary reports
/// [`TransportError::Disconnected`].
pub(crate) fn read_frame(stream: &mut impl Read, buf: &mut Vec<u8>) -> Result<Frame> {
    let mut len_buf = [0u8; 4];
    if let Err(e) = stream.read_exact(&mut len_buf) {
        return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TransportError::Disconnected
        } else {
            TransportError::Io(e)
        });
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(TransportError::FrameTooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    buf.clear();
    buf.resize(len, 0);
    stream.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TransportError::Disconnected
        } else {
            TransportError::Io(e)
        }
    })?;
    Frame::decode(buf)
}
