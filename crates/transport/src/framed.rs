//! Length-prefixed framing shared by the socket transports.
//!
//! A frame travels as a 4-byte big-endian length followed by the encoded
//! frame body. Both halves are built in one pooled buffer and shipped
//! with a single `write_all`, so the prefix and body never straddle
//! separate writes (small frames leave in one packet even without
//! Nagle's algorithm) and steady-state sends reuse the buffer
//! allocation.
//!
//! The receive side is a [`FrameReader`]: a resumable parser that keeps
//! the in-flight frame's partial state across calls. That matters for
//! two failure modes:
//!
//! * **Timeout mid-frame.** With a read deadline set, the OS can hand us
//!   the 4-byte length (or part of the body) and then time out. A naive
//!   reader that discards that progress desynchronizes the stream — the
//!   next `recv` misparses body bytes as a length. The reader instead
//!   returns the timeout error with its cursor intact, and the next call
//!   resumes exactly where it left off.
//! * **Hostile length prefix.** The declared length is attacker
//!   controlled (up to `MAX_FRAME` = 64 MiB). Allocating it up front, in
//!   zeroed memory, before a single body byte arrives is a cheap
//!   memory-exhaustion lever. The reader grows its buffer in bounded
//!   chunks as bytes actually arrive, so a peer must *send* 64 MiB to
//!   make us hold 64 MiB.
//!
//! The reader pulls from the stream through a chunk-sized read-ahead
//! ([`ReadAhead`]): one syscall drains whatever the kernel holds, and a
//! whole batched frame train then parses from memory instead of paying
//! two reads per frame. Bodies of a chunk or more bypass the buffer.

use std::collections::VecDeque;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use nrmi_wire::ByteWriter;

use crate::message::Frame;
use crate::tcp::MAX_FRAME;
use crate::{Result, TransportError};

/// Largest single `read` we issue while the body is incomplete; also the
/// buffer growth step. A peer that declares a huge length but sends
/// nothing costs us at most this much memory.
const READ_CHUNK: usize = 64 * 1024;

/// Process-wide switch for the batched/vectored wire path (on by
/// default). Off, every frame is encoded contiguously and shipped with
/// its own `write` — the per-call-write baseline the batching ablation
/// measures against. The flag is read per send with relaxed ordering;
/// flip it only between measurement cells, not mid-connection.
static WIRE_BATCHING: AtomicBool = AtomicBool::new(true);

/// Payload bytes memmoved into contiguous frame bodies since process
/// start (the copy the scatter-gather path eliminates). Monotonic;
/// difference snapshots of [`bytes_copied`] around a region to meter it.
static PAYLOAD_BYTES_COPIED: AtomicU64 = AtomicU64::new(0);

/// Enables (default) or disables the batched wire path process-wide:
/// scatter-gather vectored writes AND chunked read-ahead. Off, every
/// frame pays its own `write` and its own prefix+body reads — the
/// pre-batching wire, which benches measure the batched path against
/// in one process.
pub fn set_wire_batching(on: bool) {
    WIRE_BATCHING.store(on, Ordering::Relaxed);
}

/// True when the batched/vectored wire path is enabled.
pub fn wire_batching_enabled() -> bool {
    WIRE_BATCHING.load(Ordering::Relaxed)
}

/// Total payload bytes copied into contiguous frame bodies so far.
/// Vectored sends reference payloads in place and count nothing here.
pub fn bytes_copied() -> u64 {
    PAYLOAD_BYTES_COPIED.load(Ordering::Relaxed)
}

/// Records `n` payload bytes memmoved by a contiguous frame encode.
pub(crate) fn note_payload_copied(n: usize) {
    if n > 0 {
        PAYLOAD_BYTES_COPIED.fetch_add(n as u64, Ordering::Relaxed);
    }
}

/// Write syscalls (write/writev) issued by the framed wire paths.
pub(crate) static WIRE_WRITE_CALLS: AtomicU64 = AtomicU64::new(0);
/// Read syscalls issued by the framed wire paths.
pub(crate) static WIRE_READ_CALLS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of (writes, reads) issued by the framed wire paths since
/// process start. Difference two snapshots to meter a region.
pub fn wire_syscalls() -> (u64, u64) {
    (
        WIRE_WRITE_CALLS.load(Ordering::Relaxed),
        WIRE_READ_CALLS.load(Ordering::Relaxed),
    )
}

/// True for I/O error kinds that mean the connection itself is gone —
/// the peer reset or the pipe broke. These surface as
/// [`TransportError::Disconnected`] so callers (notably the reconnecting
/// retry layer) treat a torn socket and an orderly close identically.
fn is_connection_fatal(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::NotConnected
            | ErrorKind::UnexpectedEof
    )
}

/// Ships one frame as `[length][frame]`. With batching enabled this is
/// the single-frame case of [`write_frames_vectored`] — the payload is
/// referenced in place; with it disabled the frame is encoded
/// contiguously into `buf` (reusing its storage) and shipped with a
/// single write. The buffer is handed back through `buf` even when the
/// write fails. Returns the frame body length, for transfer accounting.
///
/// # Errors
/// [`TransportError::FrameTooLarge`] if the encoded body would exceed
/// [`MAX_FRAME`] — rejected before any byte reaches the stream, so the
/// stream never carries a truncated (wrapped-u32) length prefix.
pub(crate) fn write_frame(
    stream: &mut impl Write,
    frame: &Frame,
    buf: &mut Vec<u8>,
) -> Result<usize> {
    if wire_batching_enabled() {
        return write_frames_vectored(stream, &[frame], buf);
    }
    // A full socket send buffer parks this thread in write_all below.
    crate::blocking::blocking_region("framed.write_frame");
    // Cheap pre-check: don't build a >64 MiB contiguous buffer just to
    // reject it. The exact post-encode check below still guards frames
    // whose header fields (not payload) push them over.
    if frame.payload_len() > MAX_FRAME {
        return Err(TransportError::FrameTooLarge {
            len: frame.payload_len(),
            max: MAX_FRAME,
        });
    }
    let mut w = ByteWriter::with_buffer(std::mem::take(buf));
    w.put_slice(&[0u8; 4]);
    frame.encode_into(&mut w);
    let mut bytes = w.into_bytes();
    let body_len = bytes.len() - 4;
    if body_len > MAX_FRAME {
        bytes.clear();
        bytes.shrink_to_fit();
        *buf = bytes;
        return Err(TransportError::FrameTooLarge {
            len: body_len,
            max: MAX_FRAME,
        });
    }
    note_payload_copied(frame.payload_len());
    bytes[..4].copy_from_slice(&(body_len as u32).to_be_bytes());
    WIRE_WRITE_CALLS.fetch_add(1, Ordering::Relaxed);
    let outcome = stream.write_all(&bytes).and_then(|()| stream.flush());
    *buf = bytes;
    match outcome {
        Ok(()) => Ok(body_len),
        Err(e) if is_connection_fatal(e.kind()) => Err(TransportError::Disconnected),
        Err(e) => Err(e.into()),
    }
}

/// Ships a train of frames with vectored writes: every frame's
/// `[length][prefix]` is encoded into one pooled scratch buffer (`buf`,
/// whose storage is reused and handed back even on failure) while each
/// payload stays in its own segment, referenced in place — so an
/// N-frame batch with payloads leaves in one `writev` of up to 2N
/// iovecs, with zero payload memmoves.
///
/// Returns the summed frame body lengths (excluding the 4-byte
/// prefixes), for transfer accounting.
///
/// # Errors
/// [`TransportError::FrameTooLarge`] if any frame's body would exceed
/// [`MAX_FRAME`], detected before any byte reaches the stream — the
/// whole train is rejected and the stream stays at a frame boundary.
/// Connection-fatal I/O errors surface as
/// [`TransportError::Disconnected`].
pub(crate) fn write_frames_vectored(
    stream: &mut impl Write,
    frames: &[&Frame],
    buf: &mut Vec<u8>,
) -> Result<usize> {
    if frames.is_empty() {
        return Ok(0);
    }
    // A full socket send buffer parks this thread in the writev loop.
    crate::blocking::blocking_region("framed.write_frames_vectored");
    let mut w = ByteWriter::with_buffer(std::mem::take(buf));
    // (prefix start, prefix end, payload) per frame; payload slices
    // borrow from the frames, prefix spans index into the scratch.
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(frames.len());
    let mut payloads: Vec<&[u8]> = Vec::with_capacity(frames.len());
    for frame in frames {
        let start = w.len();
        w.put_slice(&[0u8; 4]);
        let payload = frame.encode_prefix_into(&mut w).unwrap_or(&[]);
        spans.push((start, w.len()));
        payloads.push(payload);
    }
    let mut bytes = w.into_bytes();
    let mut total_body = 0usize;
    for (&(start, end), payload) in spans.iter().zip(&payloads) {
        let body_len = (end - start - 4) + payload.len();
        if body_len > MAX_FRAME {
            bytes.clear();
            *buf = bytes;
            return Err(TransportError::FrameTooLarge {
                len: body_len,
                max: MAX_FRAME,
            });
        }
        bytes[start..start + 4].copy_from_slice(&(body_len as u32).to_be_bytes());
        total_body += body_len;
    }
    let outcome = {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(frames.len() * 2);
        for (&(start, end), payload) in spans.iter().zip(&payloads) {
            slices.push(IoSlice::new(&bytes[start..end]));
            if !payload.is_empty() {
                slices.push(IoSlice::new(payload));
            }
        }
        write_all_vectored(stream, &slices)
    };
    *buf = bytes;
    match outcome {
        Ok(()) => Ok(total_body),
        Err(e) if is_connection_fatal(e.kind()) => Err(TransportError::Disconnected),
        Err(e) => Err(e.into()),
    }
}

/// Drives `write_vectored` to completion across `slices`, resuming
/// after partial writes at whatever byte the kernel stopped taking —
/// including mid-iovec — and retrying on `Interrupted`.
fn write_all_vectored(stream: &mut impl Write, slices: &[IoSlice<'_>]) -> std::io::Result<()> {
    let mut idx = 0usize;
    // Bytes of `slices[idx]` already written.
    let mut off = 0usize;
    let mut resume: Vec<IoSlice<'_>> = Vec::new();
    while idx < slices.len() {
        let iov: &[IoSlice<'_>] = if off == 0 {
            &slices[idx..]
        } else {
            // The head slice is partially written: rebuild the remainder
            // view (IoSlice borrows plain slices, so this is cheap).
            resume.clear();
            resume.push(IoSlice::new(&slices[idx][off..]));
            resume.extend(slices[idx + 1..].iter().map(|s| IoSlice::new(s)));
            &resume
        };
        WIRE_WRITE_CALLS.fetch_add(1, Ordering::Relaxed);
        match stream.write_vectored(iov) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "stream stopped accepting bytes",
                ))
            }
            Ok(mut n) => {
                while idx < slices.len() && n > 0 {
                    let remaining = slices[idx].len() - off;
                    if n < remaining {
                        off += n;
                        break;
                    }
                    n -= remaining;
                    idx += 1;
                    off = 0;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    stream.flush()
}

/// A resumable non-blocking write queue: encoded `[length][frame]`
/// buffers waiting for the socket to accept them, with a cursor into
/// the front buffer so a partial write resumes exactly where the
/// kernel stopped taking bytes.
///
/// This is the write-side twin of [`FrameReader`] for reactor-owned
/// connections: the reactor queues replies as they complete and flushes
/// on write-readiness events, never blocking in `write`. The total
/// queued byte count ([`SendQueue::pending_bytes`]) is the reactor's
/// backpressure signal — above a high-water mark it stops *reading*
/// from the connection, so a client that stops draining replies stalls
/// its own request stream instead of growing server memory.
#[derive(Debug, Default)]
pub struct SendQueue {
    chunks: VecDeque<Vec<u8>>,
    /// Bytes of the front chunk already written.
    offset: usize,
    /// Total unwritten bytes across all chunks.
    bytes: usize,
    /// Drained chunk buffers awaiting reuse, so a steady reply stream
    /// stops allocating a fresh `Vec` per frame.
    pool: Vec<Vec<u8>>,
}

/// Most chunk buffers a [`SendQueue`] keeps for reuse.
const POOLED_CHUNKS: usize = 8;

/// Largest chunk capacity worth pooling; one-off giant replies give
/// their memory back instead of pinning it to an idle connection.
const POOLED_CHUNK_CAP: usize = READ_CHUNK;

/// Most iovecs handed to a single `write_vectored` call (kernels cap at
/// `IOV_MAX`, typically 1024; a deep queue just takes another lap).
const FLUSH_IOVECS: usize = 64;

impl SendQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        SendQueue::default()
    }

    /// Encodes `frame` (with its length prefix) and appends it to the
    /// queue, reusing a pooled chunk buffer when one is available.
    ///
    /// # Errors
    /// [`TransportError::FrameTooLarge`] if the encoded body would
    /// exceed [`MAX_FRAME`] — rejected before anything is queued, so
    /// the wire never carries a truncated (wrapped-u32) length prefix.
    pub fn push(&mut self, frame: &Frame) -> Result<()> {
        // Cheap pre-check before building a >64 MiB buffer; the exact
        // post-encode check below covers header-heavy frames.
        if frame.payload_len() > MAX_FRAME {
            return Err(TransportError::FrameTooLarge {
                len: frame.payload_len(),
                max: MAX_FRAME,
            });
        }
        let spare = self.pool.pop().unwrap_or_default();
        let mut w = ByteWriter::with_buffer(spare);
        w.put_slice(&[0u8; 4]);
        frame.encode_into(&mut w);
        let mut bytes = w.into_bytes();
        let body_len = bytes.len() - 4;
        if body_len > MAX_FRAME {
            self.recycle_chunk(bytes);
            return Err(TransportError::FrameTooLarge {
                len: body_len,
                max: MAX_FRAME,
            });
        }
        note_payload_copied(frame.payload_len());
        bytes[..4].copy_from_slice(&(body_len as u32).to_be_bytes());
        self.bytes += bytes.len();
        self.chunks.push_back(bytes);
        Ok(())
    }

    /// Unwritten bytes currently queued — the flushed portion of a
    /// partially-written head frame is already excluded, so this is the
    /// reactor's true backpressure signal.
    pub fn pending_bytes(&self) -> usize {
        self.bytes
    }

    /// True when everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Returns a drained chunk to the reuse pool (bounded, and giant
    /// buffers are dropped rather than pinned).
    fn recycle_chunk(&mut self, mut chunk: Vec<u8>) {
        if self.pool.len() < POOLED_CHUNKS && chunk.capacity() <= POOLED_CHUNK_CAP {
            chunk.clear();
            self.pool.push(chunk);
        }
    }

    /// Writes as much queued data as `stream` accepts without blocking,
    /// handing every queued frame to one vectored write per lap so a
    /// burst of completions leaves in a single syscall. Returns
    /// `Ok(true)` when the queue drained completely, `Ok(false)` when
    /// the stream stopped taking bytes (`WouldBlock`) — call again on
    /// the next write-readiness event. A partial write — even one
    /// landing mid-chunk several frames deep — resumes exactly where
    /// the kernel stopped.
    ///
    /// # Errors
    /// [`TransportError::Disconnected`] when the peer is gone; other
    /// I/O errors as-is.
    pub fn flush(&mut self, stream: &mut impl Write) -> Result<bool> {
        loop {
            if self.chunks.is_empty() {
                return Ok(true);
            }
            let wrote = {
                let mut iov: Vec<IoSlice<'_>> =
                    Vec::with_capacity(self.chunks.len().min(FLUSH_IOVECS));
                for (i, chunk) in self.chunks.iter().take(FLUSH_IOVECS).enumerate() {
                    iov.push(IoSlice::new(if i == 0 {
                        &chunk[self.offset..]
                    } else {
                        chunk
                    }));
                }
                WIRE_WRITE_CALLS.fetch_add(1, Ordering::Relaxed);
                stream.write_vectored(&iov)
            };
            match wrote {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(mut n) => {
                    self.bytes -= n;
                    while n > 0 {
                        let front_remaining = self.chunks.front().map_or(0, Vec::len) - self.offset;
                        if n < front_remaining {
                            self.offset += n;
                            break;
                        }
                        n -= front_remaining;
                        self.offset = 0;
                        let done = self.chunks.pop_front().expect("accounted chunk");
                        self.recycle_chunk(done);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_connection_fatal(e.kind()) => {
                    return Err(TransportError::Disconnected)
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Resumable `[length][frame]` parser. One instance per connection; its
/// buffer is reused across frames and its cursor survives timeouts.
/// Read-ahead buffer for [`FrameReader`]: every stream read pulls a full
/// chunk, and later parses are served from it without a syscall.
///
/// Without this, each frame costs at least two `read` syscalls (prefix,
/// then body) no matter how the sender coalesced its writes — a batched
/// `writev` train arriving in one packet would still be picked apart
/// with 2N reads, forfeiting half the point of batching. With it, one
/// read drains everything the kernel has and the whole train parses
/// from memory.
#[derive(Debug, Default)]
struct ReadAhead {
    /// Chunk storage, allocated lazily on the first stream read.
    buf: Vec<u8>,
    /// Next unconsumed byte in `buf`.
    pos: usize,
    /// Bytes of `buf` that hold stream data.
    len: usize,
}

impl ReadAhead {
    /// As `stream.read(dest)`, but through the read-ahead: buffered
    /// bytes first, one chunk-sized stream read only when empty. Reads
    /// for `dest`s of a full chunk or more bypass the buffer entirely
    /// (large bodies should land in their own storage, not be copied
    /// twice), as does every read while wire batching is disabled —
    /// the ablation baseline is the whole pre-batching wire, per-frame
    /// reads included, not just per-frame writes. Errors — timeouts
    /// included — leave the buffer intact.
    fn read(&mut self, stream: &mut impl Read, dest: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.len {
            if dest.len() >= READ_CHUNK || !wire_batching_enabled() {
                WIRE_READ_CALLS.fetch_add(1, Ordering::Relaxed);
                return stream.read(dest);
            }
            if self.buf.len() < READ_CHUNK {
                self.buf.resize(READ_CHUNK, 0);
            }
            WIRE_READ_CALLS.fetch_add(1, Ordering::Relaxed);
            let n = stream.read(&mut self.buf)?;
            self.pos = 0;
            self.len = n;
            if n == 0 {
                return Ok(0);
            }
        }
        let n = dest.len().min(self.len - self.pos);
        dest[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }

    /// Drops buffered bytes (the stream they came from is gone).
    fn clear(&mut self) {
        self.pos = 0;
        self.len = 0;
    }
}

#[derive(Debug, Default)]
pub(crate) struct FrameReader {
    len_buf: [u8; 4],
    /// Prefix bytes received so far (0..=4).
    len_got: usize,
    /// Decoded body length, once all 4 prefix bytes are in.
    body_len: Option<usize>,
    /// Body bytes received so far.
    body_got: usize,
    buf: Vec<u8>,
    /// Bytes read past the current frame, held for the next parse.
    ahead: ReadAhead,
}

impl FrameReader {
    pub(crate) fn new() -> Self {
        FrameReader::default()
    }

    /// Discards any in-flight partial frame AND the read-ahead (used
    /// after a reconnect or a fatal stream error — buffered bytes from
    /// the old stream must not leak into the new one, which starts at a
    /// frame boundary).
    pub(crate) fn reset(&mut self) {
        self.frame_done();
        self.ahead.clear();
    }

    /// Clears only the per-frame parse state after a completed frame;
    /// read-ahead bytes belonging to the NEXT frames stay buffered.
    fn frame_done(&mut self) {
        self.len_got = 0;
        self.body_len = None;
        self.body_got = 0;
    }

    /// True when unconsumed read-ahead bytes are held in user space.
    /// Level-triggered pollers never fire for these — the kernel buffer
    /// may be empty — so an event loop that paused reads mid-buffer
    /// must consult this to know parsing work remains.
    pub(crate) fn has_buffered_input(&self) -> bool {
        self.ahead.pos < self.ahead.len
    }

    /// Attempts to parse one frame purely from buffered read-ahead
    /// bytes, with NO stream I/O. `None` means more bytes are needed
    /// (parse progress is retained for a resumed [`read_frame`]).
    ///
    /// This is the socket transports' fast path: when a batched train
    /// landed in one read, every frame after the first parses from
    /// memory — no read, and no `recv_timeout` deadline setup (two
    /// `setsockopt`s per call) for frames that are already here.
    ///
    /// [`read_frame`]: FrameReader::read_frame
    pub(crate) fn read_frame_buffered(&mut self) -> Option<Result<Frame>> {
        /// A stream with nothing to give: forces `read_frame` to stop
        /// at the exact moment it would touch the real stream.
        struct Dry;
        impl Read for Dry {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(ErrorKind::WouldBlock.into())
            }
        }
        match self.read_frame(&mut Dry) {
            Err(TransportError::Io(e)) if e.kind() == ErrorKind::WouldBlock => None,
            other => Some(other),
        }
    }

    /// Reads one frame, resuming any partial progress from a previous
    /// call that failed with a timeout.
    ///
    /// EOF at a frame boundary (or mid-frame — the peer is gone either
    /// way) reports [`TransportError::Disconnected`]. `WouldBlock` /
    /// `TimedOut` I/O errors are returned as-is with the parse state
    /// preserved; socket transports map them to
    /// [`TransportError::Timeout`] and may call again to resume.
    pub(crate) fn read_frame(&mut self, stream: &mut impl Read) -> Result<Frame> {
        while self.len_got < 4 {
            match self.ahead.read(stream, &mut self.len_buf[self.len_got..]) {
                Ok(0) => {
                    // Peer closed; any partial prefix can never complete.
                    self.reset();
                    return Err(TransportError::Disconnected);
                }
                Ok(n) => self.len_got += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_connection_fatal(e.kind()) => {
                    self.reset();
                    return Err(TransportError::Disconnected);
                }
                // Timeouts included: state stays put for the next call.
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
        let len = match self.body_len {
            Some(len) => len,
            None => {
                let len = u32::from_be_bytes(self.len_buf) as usize;
                if len > MAX_FRAME {
                    // The stream is garbage past this point; callers
                    // drop the connection. Start clean either way.
                    self.reset();
                    return Err(TransportError::FrameTooLarge {
                        len,
                        max: MAX_FRAME,
                    });
                }
                self.body_len = Some(len);
                self.body_got = 0;
                self.buf.clear();
                len
            }
        };
        while self.body_got < len {
            // Grow lazily: never hold more than one chunk beyond what
            // the peer has actually sent.
            let target = len.min(self.body_got + READ_CHUNK);
            if self.buf.len() < target {
                self.buf.resize(target, 0);
            }
            match self
                .ahead
                .read(stream, &mut self.buf[self.body_got..target])
            {
                Ok(0) => {
                    self.reset();
                    return Err(TransportError::Disconnected);
                }
                Ok(n) => self.body_got += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_connection_fatal(e.kind()) => {
                    self.reset();
                    return Err(TransportError::Disconnected);
                }
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
        let frame = Frame::decode(&self.buf[..len]);
        self.frame_done();
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::io::{self, Read};

    /// A scripted stream: each step either yields bytes or fails with an
    /// error kind, letting tests interleave data with timeouts.
    struct Script {
        steps: VecDeque<ScriptStep>,
    }

    enum ScriptStep {
        Data(Vec<u8>),
        Fail(ErrorKind),
        Eof,
    }

    impl Script {
        fn new(steps: Vec<ScriptStep>) -> Self {
            Script {
                steps: steps.into(),
            }
        }
    }

    impl Read for Script {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            match self.steps.front_mut() {
                None | Some(ScriptStep::Eof) => Ok(0),
                Some(ScriptStep::Fail(kind)) => {
                    let kind = *kind;
                    self.steps.pop_front();
                    Err(io::Error::new(kind, "scripted failure"))
                }
                Some(ScriptStep::Data(bytes)) => {
                    let n = out.len().min(bytes.len());
                    out[..n].copy_from_slice(&bytes[..n]);
                    bytes.drain(..n);
                    if bytes.is_empty() {
                        self.steps.pop_front();
                    }
                    Ok(n)
                }
            }
        }
    }

    fn framed_bytes(frame: &Frame) -> Vec<u8> {
        let body = frame.encode();
        let mut out = (body.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(&body);
        out
    }

    #[test]
    fn timeout_after_prefix_resumes_cleanly() {
        // The regression this module exists for: a timeout lands after
        // the length prefix; the next call must treat the following
        // bytes as *body*, not as a fresh length.
        let frame = Frame::CallReply {
            payload: vec![9; 300],
        };
        let bytes = framed_bytes(&frame);
        let mut stream = Script::new(vec![
            ScriptStep::Data(bytes[..4].to_vec()),
            ScriptStep::Fail(ErrorKind::WouldBlock),
            ScriptStep::Data(bytes[4..].to_vec()),
        ]);
        let mut reader = FrameReader::new();
        let err = reader.read_frame(&mut stream).unwrap_err();
        assert!(matches!(err, TransportError::Io(_)), "{err:?}");
        assert_eq!(reader.read_frame(&mut stream).unwrap(), frame);
    }

    #[test]
    fn timeout_mid_body_resumes_cleanly() {
        let frame = Frame::CallRequest {
            service: "svc".into(),
            method: "m".into(),
            mode: 2,
            payload: vec![7; 500],
        };
        let bytes = framed_bytes(&frame);
        let mut stream = Script::new(vec![
            ScriptStep::Data(bytes[..100].to_vec()),
            ScriptStep::Fail(ErrorKind::TimedOut),
            ScriptStep::Data(bytes[100..250].to_vec()),
            ScriptStep::Fail(ErrorKind::TimedOut),
            ScriptStep::Data(bytes[250..].to_vec()),
        ]);
        let mut reader = FrameReader::new();
        assert!(reader.read_frame(&mut stream).is_err());
        assert!(reader.read_frame(&mut stream).is_err());
        assert_eq!(reader.read_frame(&mut stream).unwrap(), frame);
    }

    #[test]
    fn back_to_back_frames_share_the_buffer() {
        let a = Frame::CountReply(1);
        let b = Frame::CallReply {
            payload: vec![3; 64],
        };
        let mut bytes = framed_bytes(&a);
        bytes.extend_from_slice(&framed_bytes(&b));
        let mut stream = Script::new(vec![ScriptStep::Data(bytes)]);
        let mut reader = FrameReader::new();
        assert_eq!(reader.read_frame(&mut stream).unwrap(), a);
        assert_eq!(reader.read_frame(&mut stream).unwrap(), b);
    }

    #[test]
    fn hostile_prefix_allocates_at_most_one_chunk() {
        // A 60 MiB declared length with no body must not materialize
        // 60 MiB of zeroed memory.
        let len: u32 = 60 << 20;
        let mut stream = Script::new(vec![ScriptStep::Data(len.to_be_bytes().to_vec())]);
        let mut reader = FrameReader::new();
        let err = reader.read_frame(&mut stream).unwrap_err();
        assert!(
            matches!(err, TransportError::Disconnected),
            "no body ever arrives: {err:?}"
        );
        assert!(
            reader.buf.capacity() <= READ_CHUNK,
            "buffer grew to {} for an unreceived body",
            reader.buf.capacity()
        );
    }

    #[test]
    fn hostile_prefix_with_slow_body_grows_incrementally() {
        let len: u32 = 60 << 20;
        let mut stream = Script::new(vec![
            ScriptStep::Data(len.to_be_bytes().to_vec()),
            ScriptStep::Data(vec![0xab; 1000]),
            ScriptStep::Fail(ErrorKind::WouldBlock),
        ]);
        let mut reader = FrameReader::new();
        let err = reader.read_frame(&mut stream).unwrap_err();
        assert!(matches!(err, TransportError::Io(_)), "{err:?}");
        assert!(
            reader.buf.capacity() <= 2 * READ_CHUNK,
            "1000 received bytes grew the buffer to {}",
            reader.buf.capacity()
        );
    }

    #[test]
    fn oversize_prefix_rejected_without_allocation() {
        let len = (MAX_FRAME as u32) + 1;
        let mut stream = Script::new(vec![ScriptStep::Data(len.to_be_bytes().to_vec())]);
        let mut reader = FrameReader::new();
        let err = reader.read_frame(&mut stream).unwrap_err();
        assert!(
            matches!(err, TransportError::FrameTooLarge { .. }),
            "{err:?}"
        );
        assert_eq!(reader.buf.capacity(), 0);
    }

    #[test]
    fn eof_at_boundary_is_disconnect() {
        let mut stream = Script::new(vec![ScriptStep::Eof]);
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.read_frame(&mut stream),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn eof_mid_frame_is_disconnect() {
        let frame = Frame::CountReply(5);
        let bytes = framed_bytes(&frame);
        let mut stream = Script::new(vec![ScriptStep::Data(bytes[..3].to_vec()), ScriptStep::Eof]);
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.read_frame(&mut stream),
            Err(TransportError::Disconnected)
        ));
    }

    /// A stream that accepts at most `quota` bytes per `write` call and
    /// fails with `WouldBlock` once `cap` total bytes have been taken —
    /// the shape of a non-blocking socket with a full send buffer.
    struct Throttled {
        taken: Vec<u8>,
        quota: usize,
        cap: usize,
    }

    impl io::Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.taken.len() >= self.cap {
                return Err(io::Error::new(ErrorKind::WouldBlock, "send buffer full"));
            }
            let n = buf.len().min(self.quota).min(self.cap - self.taken.len());
            self.taken.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn send_queue_resumes_partial_writes() {
        let frames = [
            Frame::CountReply(1),
            Frame::CallReply {
                payload: vec![5; 700],
            },
            Frame::Ack,
        ];
        let mut q = SendQueue::new();
        for f in &frames {
            q.push(f).unwrap();
        }
        let total = q.pending_bytes();
        // First pass: the socket takes 100 bytes in 7-byte dribbles.
        let mut stream = Throttled {
            taken: Vec::new(),
            quota: 7,
            cap: 100,
        };
        assert!(!q.flush(&mut stream).unwrap(), "socket filled mid-frame");
        assert_eq!(q.pending_bytes(), total - 100);
        // Second pass: the socket drains.
        stream.cap = usize::MAX;
        assert!(q.flush(&mut stream).unwrap());
        assert!(q.is_empty());
        assert_eq!(q.pending_bytes(), 0);
        // The bytes on the wire parse back to the exact frame sequence.
        let mut reader = FrameReader::new();
        let mut replay = Script::new(vec![ScriptStep::Data(stream.taken)]);
        for f in &frames {
            assert_eq!(&reader.read_frame(&mut replay).unwrap(), f);
        }
    }

    #[test]
    fn send_queue_reports_disconnect() {
        struct Dead;
        impl io::Write for Dead {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut q = SendQueue::new();
        q.push(&Frame::Ack).unwrap();
        assert!(matches!(
            q.flush(&mut Dead),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let frame = Frame::CallRequestWarm {
            service: "svc".into(),
            method: "m".into(),
            mode: 3,
            cache_id: 12,
            generation: 4,
            payload: vec![1, 2, 3, 4],
        };
        let mut wire = Vec::new();
        let mut pool = Vec::new();
        let body_len = write_frame(&mut wire, &frame, &mut pool).unwrap();
        assert_eq!(body_len + 4, wire.len());
        let mut stream = Script::new(vec![ScriptStep::Data(wire)]);
        let mut reader = FrameReader::new();
        assert_eq!(reader.read_frame(&mut stream).unwrap(), frame);
    }

    /// Serializes the tests that flip the process-wide batching toggle,
    /// and restores it afterwards even on panic.
    fn with_batching<R>(on: bool, f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static TOGGLE: Mutex<()> = Mutex::new(());
        let _guard = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                set_wire_batching(true);
            }
        }
        let _restore = Restore;
        set_wire_batching(on);
        f()
    }

    /// One frame per wire shape the vectored path must handle: payload
    /// tails (present, empty, huge-ish), enveloped payloads, and frames
    /// with no payload at all.
    fn all_frame_shapes() -> Vec<Frame> {
        vec![
            Frame::CallRequest {
                service: "translator".into(),
                method: "translate".into(),
                mode: 2,
                payload: vec![0xa1; 300],
            },
            Frame::CallObject {
                key: 9,
                method: "deposit".into(),
                mode: 2,
                payload: vec![],
            },
            Frame::CallReply {
                payload: vec![0x5c; 70_000],
            },
            Frame::CallError {
                message: "remote exception: boom".into(),
            },
            Frame::Lookup { name: "svc".into() },
            Frame::LookupReply { found: true },
            Frame::GetField { key: 7, field: 2 },
            Frame::SetField {
                key: 7,
                field: 2,
                value: crate::message::RVal::Str("x".into()),
            },
            Frame::GetElement { key: 1, index: 9 },
            Frame::SetElement {
                key: 1,
                index: 9,
                value: crate::message::RVal::Double(2.5),
            },
            Frame::SlotCount { key: 3 },
            Frame::ClassOf { key: 3 },
            Frame::ValueReply(crate::message::RVal::Long(i64::MIN)),
            Frame::CountReply(u64::MAX),
            Frame::ClassReply(42),
            Frame::ErrorReply {
                message: "dangling".into(),
            },
            Frame::DgcClean { key: 99 },
            Frame::Ack,
            Frame::Shutdown,
            Frame::CallRequestWarm {
                service: "svc".into(),
                method: "m".into(),
                mode: 3,
                cache_id: 7,
                generation: 4,
                payload: vec![0x77; 1500],
            },
            Frame::CacheMiss,
            Frame::CacheEvict { cache_id: 55 },
            Frame::Tagged {
                nonce: 0xdead_beef,
                seq: 17,
                frame: Box::new(Frame::CallRequestWarm {
                    service: "svc".into(),
                    method: "m".into(),
                    mode: 3,
                    cache_id: 8,
                    generation: 2,
                    payload: vec![0x42; 900],
                }),
            },
            Frame::ReplyCached {
                nonce: 42,
                seq: 9,
                frame: Box::new(Frame::CallReply {
                    payload: vec![5; 20],
                }),
            },
        ]
    }

    /// The tentpole differential: a vectored frame train must be
    /// byte-identical to N sequential contiguous writes, across every
    /// frame shape, and must parse back losslessly.
    #[test]
    fn vectored_train_matches_sequential_writes() {
        let frames = all_frame_shapes();
        let refs: Vec<&Frame> = frames.iter().collect();
        let mut train = Vec::new();
        let mut scratch = Vec::new();
        let total_body = write_frames_vectored(&mut train, &refs, &mut scratch).unwrap();
        let mut sequential = Vec::new();
        for f in &frames {
            sequential.extend_from_slice(&framed_bytes(f));
        }
        assert_eq!(train, sequential, "writev train diverges from write_all");
        assert_eq!(total_body + 4 * frames.len(), train.len());
        let mut reader = FrameReader::new();
        let mut replay = Script::new(vec![ScriptStep::Data(train)]);
        for f in &frames {
            assert_eq!(&reader.read_frame(&mut replay).unwrap(), f);
        }
    }

    /// `write_frame` must emit identical bytes whether the toggle picks
    /// the contiguous or the vectored single-frame path.
    #[test]
    fn write_frame_bytes_identical_across_toggle() {
        for frame in all_frame_shapes() {
            let mut pool = Vec::new();
            let mut batched = Vec::new();
            with_batching(true, || {
                write_frame(&mut batched, &frame, &mut pool).unwrap()
            });
            let mut contiguous = Vec::new();
            with_batching(false, || {
                write_frame(&mut contiguous, &frame, &mut pool).unwrap()
            });
            assert_eq!(batched, contiguous, "{frame:?}");
        }
    }

    /// A stream whose `write_vectored` takes a scripted number of bytes
    /// per call — spanning iovec boundaries mid-call — then accepts
    /// everything once the script runs out.
    struct VectoredScript {
        taken: Vec<u8>,
        budgets: VecDeque<usize>,
    }

    impl io::Write for VectoredScript {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.write_vectored(&[io::IoSlice::new(buf)])
        }

        fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
            let budget = self.budgets.pop_front().unwrap_or(usize::MAX);
            let mut n = 0usize;
            for b in bufs {
                let take = b.len().min(budget - n);
                self.taken.extend_from_slice(&b[..take]);
                n += take;
                if n == budget {
                    break;
                }
            }
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Fault injection on the vectored path: partial writes landing
    /// mid-prefix, exactly on the prefix/payload iovec boundary,
    /// mid-payload, and exactly between frames must never desync the
    /// byte stream — the reader recovers every frame.
    #[test]
    fn partial_writes_on_iovec_boundaries_never_desync() {
        let frames = vec![
            Frame::CallRequest {
                service: "svc".into(),
                method: "m".into(),
                mode: 2,
                payload: vec![0xaa; 257],
            },
            Frame::Ack,
            Frame::CallReply {
                payload: vec![0xbb; 129],
            },
        ];
        let refs: Vec<&Frame> = frames.iter().collect();
        // Layout facts for the boundary arithmetic below.
        let prefix0 = framed_bytes(&frames[0]).len() - 257;
        let frame0 = prefix0 + 257;
        let frame1 = framed_bytes(&frames[1]).len();
        let boundary_scripts: Vec<Vec<usize>> = vec![
            vec![2],                                // mid length-prefix of frame 0
            vec![prefix0],                          // exactly on the prefix/payload iovec boundary
            vec![prefix0 + 100],                    // mid-payload
            vec![frame0],                           // exactly between frame 0 and frame 1
            vec![frame0 + frame1],                  // exactly between frame 1 and frame 2
            vec![2, prefix0 - 2, 100, 157, frame1], // all of the above in one run
            vec![1; 40],                            // byte-at-a-time torture
        ];
        let mut expected = Vec::new();
        for f in &frames {
            expected.extend_from_slice(&framed_bytes(f));
        }
        for script in boundary_scripts {
            let mut stream = VectoredScript {
                taken: Vec::new(),
                budgets: script.iter().copied().collect(),
            };
            let mut scratch = Vec::new();
            write_frames_vectored(&mut stream, &refs, &mut scratch)
                .unwrap_or_else(|e| panic!("script {script:?}: {e:?}"));
            assert_eq!(
                stream.taken, expected,
                "script {script:?} desynced the stream"
            );
            let mut reader = FrameReader::new();
            let mut replay = Script::new(vec![ScriptStep::Data(stream.taken)]);
            for f in &frames {
                assert_eq!(
                    &reader.read_frame(&mut replay).unwrap(),
                    f,
                    "script {script:?}"
                );
            }
        }
    }

    /// Seeded-random differential sweep: arbitrary trains of arbitrary
    /// frames, written vectored under arbitrary partial-write schedules,
    /// stay byte-identical to sequential contiguous writes.
    #[test]
    fn random_trains_match_sequential_writes() {
        let shapes = all_frame_shapes();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..64 {
            let train_len = (rng() % 6 + 1) as usize;
            let frames: Vec<&Frame> = (0..train_len)
                .map(|_| &shapes[(rng() as usize) % shapes.len()])
                .collect();
            let mut expected = Vec::new();
            for f in &frames {
                expected.extend_from_slice(&framed_bytes(f));
            }
            let budgets: VecDeque<usize> = (0..(rng() % 8))
                .map(|_| (rng() % 4096 + 1) as usize)
                .collect();
            let mut stream = VectoredScript {
                taken: Vec::new(),
                budgets,
            };
            let mut scratch = Vec::new();
            let total = write_frames_vectored(&mut stream, &frames, &mut scratch).unwrap();
            assert_eq!(stream.taken, expected);
            assert_eq!(total + 4 * frames.len(), expected.len());
        }
    }

    /// Satellite regression: an encoded body larger than [`MAX_FRAME`]
    /// must be rejected with a typed error *before* any byte reaches the
    /// stream — on the contiguous path, the vectored path, and the
    /// reactor's send queue — instead of silently truncating the length
    /// prefix.
    #[test]
    fn oversize_frame_rejected_on_every_write_path() {
        let oversize = Frame::CallReply {
            payload: vec![0; MAX_FRAME + 1],
        };
        let ok = Frame::Ack;

        for batching in [true, false] {
            let mut wire = Vec::new();
            let mut pool = Vec::new();
            let err = with_batching(batching, || {
                write_frame(&mut wire, &oversize, &mut pool).unwrap_err()
            });
            assert!(
                matches!(err, TransportError::FrameTooLarge { len, max }
                    if len > MAX_FRAME && max == MAX_FRAME),
                "batching={batching}: {err:?}"
            );
            assert!(
                wire.is_empty(),
                "batching={batching}: bytes leaked before the guard"
            );
        }

        // Vectored train: one bad frame poisons nothing — the train is
        // rejected atomically, before any sibling frame's bytes leave.
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        let err = write_frames_vectored(&mut wire, &[&ok, &oversize], &mut scratch).unwrap_err();
        assert!(
            matches!(err, TransportError::FrameTooLarge { .. }),
            "{err:?}"
        );
        assert!(wire.is_empty(), "partial train escaped before the guard");

        let mut q = SendQueue::new();
        let err = q.push(&oversize).unwrap_err();
        assert!(
            matches!(err, TransportError::FrameTooLarge { .. }),
            "{err:?}"
        );
        assert!(q.is_empty());
        assert_eq!(q.pending_bytes(), 0);
    }

    /// Satellite regression: `pending_bytes` must track the *unsent*
    /// byte count exactly through vectored partial writes that end
    /// mid-chunk several frames deep.
    #[test]
    fn send_queue_vectored_partial_write_accounting() {
        let frames = [
            Frame::CallReply {
                payload: vec![1; 200],
            },
            Frame::CallReply {
                payload: vec![2; 300],
            },
            Frame::CountReply(7),
            Frame::CallReply {
                payload: vec![3; 100],
            },
        ];
        let mut q = SendQueue::new();
        let mut sizes = Vec::new();
        for f in &frames {
            sizes.push(framed_bytes(f).len());
            q.push(f).unwrap();
        }
        let total: usize = sizes.iter().sum();
        assert_eq!(q.pending_bytes(), total);

        // One vectored call takes chunk 0 entirely plus 50 bytes of
        // chunk 1 (an iovec-spanning partial), then the socket fills.
        let first = sizes[0] + 50;
        let mut stream = VectoredScript {
            taken: Vec::new(),
            budgets: [first, 0].into_iter().collect(),
        };
        // Budget 0 signals a full socket: translate to WouldBlock.
        struct BlockAfter<'a>(&'a mut VectoredScript);
        impl io::Write for BlockAfter<'_> {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.write_vectored(&[io::IoSlice::new(buf)])
            }
            fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
                if self.0.budgets.front() == Some(&0) {
                    return Err(io::Error::new(ErrorKind::WouldBlock, "send buffer full"));
                }
                self.0.write_vectored(bufs)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        assert!(!q.flush(&mut BlockAfter(&mut stream)).unwrap());
        assert_eq!(
            q.pending_bytes(),
            total - first,
            "flushed portion of the partially-written head frame must be excluded"
        );
        assert!(!q.is_empty());

        // Drain the rest; accounting must land exactly on zero and the
        // wire must parse back to the full frame sequence.
        stream.budgets.clear();
        assert!(q.flush(&mut stream).unwrap());
        assert_eq!(q.pending_bytes(), 0);
        assert!(q.is_empty());
        let mut reader = FrameReader::new();
        let mut replay = Script::new(vec![ScriptStep::Data(stream.taken)]);
        for f in &frames {
            assert_eq!(&reader.read_frame(&mut replay).unwrap(), f);
        }
    }

    /// Steady-state sends through a drained queue reuse pooled chunk
    /// buffers instead of allocating per frame.
    #[test]
    fn send_queue_recycles_chunk_buffers() {
        let frame = Frame::CallReply {
            payload: vec![9; 256],
        };
        let mut q = SendQueue::new();
        q.push(&frame).unwrap();
        let first_ptr = q.chunks.front().unwrap().as_ptr();
        let mut sink = Vec::new();
        assert!(q.flush(&mut sink).unwrap());
        q.push(&frame).unwrap();
        assert_eq!(
            q.chunks.front().unwrap().as_ptr(),
            first_ptr,
            "drained chunk buffer was not recycled"
        );
    }

    /// The copy counter meters contiguous payload memmoves and stays
    /// silent on the vectored path.
    #[test]
    fn copy_counter_meters_contiguous_payloads_only() {
        let frame = Frame::CallReply {
            payload: vec![4; 4096],
        };
        with_batching(false, || {
            let before = bytes_copied();
            let mut wire = Vec::new();
            let mut pool = Vec::new();
            write_frame(&mut wire, &frame, &mut pool).unwrap();
            assert!(
                bytes_copied() - before >= 4096,
                "contiguous write must meter its payload copy"
            );
        });
        with_batching(true, || {
            // The vectored path must not add this frame's payload; other
            // threads may meter their own copies concurrently, so write
            // through a private counter-free assertion: a single huge
            // payload would dominate any concurrent noise.
            let huge = Frame::CallReply {
                payload: vec![4; 8 << 20],
            };
            let before = bytes_copied();
            let mut wire = Vec::new();
            let mut pool = Vec::new();
            write_frame(&mut wire, &huge, &mut pool).unwrap();
            assert!(
                bytes_copied() - before < (8 << 20),
                "vectored write memmoved its payload"
            );
        });
    }
}
