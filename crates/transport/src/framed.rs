//! Length-prefixed framing shared by the socket transports.
//!
//! A frame travels as a 4-byte big-endian length followed by the encoded
//! frame body. Both halves are built in one pooled buffer and shipped
//! with a single `write_all`, so the prefix and body never straddle
//! separate writes (small frames leave in one packet even without
//! Nagle's algorithm) and steady-state sends reuse the buffer
//! allocation.
//!
//! The receive side is a [`FrameReader`]: a resumable parser that keeps
//! the in-flight frame's partial state across calls. That matters for
//! two failure modes:
//!
//! * **Timeout mid-frame.** With a read deadline set, the OS can hand us
//!   the 4-byte length (or part of the body) and then time out. A naive
//!   reader that discards that progress desynchronizes the stream — the
//!   next `recv` misparses body bytes as a length. The reader instead
//!   returns the timeout error with its cursor intact, and the next call
//!   resumes exactly where it left off.
//! * **Hostile length prefix.** The declared length is attacker
//!   controlled (up to `MAX_FRAME` = 64 MiB). Allocating it up front, in
//!   zeroed memory, before a single body byte arrives is a cheap
//!   memory-exhaustion lever. The reader grows its buffer in bounded
//!   chunks as bytes actually arrive, so a peer must *send* 64 MiB to
//!   make us hold 64 MiB.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};

use nrmi_wire::ByteWriter;

use crate::message::Frame;
use crate::tcp::MAX_FRAME;
use crate::{Result, TransportError};

/// Largest single `read` we issue while the body is incomplete; also the
/// buffer growth step. A peer that declares a huge length but sends
/// nothing costs us at most this much memory.
const READ_CHUNK: usize = 64 * 1024;

/// True for I/O error kinds that mean the connection itself is gone —
/// the peer reset or the pipe broke. These surface as
/// [`TransportError::Disconnected`] so callers (notably the reconnecting
/// retry layer) treat a torn socket and an orderly close identically.
fn is_connection_fatal(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::NotConnected
            | ErrorKind::UnexpectedEof
    )
}

/// Encodes `[length][frame]` into `buf` (reusing its storage) and ships
/// it with a single write. The buffer is handed back through `buf` even
/// when the write fails. Returns the frame body length, for transfer
/// accounting.
pub(crate) fn write_frame(
    stream: &mut impl Write,
    frame: &Frame,
    buf: &mut Vec<u8>,
) -> Result<usize> {
    // A full socket send buffer parks this thread in write_all below.
    crate::blocking::blocking_region("framed.write_frame");
    let mut w = ByteWriter::with_buffer(std::mem::take(buf));
    w.put_slice(&[0u8; 4]);
    frame.encode_into(&mut w);
    let mut bytes = w.into_bytes();
    let body_len = bytes.len() - 4;
    bytes[..4].copy_from_slice(&(body_len as u32).to_be_bytes());
    let outcome = stream.write_all(&bytes).and_then(|()| stream.flush());
    *buf = bytes;
    match outcome {
        Ok(()) => Ok(body_len),
        Err(e) if is_connection_fatal(e.kind()) => Err(TransportError::Disconnected),
        Err(e) => Err(e.into()),
    }
}

/// A resumable non-blocking write queue: encoded `[length][frame]`
/// buffers waiting for the socket to accept them, with a cursor into
/// the front buffer so a partial write resumes exactly where the
/// kernel stopped taking bytes.
///
/// This is the write-side twin of [`FrameReader`] for reactor-owned
/// connections: the reactor queues replies as they complete and flushes
/// on write-readiness events, never blocking in `write`. The total
/// queued byte count ([`SendQueue::pending_bytes`]) is the reactor's
/// backpressure signal — above a high-water mark it stops *reading*
/// from the connection, so a client that stops draining replies stalls
/// its own request stream instead of growing server memory.
#[derive(Debug, Default)]
pub struct SendQueue {
    chunks: VecDeque<Vec<u8>>,
    /// Bytes of the front chunk already written.
    offset: usize,
    /// Total unwritten bytes across all chunks.
    bytes: usize,
}

impl SendQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        SendQueue::default()
    }

    /// Encodes `frame` (with its length prefix) and appends it to the
    /// queue.
    pub fn push(&mut self, frame: &Frame) {
        let mut w = ByteWriter::with_buffer(Vec::new());
        w.put_slice(&[0u8; 4]);
        frame.encode_into(&mut w);
        let mut bytes = w.into_bytes();
        let body_len = bytes.len() - 4;
        bytes[..4].copy_from_slice(&(body_len as u32).to_be_bytes());
        self.bytes += bytes.len();
        self.chunks.push_back(bytes);
    }

    /// Unwritten bytes currently queued.
    pub fn pending_bytes(&self) -> usize {
        self.bytes
    }

    /// True when everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Writes as much queued data as `stream` accepts without blocking.
    /// Returns `Ok(true)` when the queue drained completely, `Ok(false)`
    /// when the stream stopped taking bytes (`WouldBlock`) — call again
    /// on the next write-readiness event.
    ///
    /// # Errors
    /// [`TransportError::Disconnected`] when the peer is gone; other
    /// I/O errors as-is.
    pub fn flush(&mut self, stream: &mut impl Write) -> Result<bool> {
        loop {
            let Some(front) = self.chunks.front() else {
                return Ok(true);
            };
            match stream.write(&front[self.offset..]) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => {
                    self.offset += n;
                    self.bytes -= n;
                    if self.offset == front.len() {
                        self.chunks.pop_front();
                        self.offset = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_connection_fatal(e.kind()) => {
                    return Err(TransportError::Disconnected)
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Resumable `[length][frame]` parser. One instance per connection; its
/// buffer is reused across frames and its cursor survives timeouts.
#[derive(Debug, Default)]
pub(crate) struct FrameReader {
    len_buf: [u8; 4],
    /// Prefix bytes received so far (0..=4).
    len_got: usize,
    /// Decoded body length, once all 4 prefix bytes are in.
    body_len: Option<usize>,
    /// Body bytes received so far.
    body_got: usize,
    buf: Vec<u8>,
}

impl FrameReader {
    pub(crate) fn new() -> Self {
        FrameReader::default()
    }

    /// Discards any in-flight partial frame (used after a reconnect —
    /// the new stream starts at a frame boundary).
    pub(crate) fn reset(&mut self) {
        self.len_got = 0;
        self.body_len = None;
        self.body_got = 0;
    }

    /// Reads one frame, resuming any partial progress from a previous
    /// call that failed with a timeout.
    ///
    /// EOF at a frame boundary (or mid-frame — the peer is gone either
    /// way) reports [`TransportError::Disconnected`]. `WouldBlock` /
    /// `TimedOut` I/O errors are returned as-is with the parse state
    /// preserved; socket transports map them to
    /// [`TransportError::Timeout`] and may call again to resume.
    pub(crate) fn read_frame(&mut self, stream: &mut impl Read) -> Result<Frame> {
        while self.len_got < 4 {
            match stream.read(&mut self.len_buf[self.len_got..]) {
                Ok(0) => {
                    // Peer closed; any partial prefix can never complete.
                    self.reset();
                    return Err(TransportError::Disconnected);
                }
                Ok(n) => self.len_got += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_connection_fatal(e.kind()) => {
                    self.reset();
                    return Err(TransportError::Disconnected);
                }
                // Timeouts included: state stays put for the next call.
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
        let len = match self.body_len {
            Some(len) => len,
            None => {
                let len = u32::from_be_bytes(self.len_buf) as usize;
                if len > MAX_FRAME {
                    // The stream is garbage past this point; callers
                    // drop the connection. Start clean either way.
                    self.reset();
                    return Err(TransportError::FrameTooLarge {
                        len,
                        max: MAX_FRAME,
                    });
                }
                self.body_len = Some(len);
                self.body_got = 0;
                self.buf.clear();
                len
            }
        };
        while self.body_got < len {
            // Grow lazily: never hold more than one chunk beyond what
            // the peer has actually sent.
            let target = len.min(self.body_got + READ_CHUNK);
            if self.buf.len() < target {
                self.buf.resize(target, 0);
            }
            match stream.read(&mut self.buf[self.body_got..target]) {
                Ok(0) => {
                    self.reset();
                    return Err(TransportError::Disconnected);
                }
                Ok(n) => self.body_got += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_connection_fatal(e.kind()) => {
                    self.reset();
                    return Err(TransportError::Disconnected);
                }
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
        let frame = Frame::decode(&self.buf[..len]);
        self.reset();
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::io::{self, Read};

    /// A scripted stream: each step either yields bytes or fails with an
    /// error kind, letting tests interleave data with timeouts.
    struct Script {
        steps: VecDeque<ScriptStep>,
    }

    enum ScriptStep {
        Data(Vec<u8>),
        Fail(ErrorKind),
        Eof,
    }

    impl Script {
        fn new(steps: Vec<ScriptStep>) -> Self {
            Script {
                steps: steps.into(),
            }
        }
    }

    impl Read for Script {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            match self.steps.front_mut() {
                None | Some(ScriptStep::Eof) => Ok(0),
                Some(ScriptStep::Fail(kind)) => {
                    let kind = *kind;
                    self.steps.pop_front();
                    Err(io::Error::new(kind, "scripted failure"))
                }
                Some(ScriptStep::Data(bytes)) => {
                    let n = out.len().min(bytes.len());
                    out[..n].copy_from_slice(&bytes[..n]);
                    bytes.drain(..n);
                    if bytes.is_empty() {
                        self.steps.pop_front();
                    }
                    Ok(n)
                }
            }
        }
    }

    fn framed_bytes(frame: &Frame) -> Vec<u8> {
        let body = frame.encode();
        let mut out = (body.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(&body);
        out
    }

    #[test]
    fn timeout_after_prefix_resumes_cleanly() {
        // The regression this module exists for: a timeout lands after
        // the length prefix; the next call must treat the following
        // bytes as *body*, not as a fresh length.
        let frame = Frame::CallReply {
            payload: vec![9; 300],
        };
        let bytes = framed_bytes(&frame);
        let mut stream = Script::new(vec![
            ScriptStep::Data(bytes[..4].to_vec()),
            ScriptStep::Fail(ErrorKind::WouldBlock),
            ScriptStep::Data(bytes[4..].to_vec()),
        ]);
        let mut reader = FrameReader::new();
        let err = reader.read_frame(&mut stream).unwrap_err();
        assert!(matches!(err, TransportError::Io(_)), "{err:?}");
        assert_eq!(reader.read_frame(&mut stream).unwrap(), frame);
    }

    #[test]
    fn timeout_mid_body_resumes_cleanly() {
        let frame = Frame::CallRequest {
            service: "svc".into(),
            method: "m".into(),
            mode: 2,
            payload: vec![7; 500],
        };
        let bytes = framed_bytes(&frame);
        let mut stream = Script::new(vec![
            ScriptStep::Data(bytes[..100].to_vec()),
            ScriptStep::Fail(ErrorKind::TimedOut),
            ScriptStep::Data(bytes[100..250].to_vec()),
            ScriptStep::Fail(ErrorKind::TimedOut),
            ScriptStep::Data(bytes[250..].to_vec()),
        ]);
        let mut reader = FrameReader::new();
        assert!(reader.read_frame(&mut stream).is_err());
        assert!(reader.read_frame(&mut stream).is_err());
        assert_eq!(reader.read_frame(&mut stream).unwrap(), frame);
    }

    #[test]
    fn back_to_back_frames_share_the_buffer() {
        let a = Frame::CountReply(1);
        let b = Frame::CallReply {
            payload: vec![3; 64],
        };
        let mut bytes = framed_bytes(&a);
        bytes.extend_from_slice(&framed_bytes(&b));
        let mut stream = Script::new(vec![ScriptStep::Data(bytes)]);
        let mut reader = FrameReader::new();
        assert_eq!(reader.read_frame(&mut stream).unwrap(), a);
        assert_eq!(reader.read_frame(&mut stream).unwrap(), b);
    }

    #[test]
    fn hostile_prefix_allocates_at_most_one_chunk() {
        // A 60 MiB declared length with no body must not materialize
        // 60 MiB of zeroed memory.
        let len: u32 = 60 << 20;
        let mut stream = Script::new(vec![ScriptStep::Data(len.to_be_bytes().to_vec())]);
        let mut reader = FrameReader::new();
        let err = reader.read_frame(&mut stream).unwrap_err();
        assert!(
            matches!(err, TransportError::Disconnected),
            "no body ever arrives: {err:?}"
        );
        assert!(
            reader.buf.capacity() <= READ_CHUNK,
            "buffer grew to {} for an unreceived body",
            reader.buf.capacity()
        );
    }

    #[test]
    fn hostile_prefix_with_slow_body_grows_incrementally() {
        let len: u32 = 60 << 20;
        let mut stream = Script::new(vec![
            ScriptStep::Data(len.to_be_bytes().to_vec()),
            ScriptStep::Data(vec![0xab; 1000]),
            ScriptStep::Fail(ErrorKind::WouldBlock),
        ]);
        let mut reader = FrameReader::new();
        let err = reader.read_frame(&mut stream).unwrap_err();
        assert!(matches!(err, TransportError::Io(_)), "{err:?}");
        assert!(
            reader.buf.capacity() <= 2 * READ_CHUNK,
            "1000 received bytes grew the buffer to {}",
            reader.buf.capacity()
        );
    }

    #[test]
    fn oversize_prefix_rejected_without_allocation() {
        let len = (MAX_FRAME as u32) + 1;
        let mut stream = Script::new(vec![ScriptStep::Data(len.to_be_bytes().to_vec())]);
        let mut reader = FrameReader::new();
        let err = reader.read_frame(&mut stream).unwrap_err();
        assert!(
            matches!(err, TransportError::FrameTooLarge { .. }),
            "{err:?}"
        );
        assert_eq!(reader.buf.capacity(), 0);
    }

    #[test]
    fn eof_at_boundary_is_disconnect() {
        let mut stream = Script::new(vec![ScriptStep::Eof]);
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.read_frame(&mut stream),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn eof_mid_frame_is_disconnect() {
        let frame = Frame::CountReply(5);
        let bytes = framed_bytes(&frame);
        let mut stream = Script::new(vec![ScriptStep::Data(bytes[..3].to_vec()), ScriptStep::Eof]);
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.read_frame(&mut stream),
            Err(TransportError::Disconnected)
        ));
    }

    /// A stream that accepts at most `quota` bytes per `write` call and
    /// fails with `WouldBlock` once `cap` total bytes have been taken —
    /// the shape of a non-blocking socket with a full send buffer.
    struct Throttled {
        taken: Vec<u8>,
        quota: usize,
        cap: usize,
    }

    impl io::Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.taken.len() >= self.cap {
                return Err(io::Error::new(ErrorKind::WouldBlock, "send buffer full"));
            }
            let n = buf.len().min(self.quota).min(self.cap - self.taken.len());
            self.taken.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn send_queue_resumes_partial_writes() {
        let frames = [
            Frame::CountReply(1),
            Frame::CallReply {
                payload: vec![5; 700],
            },
            Frame::Ack,
        ];
        let mut q = SendQueue::new();
        for f in &frames {
            q.push(f);
        }
        let total = q.pending_bytes();
        // First pass: the socket takes 100 bytes in 7-byte dribbles.
        let mut stream = Throttled {
            taken: Vec::new(),
            quota: 7,
            cap: 100,
        };
        assert!(!q.flush(&mut stream).unwrap(), "socket filled mid-frame");
        assert_eq!(q.pending_bytes(), total - 100);
        // Second pass: the socket drains.
        stream.cap = usize::MAX;
        assert!(q.flush(&mut stream).unwrap());
        assert!(q.is_empty());
        assert_eq!(q.pending_bytes(), 0);
        // The bytes on the wire parse back to the exact frame sequence.
        let mut reader = FrameReader::new();
        let mut replay = Script::new(vec![ScriptStep::Data(stream.taken)]);
        for f in &frames {
            assert_eq!(&reader.read_frame(&mut replay).unwrap(), f);
        }
    }

    #[test]
    fn send_queue_reports_disconnect() {
        struct Dead;
        impl io::Write for Dead {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut q = SendQueue::new();
        q.push(&Frame::Ack);
        assert!(matches!(
            q.flush(&mut Dead),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let frame = Frame::CallRequestWarm {
            service: "svc".into(),
            method: "m".into(),
            mode: 3,
            cache_id: 12,
            generation: 4,
            payload: vec![1, 2, 3, 4],
        };
        let mut wire = Vec::new();
        let mut pool = Vec::new();
        let body_len = write_frame(&mut wire, &frame, &mut pool).unwrap();
        assert_eq!(body_len + 4, wire.len());
        let mut stream = Script::new(vec![ScriptStep::Data(wire)]);
        let mut reader = FrameReader::new();
        assert_eq!(reader.read_frame(&mut stream).unwrap(), frame);
    }
}
