//! Blocking-region markers for the lock-discipline witness.
//!
//! Every transport operation that can park the calling thread in the
//! kernel (or on a channel) announces itself through
//! [`blocking_region`] before it blocks. The marker is free in default
//! builds; under the `lockcheck` feature it invokes a process-global
//! hook that the lock instrumentation in `nrmi-core` installs
//! ([`set_blocking_hook`]), which traps the moment a thread enters a
//! blocking transport operation while holding any tracked lock — the
//! `NRMI-L002` discipline from DESIGN.md §3i.
//!
//! The hook lives *here*, one crate below the locks it polices, because
//! the dependency arrow points the other way: `nrmi-core`'s tracked
//! locks can call down into this crate to register themselves, while
//! the socket code here cannot see core's held-lock state directly.
//! This is the same inversion `lockdep` uses between annotation sites
//! and the validator.
//!
//! Marked sites: the framed blocking write ([`crate::framed`]), the
//! blocking receive paths of the TCP, Unix-domain, and in-process
//! channel transports, and the reactor's `poll(2)` wait. Non-blocking
//! paths (`try_read_frame`, `SendQueue::flush`, unbounded channel
//! sends) are deliberately unmarked: they cannot park the thread, so
//! holding a lock across them is not an I/O-wait hazard.

/// The hook signature: receives the marker's region name (e.g.
/// `"tcp.recv"`). Installed once per process; invoked on *entry* to
/// every marked blocking region, on the blocking thread.
#[cfg(feature = "lockcheck")]
pub type BlockingHook = fn(region: &'static str);

#[cfg(feature = "lockcheck")]
static HOOK: std::sync::OnceLock<BlockingHook> = std::sync::OnceLock::new();

/// Installs the process-global blocking hook. The first installation
/// wins; later calls are ignored (the witness installs one hook, once,
/// lazily). Only compiled under the `lockcheck` feature.
#[cfg(feature = "lockcheck")]
pub fn set_blocking_hook(hook: BlockingHook) {
    let _ = HOOK.set(hook);
}

/// Marks the entry into a blocking transport operation.
///
/// Default builds: a no-op the optimizer erases. Under `lockcheck`: one
/// `OnceLock` load plus the installed hook, which checks the calling
/// thread's held-lock stack and records an `L002` event when it is
/// non-empty (see `nrmi_core::lockcheck`).
#[inline]
pub fn blocking_region(name: &'static str) {
    #[cfg(feature = "lockcheck")]
    if let Some(hook) = HOOK.get() {
        hook(name);
    }
    #[cfg(not(feature = "lockcheck"))]
    let _ = name;
}

#[cfg(all(test, feature = "lockcheck"))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static FIRED: AtomicUsize = AtomicUsize::new(0);

    fn test_hook(_region: &'static str) {
        FIRED.fetch_add(1, Ordering::SeqCst);
    }

    #[test]
    fn hook_fires_on_marked_regions() {
        set_blocking_hook(test_hook);
        let before = FIRED.load(Ordering::SeqCst);
        blocking_region("test.region");
        assert!(FIRED.load(Ordering::SeqCst) > before);
    }
}
