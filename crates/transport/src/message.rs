//! Protocol frames and their codec.
//!
//! One frame type covers the whole NRMI protocol:
//!
//! * `CallRequest`/`CallReply` carry marshalled object graphs (opaque
//!   payloads produced by `nrmi-wire`);
//! * the callback frames (`GetField`, `SetField`, …) implement
//!   call-by-reference through remote pointers — the paper's Figure 3
//!   world, where *every pointer dereference generates network traffic*;
//! * `DgcClean` is the distributed-GC release message (RMI's
//!   `clean` call), whose reference-counting nature is why remote-pointer
//!   cycles leak (Table 6 discussion);
//! * `Lookup` is the registry query (`Naming.lookup`).
//!
//! Frames are encoded with the same varint primitives as the graph wire
//! format, so byte accounting in the simulated network is consistent.

use nrmi_wire::{ByteReader, ByteWriter};

use crate::{Result, TransportError};

/// A scalar-or-remote value, the currency of the remote-pointer callback
/// protocol. Unlike a marshalled graph, an `RVal` never embeds object
/// *contents* — references travel as `(owner, key)` stubs, which is
/// exactly what makes call-by-reference slow and call-by-copy-restore
/// interesting.
#[derive(Clone, Debug, PartialEq)]
pub enum RVal {
    /// Null reference.
    Null,
    /// Boolean.
    Bool(bool),
    /// 32-bit integer.
    Int(i32),
    /// 64-bit integer.
    Long(i64),
    /// 64-bit float.
    Double(f64),
    /// Immutable string.
    Str(String),
    /// A remote reference: `owned_by_sender` is true when the sending
    /// node owns the object, false when the key names an object in the
    /// *receiver's* export table.
    Remote {
        /// Ownership direction, relative to the frame's sender.
        owned_by_sender: bool,
        /// Export-table key at the owning node.
        key: u64,
    },
}

const RV_NULL: u8 = 0;
const RV_FALSE: u8 = 1;
const RV_TRUE: u8 = 2;
const RV_INT: u8 = 3;
const RV_LONG: u8 = 4;
const RV_DOUBLE: u8 = 5;
const RV_STR: u8 = 6;
const RV_REMOTE_MINE: u8 = 7;
const RV_REMOTE_YOURS: u8 = 8;

impl RVal {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            RVal::Null => w.put_u8(RV_NULL),
            RVal::Bool(false) => w.put_u8(RV_FALSE),
            RVal::Bool(true) => w.put_u8(RV_TRUE),
            RVal::Int(i) => {
                w.put_u8(RV_INT);
                w.put_zigzag(i64::from(*i));
            }
            RVal::Long(i) => {
                w.put_u8(RV_LONG);
                w.put_zigzag(*i);
            }
            RVal::Double(d) => {
                w.put_u8(RV_DOUBLE);
                w.put_f64(*d);
            }
            RVal::Str(s) => {
                w.put_u8(RV_STR);
                w.put_str(s);
            }
            RVal::Remote {
                owned_by_sender,
                key,
            } => {
                w.put_u8(if *owned_by_sender {
                    RV_REMOTE_MINE
                } else {
                    RV_REMOTE_YOURS
                });
                w.put_varint(*key);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let tag = r.get_u8().map_err(TransportError::Codec)?;
        Ok(match tag {
            RV_NULL => RVal::Null,
            RV_FALSE => RVal::Bool(false),
            RV_TRUE => RVal::Bool(true),
            RV_INT => RVal::Int(r.get_zigzag().map_err(TransportError::Codec)? as i32),
            RV_LONG => RVal::Long(r.get_zigzag().map_err(TransportError::Codec)?),
            RV_DOUBLE => RVal::Double(r.get_f64().map_err(TransportError::Codec)?),
            RV_STR => RVal::Str(r.get_str().map_err(TransportError::Codec)?),
            RV_REMOTE_MINE => RVal::Remote {
                owned_by_sender: true,
                key: r.get_varint().map_err(TransportError::Codec)?,
            },
            RV_REMOTE_YOURS => RVal::Remote {
                owned_by_sender: false,
                key: r.get_varint().map_err(TransportError::Codec)?,
            },
            other => return Err(TransportError::UnknownFrame(other)),
        })
    }

    /// Flips the ownership direction of a remote reference, which is how
    /// an `RVal` is reinterpreted after crossing the link (the sender's
    /// "mine" is the receiver's "yours"). Scalars are unchanged.
    pub fn flipped(self) -> Self {
        match self {
            RVal::Remote {
                owned_by_sender,
                key,
            } => RVal::Remote {
                owned_by_sender: !owned_by_sender,
                key,
            },
            other => other,
        }
    }
}

/// Encodes a list of [`RVal`]s as a payload (used by remote-reference
/// call requests and replies, where arguments travel as handles).
pub fn encode_rvals(values: &[RVal]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_varint(values.len() as u64);
    for v in values {
        v.encode(&mut w);
    }
    w.into_bytes()
}

/// Decodes a payload produced by [`encode_rvals`].
///
/// # Errors
/// Fails on truncated or malformed payloads.
pub fn decode_rvals(bytes: &[u8]) -> Result<Vec<RVal>> {
    let mut r = ByteReader::new(bytes);
    let count = r.get_count().map_err(TransportError::Codec)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(RVal::decode(&mut r)?);
    }
    Ok(out)
}

/// A protocol message.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Frame {
    /// Invoke `method` on the named service. `mode` is the calling
    /// semantics discriminant (defined by `nrmi-core`); `payload` is the
    /// marshalled argument graph (copy modes) or encoded remote handles
    /// (remote-reference mode).
    CallRequest {
        /// Registered service name.
        service: String,
        /// Method name.
        method: String,
        /// Calling-semantics discriminant (opaque at this layer).
        mode: u8,
        /// Marshalled arguments.
        payload: Vec<u8>,
    },
    /// Invoke `method` on an EXPORTED OBJECT (a first-class remote
    /// object, RMI's `UnicastRemoteObject` dispatch): `key` names the
    /// receiver in the callee's export table.
    CallObject {
        /// Export key of the receiver at the server.
        key: u64,
        /// Method name.
        method: String,
        /// Calling-semantics discriminant (opaque at this layer).
        mode: u8,
        /// Marshalled arguments.
        payload: Vec<u8>,
    },
    /// Successful completion; `payload` is the marshalled reply.
    CallReply {
        /// Marshalled reply (return value and/or restore graph).
        payload: Vec<u8>,
    },
    /// The call failed; carries the remote exception message.
    CallError {
        /// Human-readable failure description.
        message: String,
    },
    /// Registry query: does `name` resolve to a service?
    Lookup {
        /// Service name.
        name: String,
    },
    /// Registry answer.
    LookupReply {
        /// Whether the service exists.
        found: bool,
    },
    /// Remote-pointer callback: read field `field` of exported object `key`.
    GetField {
        /// Export key at the receiver.
        key: u64,
        /// Field index.
        field: u32,
    },
    /// Remote-pointer callback: write field `field` of exported object `key`.
    SetField {
        /// Export key at the receiver.
        key: u64,
        /// Field index.
        field: u32,
        /// New value.
        value: RVal,
    },
    /// Remote-pointer callback: read array element.
    GetElement {
        /// Export key at the receiver.
        key: u64,
        /// Element index.
        index: u32,
    },
    /// Remote-pointer callback: write array element.
    SetElement {
        /// Export key at the receiver.
        key: u64,
        /// Element index.
        index: u32,
        /// New value.
        value: RVal,
    },
    /// Remote-pointer callback: number of slots of exported object `key`.
    SlotCount {
        /// Export key at the receiver.
        key: u64,
    },
    /// Remote-pointer callback: class of exported object `key`.
    ClassOf {
        /// Export key at the receiver.
        key: u64,
    },
    /// Reply carrying a single value.
    ValueReply(RVal),
    /// Reply carrying a count.
    CountReply(u64),
    /// Reply carrying a class id.
    ClassReply(u32),
    /// A callback failed at the owner; carries the error message.
    ErrorReply {
        /// Human-readable failure description.
        message: String,
    },
    /// Distributed GC: the sender dropped its last stub for `key` in the
    /// receiver's export table (RMI DGC `clean`).
    DgcClean {
        /// Export key at the receiver.
        key: u64,
    },
    /// Generic acknowledgement.
    Ack,
    /// Orderly shutdown of the serving loop.
    Shutdown,
    /// Warm-session call: like `CallRequest`, but relative to a cached
    /// argument graph. `cache_id` names the session cache (allocated by
    /// the client); `generation` counts completed calls through it.
    /// Generation 0 seeds the cache (`payload` is a full graph),
    /// generation ≥ 1 ships a request delta against the cached state.
    CallRequestWarm {
        /// Registered service name.
        service: String,
        /// Method name.
        method: String,
        /// Calling-semantics discriminant (opaque at this layer).
        mode: u8,
        /// Client-allocated cache identifier.
        cache_id: u64,
        /// Expected cache generation (0 = seed).
        generation: u64,
        /// Full graph (seed) or request delta (warm).
        payload: Vec<u8>,
    },
    /// The server has no cache matching the request's `(cache_id,
    /// generation)` — evicted, never seeded, or invalidated by an
    /// out-of-band mutation. The client must fall back to a cold call.
    CacheMiss,
    /// Client-initiated release of a warm-session cache (fire-and-forget,
    /// like `DgcClean`): the server frees the cached graph.
    CacheEvict {
        /// Cache identifier to drop.
        cache_id: u64,
    },
    /// Reliability envelope around a call frame: `(nonce, seq)` is the
    /// call id — `nonce` identifies the client session (random per
    /// session), `seq` the call within it (monotone). The server
    /// executes the inner call *at most once* per id; a retransmission
    /// of an already-executed id is answered from the reply cache.
    /// Envelopes never nest.
    Tagged {
        /// Per-session random identifier.
        nonce: u64,
        /// Monotone per-session call sequence number.
        seq: u64,
        /// The call frame being stamped (`CallRequest`, `CallObject`,
        /// or `CallRequestWarm`).
        frame: Box<Frame>,
    },
    /// A reply served from the server's duplicate-suppression cache:
    /// the call identified by `(nonce, seq)` already executed and this
    /// is its recorded reply — the call's effect was NOT applied again.
    ReplyCached {
        /// Per-session random identifier, echoed from the request.
        nonce: u64,
        /// Call sequence number, echoed from the request.
        seq: u64,
        /// The recorded reply frame.
        frame: Box<Frame>,
    },
    /// Targeted invalidation of a warm-session cache: another client's
    /// call (or another call on this connection) mutated objects this
    /// cache covers. Unlike `CacheMiss` — which retires the session and
    /// forces a full cold reseed — the payload is an invalidation patch
    /// (`nrmi-wire`'s NRMV format) that repairs only the dirty subgraph;
    /// the client applies it and re-issues the warm call. `version` is
    /// the entry's monotone revalidation counter, which makes a pushed
    /// copy of the same invalidation idempotent.
    CacheStale {
        /// Cache identifier the patch applies to.
        cache_id: u64,
        /// Monotone per-entry revalidation counter (deduplicates a
        /// pushed delta racing the reply-path copy).
        version: u64,
        /// Invalidation patch for the dirty subgraph.
        payload: Vec<u8>,
    },
}

const F_CALL_REQUEST: u8 = 1;
const F_CALL_REPLY: u8 = 2;
const F_CALL_ERROR: u8 = 3;
const F_LOOKUP: u8 = 4;
const F_LOOKUP_REPLY: u8 = 5;
const F_GET_FIELD: u8 = 6;
const F_SET_FIELD: u8 = 7;
const F_GET_ELEMENT: u8 = 8;
const F_SET_ELEMENT: u8 = 9;
const F_SLOT_COUNT: u8 = 10;
const F_CLASS_OF: u8 = 11;
const F_VALUE_REPLY: u8 = 12;
const F_COUNT_REPLY: u8 = 13;
const F_CLASS_REPLY: u8 = 14;
const F_ERROR_REPLY: u8 = 15;
const F_DGC_CLEAN: u8 = 16;
const F_ACK: u8 = 17;
const F_SHUTDOWN: u8 = 18;
const F_CALL_OBJECT: u8 = 19;
const F_CALL_REQUEST_WARM: u8 = 20;
const F_CACHE_MISS: u8 = 21;
const F_CACHE_EVICT: u8 = 22;
const F_TAGGED: u8 = 23;
const F_REPLY_CACHED: u8 = 24;
const F_CACHE_STALE: u8 = 25;

impl Frame {
    /// Encodes the frame to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Encodes the frame into `w`, appended after whatever `w` already
    /// holds. Socket transports use this to build `[length][frame]` in
    /// one reusable buffer and ship it with a single write.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self {
            Frame::CallRequest {
                service,
                method,
                mode,
                payload,
            } => {
                w.put_u8(F_CALL_REQUEST);
                w.put_str(service);
                w.put_str(method);
                w.put_u8(*mode);
                w.put_varint(payload.len() as u64);
                w.put_slice(payload);
            }
            Frame::CallObject {
                key,
                method,
                mode,
                payload,
            } => {
                w.put_u8(F_CALL_OBJECT);
                w.put_varint(*key);
                w.put_str(method);
                w.put_u8(*mode);
                w.put_varint(payload.len() as u64);
                w.put_slice(payload);
            }
            Frame::CallReply { payload } => {
                w.put_u8(F_CALL_REPLY);
                w.put_varint(payload.len() as u64);
                w.put_slice(payload);
            }
            Frame::CallError { message } => {
                w.put_u8(F_CALL_ERROR);
                w.put_str(message);
            }
            Frame::Lookup { name } => {
                w.put_u8(F_LOOKUP);
                w.put_str(name);
            }
            Frame::LookupReply { found } => {
                w.put_u8(F_LOOKUP_REPLY);
                w.put_u8(u8::from(*found));
            }
            Frame::GetField { key, field } => {
                w.put_u8(F_GET_FIELD);
                w.put_varint(*key);
                w.put_varint(u64::from(*field));
            }
            Frame::SetField { key, field, value } => {
                w.put_u8(F_SET_FIELD);
                w.put_varint(*key);
                w.put_varint(u64::from(*field));
                value.encode(w);
            }
            Frame::GetElement { key, index } => {
                w.put_u8(F_GET_ELEMENT);
                w.put_varint(*key);
                w.put_varint(u64::from(*index));
            }
            Frame::SetElement { key, index, value } => {
                w.put_u8(F_SET_ELEMENT);
                w.put_varint(*key);
                w.put_varint(u64::from(*index));
                value.encode(w);
            }
            Frame::SlotCount { key } => {
                w.put_u8(F_SLOT_COUNT);
                w.put_varint(*key);
            }
            Frame::ClassOf { key } => {
                w.put_u8(F_CLASS_OF);
                w.put_varint(*key);
            }
            Frame::ValueReply(v) => {
                w.put_u8(F_VALUE_REPLY);
                v.encode(w);
            }
            Frame::CountReply(n) => {
                w.put_u8(F_COUNT_REPLY);
                w.put_varint(*n);
            }
            Frame::ClassReply(c) => {
                w.put_u8(F_CLASS_REPLY);
                w.put_varint(u64::from(*c));
            }
            Frame::ErrorReply { message } => {
                w.put_u8(F_ERROR_REPLY);
                w.put_str(message);
            }
            Frame::DgcClean { key } => {
                w.put_u8(F_DGC_CLEAN);
                w.put_varint(*key);
            }
            Frame::Ack => w.put_u8(F_ACK),
            Frame::Shutdown => w.put_u8(F_SHUTDOWN),
            Frame::CallRequestWarm {
                service,
                method,
                mode,
                cache_id,
                generation,
                payload,
            } => {
                w.put_u8(F_CALL_REQUEST_WARM);
                w.put_str(service);
                w.put_str(method);
                w.put_u8(*mode);
                w.put_varint(*cache_id);
                w.put_varint(*generation);
                w.put_varint(payload.len() as u64);
                w.put_slice(payload);
            }
            Frame::CacheMiss => w.put_u8(F_CACHE_MISS),
            Frame::CacheEvict { cache_id } => {
                w.put_u8(F_CACHE_EVICT);
                w.put_varint(*cache_id);
            }
            Frame::Tagged { nonce, seq, frame } => {
                w.put_u8(F_TAGGED);
                w.put_varint(*nonce);
                w.put_varint(*seq);
                frame.encode_into(w);
            }
            Frame::ReplyCached { nonce, seq, frame } => {
                w.put_u8(F_REPLY_CACHED);
                w.put_varint(*nonce);
                w.put_varint(*seq);
                frame.encode_into(w);
            }
            Frame::CacheStale {
                cache_id,
                version,
                payload,
            } => {
                w.put_u8(F_CACHE_STALE);
                w.put_varint(*cache_id);
                w.put_varint(*version);
                w.put_varint(payload.len() as u64);
                w.put_slice(payload);
            }
        }
    }

    /// Encodes everything *except* the trailing payload bytes into `w` —
    /// the tag, the header fields, and the payload's varint length — and
    /// returns the payload slice to be shipped as its own iovec. Every
    /// payload-carrying frame writes its payload as the final field, so
    /// the written prefix concatenated with the returned slice is
    /// byte-identical to [`Frame::encode_into`] (differential-tested in
    /// the transport's framing layer). `None` means the frame has no
    /// payload tail and the prefix *is* the complete encoding.
    ///
    /// This is the scatter-gather half of the wire path: large graph and
    /// delta payloads stay in their pooled codec segments and are handed
    /// to `writev` in place instead of being memmoved into a contiguous
    /// frame body.
    pub fn encode_prefix_into<'a>(&'a self, w: &mut ByteWriter) -> Option<&'a [u8]> {
        match self {
            Frame::CallRequest {
                service,
                method,
                mode,
                payload,
            } => {
                w.put_u8(F_CALL_REQUEST);
                w.put_str(service);
                w.put_str(method);
                w.put_u8(*mode);
                w.put_varint(payload.len() as u64);
                Some(payload)
            }
            Frame::CallObject {
                key,
                method,
                mode,
                payload,
            } => {
                w.put_u8(F_CALL_OBJECT);
                w.put_varint(*key);
                w.put_str(method);
                w.put_u8(*mode);
                w.put_varint(payload.len() as u64);
                Some(payload)
            }
            Frame::CallReply { payload } => {
                w.put_u8(F_CALL_REPLY);
                w.put_varint(payload.len() as u64);
                Some(payload)
            }
            Frame::CallRequestWarm {
                service,
                method,
                mode,
                cache_id,
                generation,
                payload,
            } => {
                w.put_u8(F_CALL_REQUEST_WARM);
                w.put_str(service);
                w.put_str(method);
                w.put_u8(*mode);
                w.put_varint(*cache_id);
                w.put_varint(*generation);
                w.put_varint(payload.len() as u64);
                Some(payload)
            }
            Frame::Tagged { nonce, seq, frame } => {
                w.put_u8(F_TAGGED);
                w.put_varint(*nonce);
                w.put_varint(*seq);
                frame.encode_prefix_into(w)
            }
            Frame::ReplyCached { nonce, seq, frame } => {
                w.put_u8(F_REPLY_CACHED);
                w.put_varint(*nonce);
                w.put_varint(*seq);
                frame.encode_prefix_into(w)
            }
            Frame::CacheStale {
                cache_id,
                version,
                payload,
            } => {
                w.put_u8(F_CACHE_STALE);
                w.put_varint(*cache_id);
                w.put_varint(*version);
                w.put_varint(payload.len() as u64);
                Some(payload)
            }
            other => {
                other.encode_into(w);
                None
            }
        }
    }

    /// Length of the frame's trailing payload (zero when it has none):
    /// the bytes a contiguous encode memmoves into the frame body and
    /// the vectored path references in place.
    pub fn payload_len(&self) -> usize {
        match self {
            Frame::CallRequest { payload, .. }
            | Frame::CallObject { payload, .. }
            | Frame::CallReply { payload }
            | Frame::CallRequestWarm { payload, .. }
            | Frame::CacheStale { payload, .. } => payload.len(),
            Frame::Tagged { frame, .. } | Frame::ReplyCached { frame, .. } => frame.payload_len(),
            _ => 0,
        }
    }

    /// Decodes a frame from bytes.
    ///
    /// # Errors
    /// Fails on truncated payloads or unknown tags.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        Self::decode_from(&mut r, true)
    }

    /// Decodes one frame from the reader. `allow_envelope` is true only
    /// at the top level: envelope frames (`Tagged`, `ReplyCached`) may
    /// wrap ordinary frames but never each other, so a hostile
    /// deeply-nested envelope is rejected instead of recursing.
    fn decode_from(r: &mut ByteReader<'_>, allow_envelope: bool) -> Result<Self> {
        let wire = |e| TransportError::Codec(e);
        let tag = r.get_u8().map_err(wire)?;
        let frame = match tag {
            F_CALL_REQUEST => {
                let service = r.get_str().map_err(wire)?;
                let method = r.get_str().map_err(wire)?;
                let mode = r.get_u8().map_err(wire)?;
                let len = r.get_varint().map_err(wire)? as usize;
                let payload = r.get_slice(len).map_err(wire)?.to_vec();
                Frame::CallRequest {
                    service,
                    method,
                    mode,
                    payload,
                }
            }
            F_CALL_OBJECT => {
                let key = r.get_varint().map_err(wire)?;
                let method = r.get_str().map_err(wire)?;
                let mode = r.get_u8().map_err(wire)?;
                let len = r.get_varint().map_err(wire)? as usize;
                let payload = r.get_slice(len).map_err(wire)?.to_vec();
                Frame::CallObject {
                    key,
                    method,
                    mode,
                    payload,
                }
            }
            F_CALL_REPLY => {
                let len = r.get_varint().map_err(wire)? as usize;
                let payload = r.get_slice(len).map_err(wire)?.to_vec();
                Frame::CallReply { payload }
            }
            F_CALL_ERROR => Frame::CallError {
                message: r.get_str().map_err(wire)?,
            },
            F_LOOKUP => Frame::Lookup {
                name: r.get_str().map_err(wire)?,
            },
            F_LOOKUP_REPLY => Frame::LookupReply {
                found: r.get_u8().map_err(wire)? != 0,
            },
            F_GET_FIELD => Frame::GetField {
                key: r.get_varint().map_err(wire)?,
                field: r.get_varint().map_err(wire)? as u32,
            },
            F_SET_FIELD => Frame::SetField {
                key: r.get_varint().map_err(wire)?,
                field: r.get_varint().map_err(wire)? as u32,
                value: RVal::decode(r)?,
            },
            F_GET_ELEMENT => Frame::GetElement {
                key: r.get_varint().map_err(wire)?,
                index: r.get_varint().map_err(wire)? as u32,
            },
            F_SET_ELEMENT => Frame::SetElement {
                key: r.get_varint().map_err(wire)?,
                index: r.get_varint().map_err(wire)? as u32,
                value: RVal::decode(r)?,
            },
            F_SLOT_COUNT => Frame::SlotCount {
                key: r.get_varint().map_err(wire)?,
            },
            F_CLASS_OF => Frame::ClassOf {
                key: r.get_varint().map_err(wire)?,
            },
            F_VALUE_REPLY => Frame::ValueReply(RVal::decode(r)?),
            F_COUNT_REPLY => Frame::CountReply(r.get_varint().map_err(wire)?),
            F_CLASS_REPLY => Frame::ClassReply(r.get_varint().map_err(wire)? as u32),
            F_ERROR_REPLY => Frame::ErrorReply {
                message: r.get_str().map_err(wire)?,
            },
            F_DGC_CLEAN => Frame::DgcClean {
                key: r.get_varint().map_err(wire)?,
            },
            F_ACK => Frame::Ack,
            F_SHUTDOWN => Frame::Shutdown,
            F_CALL_REQUEST_WARM => {
                let service = r.get_str().map_err(wire)?;
                let method = r.get_str().map_err(wire)?;
                let mode = r.get_u8().map_err(wire)?;
                let cache_id = r.get_varint().map_err(wire)?;
                let generation = r.get_varint().map_err(wire)?;
                let len = r.get_varint().map_err(wire)? as usize;
                let payload = r.get_slice(len).map_err(wire)?.to_vec();
                Frame::CallRequestWarm {
                    service,
                    method,
                    mode,
                    cache_id,
                    generation,
                    payload,
                }
            }
            F_CACHE_MISS => Frame::CacheMiss,
            F_CACHE_EVICT => Frame::CacheEvict {
                cache_id: r.get_varint().map_err(wire)?,
            },
            F_CACHE_STALE => {
                let cache_id = r.get_varint().map_err(wire)?;
                let version = r.get_varint().map_err(wire)?;
                let len = r.get_varint().map_err(wire)? as usize;
                let payload = r.get_slice(len).map_err(wire)?.to_vec();
                Frame::CacheStale {
                    cache_id,
                    version,
                    payload,
                }
            }
            F_TAGGED | F_REPLY_CACHED => {
                if !allow_envelope {
                    return Err(TransportError::UnknownFrame(tag));
                }
                let nonce = r.get_varint().map_err(wire)?;
                let seq = r.get_varint().map_err(wire)?;
                let inner = Box::new(Self::decode_from(r, false)?);
                if tag == F_TAGGED {
                    Frame::Tagged {
                        nonce,
                        seq,
                        frame: inner,
                    }
                } else {
                    Frame::ReplyCached {
                        nonce,
                        seq,
                        frame: inner,
                    }
                }
            }
            other => return Err(TransportError::UnknownFrame(other)),
        };
        Ok(frame)
    }

    /// Encoded size in bytes (what the simulated network charges).
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.encode();
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(f, back);
        assert_eq!(f.wire_size(), bytes.len());
        // The scatter-gather twin must be byte-identical: prefix ++
        // payload == contiguous encoding, for every frame shape.
        let mut w = ByteWriter::new();
        let payload = f.encode_prefix_into(&mut w);
        let mut split = w.into_bytes();
        let copied = payload.map_or(0, <[u8]>::len);
        if let Some(p) = payload {
            split.extend_from_slice(p);
        }
        assert_eq!(split, bytes, "prefix+payload diverges for {f:?}");
        assert_eq!(f.payload_len(), copied, "payload_len diverges for {f:?}");
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::CallRequest {
            service: "translator".into(),
            method: "translate".into(),
            mode: 2,
            payload: vec![1, 2, 3],
        });
        roundtrip(Frame::CallObject {
            key: 9,
            method: "deposit".into(),
            mode: 2,
            payload: vec![4, 5],
        });
        roundtrip(Frame::CallReply { payload: vec![] });
        roundtrip(Frame::CallError {
            message: "remote exception: boom".into(),
        });
        roundtrip(Frame::Lookup { name: "svc".into() });
        roundtrip(Frame::LookupReply { found: true });
        roundtrip(Frame::LookupReply { found: false });
        roundtrip(Frame::GetField { key: 7, field: 2 });
        roundtrip(Frame::SetField {
            key: 7,
            field: 2,
            value: RVal::Int(-5),
        });
        roundtrip(Frame::GetElement { key: 1, index: 9 });
        roundtrip(Frame::SetElement {
            key: 1,
            index: 9,
            value: RVal::Str("x".into()),
        });
        roundtrip(Frame::SlotCount { key: 3 });
        roundtrip(Frame::ClassOf { key: 3 });
        roundtrip(Frame::ValueReply(RVal::Remote {
            owned_by_sender: true,
            key: 12,
        }));
        roundtrip(Frame::ValueReply(RVal::Remote {
            owned_by_sender: false,
            key: 12,
        }));
        roundtrip(Frame::ValueReply(RVal::Double(2.5)));
        roundtrip(Frame::ValueReply(RVal::Bool(true)));
        roundtrip(Frame::ValueReply(RVal::Long(i64::MIN)));
        roundtrip(Frame::ValueReply(RVal::Null));
        roundtrip(Frame::CountReply(u64::MAX));
        roundtrip(Frame::ClassReply(42));
        roundtrip(Frame::ErrorReply {
            message: "dangling".into(),
        });
        roundtrip(Frame::DgcClean { key: 99 });
        roundtrip(Frame::Ack);
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::CallRequestWarm {
            service: "translator".into(),
            method: "translate".into(),
            mode: 3,
            cache_id: 7,
            generation: 0,
            payload: vec![1, 2, 3],
        });
        roundtrip(Frame::CallRequestWarm {
            service: "s".into(),
            method: "m".into(),
            mode: 3,
            cache_id: u64::MAX,
            generation: 41,
            payload: vec![],
        });
        roundtrip(Frame::CacheMiss);
        roundtrip(Frame::CacheEvict { cache_id: 55 });
        roundtrip(Frame::CacheStale {
            cache_id: 55,
            version: 3,
            payload: vec![1, 2, 3],
        });
        roundtrip(Frame::CacheStale {
            cache_id: u64::MAX,
            version: u64::MAX,
            payload: vec![],
        });
        roundtrip(Frame::Tagged {
            nonce: 0xdead_beef_cafe,
            seq: 17,
            frame: Box::new(Frame::CallRequest {
                service: "svc".into(),
                method: "m".into(),
                mode: 2,
                payload: vec![1, 2, 3],
            }),
        });
        roundtrip(Frame::Tagged {
            nonce: u64::MAX,
            seq: 0,
            frame: Box::new(Frame::CallRequestWarm {
                service: "svc".into(),
                method: "m".into(),
                mode: 3,
                cache_id: 8,
                generation: 2,
                payload: vec![],
            }),
        });
        roundtrip(Frame::ReplyCached {
            nonce: 42,
            seq: 9,
            frame: Box::new(Frame::CallReply {
                payload: vec![5; 20],
            }),
        });
        roundtrip(Frame::ReplyCached {
            nonce: 1,
            seq: 2,
            frame: Box::new(Frame::CacheMiss),
        });
    }

    #[test]
    fn truncated_envelope_frames_rejected() {
        let full = Frame::Tagged {
            nonce: 300,
            seq: 5,
            frame: Box::new(Frame::CallObject {
                key: 7,
                method: "mm".into(),
                mode: 2,
                payload: vec![9; 8],
            }),
        }
        .encode();
        for cut in 1..full.len() {
            assert!(Frame::decode(&full[..cut]).is_err(), "cut at {cut}");
        }
        let cached = Frame::ReplyCached {
            nonce: 300,
            seq: 5,
            frame: Box::new(Frame::CallError {
                message: "boom".into(),
            }),
        }
        .encode();
        for cut in 1..cached.len() {
            assert!(Frame::decode(&cached[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn nested_envelopes_rejected() {
        // Envelopes never nest on the honest path; a crafted
        // envelope-in-envelope must be rejected, not recursed into.
        let nested = Frame::Tagged {
            nonce: 1,
            seq: 1,
            frame: Box::new(Frame::Tagged {
                nonce: 2,
                seq: 2,
                frame: Box::new(Frame::Ack),
            }),
        }
        .encode();
        assert!(matches!(
            Frame::decode(&nested),
            Err(TransportError::UnknownFrame(_))
        ));
        let cached_in_tagged = Frame::Tagged {
            nonce: 1,
            seq: 1,
            frame: Box::new(Frame::ReplyCached {
                nonce: 1,
                seq: 1,
                frame: Box::new(Frame::Ack),
            }),
        }
        .encode();
        assert!(Frame::decode(&cached_in_tagged).is_err());
        // Depth guard, not stack depth: a long chain of envelope tags
        // fails fast at depth 2 instead of overflowing the stack.
        let mut hostile = Vec::new();
        for _ in 0..10_000 {
            hostile.extend_from_slice(&[23, 0, 0]);
        }
        assert!(Frame::decode(&hostile).is_err());
    }

    #[test]
    fn truncated_warm_frames_rejected() {
        let full = Frame::CallRequestWarm {
            service: "svc".into(),
            method: "mm".into(),
            mode: 3,
            cache_id: 300,
            generation: 12,
            payload: vec![7; 10],
        }
        .encode();
        for cut in 1..full.len() {
            assert!(Frame::decode(&full[..cut]).is_err(), "cut at {cut}");
        }
        let evict = Frame::CacheEvict { cache_id: 300 }.encode();
        for cut in 1..evict.len() {
            assert!(Frame::decode(&evict[..cut]).is_err(), "evict cut at {cut}");
        }
        let stale = Frame::CacheStale {
            cache_id: 300,
            version: 12,
            payload: vec![7; 10],
        }
        .encode();
        for cut in 1..stale.len() {
            assert!(Frame::decode(&stale[..cut]).is_err(), "stale cut at {cut}");
        }
    }

    #[test]
    fn rval_list_roundtrip() {
        let values = vec![
            RVal::Null,
            RVal::Int(-7),
            RVal::Str("arg".into()),
            RVal::Remote {
                owned_by_sender: true,
                key: 3,
            },
            RVal::Double(1.25),
        ];
        let bytes = encode_rvals(&values);
        assert_eq!(decode_rvals(&bytes).unwrap(), values);
        assert_eq!(
            decode_rvals(&encode_rvals(&[])).unwrap(),
            Vec::<RVal>::new()
        );
        // Truncations fail cleanly.
        for cut in 0..bytes.len() {
            assert!(decode_rvals(&bytes[..cut]).is_err() || cut == 0 && bytes[0] == 0);
        }
        // A hostile count never over-allocates: count > remaining is EOF.
        assert!(decode_rvals(&[0xff, 0xff, 0x01]).is_err());
    }

    #[test]
    fn rval_flip() {
        let v = RVal::Remote {
            owned_by_sender: true,
            key: 4,
        };
        assert_eq!(
            v.clone().flipped(),
            RVal::Remote {
                owned_by_sender: false,
                key: 4
            }
        );
        assert_eq!(RVal::Int(1).flipped(), RVal::Int(1));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            Frame::decode(&[0xEE]),
            Err(TransportError::UnknownFrame(0xEE))
        ));
        assert!(matches!(Frame::decode(&[]), Err(TransportError::Codec(_))));
    }

    #[test]
    fn truncated_frames_rejected() {
        let full = Frame::CallRequest {
            service: "s".into(),
            method: "m".into(),
            mode: 1,
            payload: vec![9; 16],
        }
        .encode();
        for cut in 1..full.len() {
            assert!(Frame::decode(&full[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn callback_frames_are_small() {
        // The remote-pointer protocol's cost is dominated by round-trip
        // latency, not frame size — frames must be tens of bytes, not
        // graph-sized.
        assert!(Frame::GetField { key: 1, field: 1 }.wire_size() < 8);
        assert!(Frame::ValueReply(RVal::Int(5)).wire_size() < 8);
    }
}
