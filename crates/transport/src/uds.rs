//! Unix-domain-socket transport: same-host IPC with the same framing as
//! TCP — the natural fit for the paper's Table 3 configuration (two
//! runtimes on one machine, no network adapter in the path).

#![cfg(unix)]

use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::endpoint::{Transport, TransportReceiver, TransportSender};
use crate::framed::{self, FrameReader};
use crate::message::Frame;
use crate::{Result, TransportError};

/// A connected Unix-domain-socket frame transport.
pub struct UdsTransport {
    stream: UnixStream,
    /// The dialed path, kept so [`Transport::reconnect`] can re-dial.
    /// `None` for accepted (server-side) streams.
    peer: Option<PathBuf>,
    send_buf: Vec<u8>,
    reader: FrameReader,
}

impl std::fmt::Debug for UdsTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdsTransport").finish()
    }
}

impl UdsTransport {
    /// Connects to a listening peer at `path`.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        Ok(UdsTransport {
            stream: UnixStream::connect(&path)?,
            peer: Some(path),
            send_buf: Vec::new(),
            reader: FrameReader::new(),
        })
    }

    /// Wraps an accepted stream.
    pub fn from_stream(stream: UnixStream) -> Self {
        UdsTransport {
            stream,
            peer: None,
            send_buf: Vec::new(),
            reader: FrameReader::new(),
        }
    }

    fn recv_inner(&mut self) -> Result<Frame> {
        self.reader.read_frame(&mut self.stream)
    }
}

impl Transport for UdsTransport {
    fn send(&mut self, frame: &Frame) -> Result<()> {
        framed::write_frame(&mut self.stream, frame, &mut self.send_buf)?;
        Ok(())
    }

    fn send_batch(&mut self, frames: &[&Frame]) -> Result<()> {
        if frames.len() <= 1 || !framed::wire_batching_enabled() {
            for frame in frames {
                self.send(frame)?;
            }
            return Ok(());
        }
        framed::write_frames_vectored(&mut self.stream, frames, &mut self.send_buf).map(|_| ())
    }

    fn recv(&mut self) -> Result<Frame> {
        // Fast path: a frame already sitting in the read-ahead needs no
        // syscalls at all (not even the timeout-reset setsockopt).
        if let Some(result) = self.reader.read_frame_buffered() {
            return result;
        }
        crate::blocking::blocking_region("uds.recv");
        self.stream.set_read_timeout(None)?;
        self.recv_inner()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame> {
        if let Some(result) = self.reader.read_frame_buffered() {
            return result;
        }
        crate::blocking::blocking_region("uds.recv_timeout");
        self.stream.set_read_timeout(Some(timeout))?;
        let result = self.recv_inner();
        let _ = self.stream.set_read_timeout(None);
        match result {
            Err(TransportError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(TransportError::Timeout)
            }
            other => other,
        }
    }

    fn reconnect(&mut self) -> Result<bool> {
        let Some(path) = &self.peer else {
            return Ok(false);
        };
        self.stream = UnixStream::connect(path)?;
        self.reader.reset();
        Ok(true)
    }

    fn split(&mut self) -> Option<(Box<dyn TransportSender>, Box<dyn TransportReceiver>)> {
        let send_stream = self.stream.try_clone().ok()?;
        let recv_stream = self.stream.try_clone().ok()?;
        let sender = UdsSenderHalf {
            stream: send_stream,
            send_buf: std::mem::take(&mut self.send_buf),
        };
        let receiver = UdsReceiverHalf {
            stream: recv_stream,
            reader: std::mem::take(&mut self.reader),
        };
        Some((Box::new(sender), Box::new(receiver)))
    }
}

/// Write half of a split [`UdsTransport`].
struct UdsSenderHalf {
    stream: UnixStream,
    send_buf: Vec<u8>,
}

impl TransportSender for UdsSenderHalf {
    fn send(&mut self, frame: &Frame) -> Result<()> {
        framed::write_frame(&mut self.stream, frame, &mut self.send_buf)?;
        Ok(())
    }

    fn send_batch(&mut self, frames: &[&Frame]) -> Result<()> {
        if frames.len() <= 1 || !framed::wire_batching_enabled() {
            for frame in frames {
                self.send(frame)?;
            }
            return Ok(());
        }
        framed::write_frames_vectored(&mut self.stream, frames, &mut self.send_buf).map(|_| ())
    }
}

/// Read half of a split [`UdsTransport`].
struct UdsReceiverHalf {
    stream: UnixStream,
    reader: FrameReader,
}

impl TransportReceiver for UdsReceiverHalf {
    fn recv(&mut self) -> Result<Frame> {
        if let Some(result) = self.reader.read_frame_buffered() {
            return result;
        }
        crate::blocking::blocking_region("uds.recv");
        self.stream.set_read_timeout(None)?;
        self.reader.read_frame(&mut self.stream)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame> {
        if let Some(result) = self.reader.read_frame_buffered() {
            return result;
        }
        crate::blocking::blocking_region("uds.recv_timeout");
        self.stream.set_read_timeout(Some(timeout))?;
        let result = self.reader.read_frame(&mut self.stream);
        let _ = self.stream.set_read_timeout(None);
        match result {
            Err(TransportError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(TransportError::Timeout)
            }
            other => other,
        }
    }
}

/// A listener accepting [`UdsTransport`] connections at a filesystem
/// path. The socket file is removed on drop.
#[derive(Debug)]
pub struct UdsListenerTransport {
    listener: UnixListener,
    path: std::path::PathBuf,
}

impl UdsListenerTransport {
    /// Binds at `path`, unlinking a *stale* socket file first.
    ///
    /// A crashed server leaves its socket file behind (the kernel never
    /// unlinks it), and a plain `bind` on that path fails with
    /// `AddrInUse`. Unlinking unconditionally would instead silently
    /// steal the path from a *live* server. A connect probe tells the
    /// two apart: only a socket someone is accepting on answers.
    ///
    /// # Errors
    /// `AddrInUse` if a live server already accepts on `path`; otherwise
    /// propagates socket errors.
    pub fn bind(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            match UnixStream::connect(&path) {
                Ok(_probe) => {
                    return Err(TransportError::Io(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!("{} is in use by a live server", path.display()),
                    )));
                }
                Err(_) => {
                    // Nobody answers: a stale file from a crashed
                    // server (or a non-socket squatter bind will still
                    // reject). Reclaim the path.
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        Ok(UdsListenerTransport {
            listener: UnixListener::bind(&path)?,
            path,
        })
    }

    /// The bound filesystem path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Blocks until a client connects.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn accept(&self) -> Result<UdsTransport> {
        self.listener.set_nonblocking(false)?;
        let (stream, _) = self.listener.accept()?;
        Ok(UdsTransport::from_stream(stream))
    }

    /// Waits up to `timeout` for a client by polling a non-blocking
    /// accept (see
    /// [`TcpListenerTransport::accept_timeout`](crate::tcp::TcpListenerTransport::accept_timeout)).
    ///
    /// # Errors
    /// [`TransportError::Timeout`] if nobody connected in time;
    /// otherwise propagates socket errors.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<UdsTransport> {
        let stream = crate::listen::poll_accept(
            |nb| self.listener.set_nonblocking(nb),
            || self.listener.accept().map(|(stream, _)| stream),
            timeout,
        )?;
        stream.set_nonblocking(false)?;
        Ok(UdsTransport::from_stream(stream))
    }
}

impl crate::endpoint::Listener for UdsListenerTransport {
    type Conn = UdsTransport;

    fn accept(&self) -> Result<UdsTransport> {
        UdsListenerTransport::accept(self)
    }

    fn accept_timeout(&self, timeout: Duration) -> Result<UdsTransport> {
        UdsListenerTransport::accept_timeout(self, timeout)
    }
}

impl crate::endpoint::ReactorIo for UdsTransport {
    fn raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        self.stream.as_raw_fd()
    }

    fn set_nonblocking(&self, nonblocking: bool) -> Result<()> {
        Ok(self.stream.set_nonblocking(nonblocking)?)
    }

    fn try_read_frame(&mut self) -> Result<Option<Frame>> {
        match self.reader.read_frame(&mut self.stream) {
            Ok(frame) => Ok(Some(frame)),
            Err(TransportError::Io(e)) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn has_buffered_input(&self) -> bool {
        self.reader.has_buffered_input()
    }

    fn flush_queue(&mut self, queue: &mut crate::SendQueue) -> Result<bool> {
        queue.flush(&mut self.stream)
    }
}

impl crate::endpoint::PollableListener for UdsListenerTransport {
    fn raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        self.listener.as_raw_fd()
    }

    fn set_nonblocking(&self, nonblocking: bool) -> Result<()> {
        Ok(self.listener.set_nonblocking(nonblocking)?)
    }

    fn try_accept(&self) -> Result<Option<UdsTransport>> {
        match self.listener.accept() {
            Ok((stream, _)) => Ok(Some(UdsTransport::from_stream(stream))),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

impl Drop for UdsListenerTransport {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn socket_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nrmi-uds-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn uds_roundtrip() {
        let path = socket_path("roundtrip");
        let listener = UdsListenerTransport::bind(&path).unwrap();
        let server = thread::spawn(move || {
            let mut t = listener.accept().unwrap();
            let f = t.recv().unwrap();
            assert_eq!(f, Frame::Lookup { name: "svc".into() });
            t.send(&Frame::LookupReply { found: true }).unwrap();
        });
        let mut client = UdsTransport::connect(&path).unwrap();
        client.send(&Frame::Lookup { name: "svc".into() }).unwrap();
        assert_eq!(client.recv().unwrap(), Frame::LookupReply { found: true });
        server.join().unwrap();
    }

    #[test]
    fn uds_disconnect_and_timeout() {
        let path = socket_path("disconnect");
        let listener = UdsListenerTransport::bind(&path).unwrap();
        let server = thread::spawn(move || {
            let t = listener.accept().unwrap();
            thread::sleep(Duration::from_millis(100));
            drop(t);
        });
        let mut client = UdsTransport::connect(&path).unwrap();
        let err = client.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout), "{err:?}");
        server.join().unwrap();
        assert!(matches!(client.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn socket_file_removed_on_drop() {
        let path = socket_path("cleanup");
        {
            let _listener = UdsListenerTransport::bind(&path).unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn bind_reclaims_stale_socket_after_crash() {
        let path = socket_path("stale");
        // Simulate a crashed server: raw std bind leaves the socket
        // file behind on drop (std never unlinks it).
        {
            let _crashed = UnixListener::bind(&path).unwrap();
        }
        assert!(path.exists(), "crash leaves the socket file");
        // A plain re-bind would fail with AddrInUse; ours must probe,
        // find nobody home, unlink, and bind.
        let listener = UdsListenerTransport::bind(&path).unwrap();
        let server = thread::spawn(move || {
            let mut t = listener.accept().unwrap();
            t.send(&Frame::Ack).unwrap();
        });
        let mut client = UdsTransport::connect(&path).unwrap();
        assert_eq!(client.recv().unwrap(), Frame::Ack);
        server.join().unwrap();
    }

    #[test]
    fn bind_refuses_to_clobber_live_server() {
        let path = socket_path("live");
        let live = UdsListenerTransport::bind(&path).unwrap();
        let err = UdsListenerTransport::bind(&path).unwrap_err();
        match err {
            TransportError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::AddrInUse),
            other => panic!("expected AddrInUse, got {other:?}"),
        }
        // The live listener still works afterwards.
        assert!(path.exists());
        drop(live);
    }

    #[test]
    fn uds_reconnect_redials_the_listener() {
        let path = socket_path("reconnect");
        let listener = UdsListenerTransport::bind(&path).unwrap();
        let server = thread::spawn(move || {
            let t = listener.accept().unwrap();
            drop(t);
            let mut t = listener.accept().unwrap();
            let _ = t.recv().unwrap();
            t.send(&Frame::CountReply(7)).unwrap();
        });
        let mut client = UdsTransport::connect(&path).unwrap();
        assert!(matches!(client.recv(), Err(TransportError::Disconnected)));
        assert!(client.reconnect().unwrap());
        client.send(&Frame::Ack).unwrap();
        assert_eq!(client.recv().unwrap(), Frame::CountReply(7));
        server.join().unwrap();
    }
}
