//! Unix-domain-socket transport: same-host IPC with the same framing as
//! TCP — the natural fit for the paper's Table 3 configuration (two
//! runtimes on one machine, no network adapter in the path).

#![cfg(unix)]

use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::Duration;

use crate::endpoint::Transport;
use crate::framed;
use crate::message::Frame;
use crate::{Result, TransportError};

/// A connected Unix-domain-socket frame transport.
pub struct UdsTransport {
    stream: UnixStream,
    send_buf: Vec<u8>,
    recv_buf: Vec<u8>,
}

impl std::fmt::Debug for UdsTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdsTransport").finish()
    }
}

impl UdsTransport {
    /// Connects to a listening peer at `path`.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect(path: impl AsRef<Path>) -> Result<Self> {
        Ok(UdsTransport {
            stream: UnixStream::connect(path)?,
            send_buf: Vec::new(),
            recv_buf: Vec::new(),
        })
    }

    /// Wraps an accepted stream.
    pub fn from_stream(stream: UnixStream) -> Self {
        UdsTransport {
            stream,
            send_buf: Vec::new(),
            recv_buf: Vec::new(),
        }
    }

    fn recv_inner(&mut self) -> Result<Frame> {
        framed::read_frame(&mut self.stream, &mut self.recv_buf)
    }
}

impl Transport for UdsTransport {
    fn send(&mut self, frame: &Frame) -> Result<()> {
        framed::write_frame(&mut self.stream, frame, &mut self.send_buf)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame> {
        self.stream.set_read_timeout(None)?;
        self.recv_inner()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame> {
        self.stream.set_read_timeout(Some(timeout))?;
        let result = self.recv_inner();
        let _ = self.stream.set_read_timeout(None);
        match result {
            Err(TransportError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(TransportError::Timeout)
            }
            other => other,
        }
    }
}

/// A listener accepting [`UdsTransport`] connections at a filesystem
/// path. The socket file is removed on drop.
#[derive(Debug)]
pub struct UdsListenerTransport {
    listener: UnixListener,
    path: std::path::PathBuf,
}

impl UdsListenerTransport {
    /// Binds at `path` (any stale socket file is removed first).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        Ok(UdsListenerTransport {
            listener: UnixListener::bind(&path)?,
            path,
        })
    }

    /// The bound filesystem path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Blocks until a client connects.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn accept(&self) -> Result<UdsTransport> {
        let (stream, _) = self.listener.accept()?;
        Ok(UdsTransport::from_stream(stream))
    }
}

impl Drop for UdsListenerTransport {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn socket_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nrmi-uds-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn uds_roundtrip() {
        let path = socket_path("roundtrip");
        let listener = UdsListenerTransport::bind(&path).unwrap();
        let server = thread::spawn(move || {
            let mut t = listener.accept().unwrap();
            let f = t.recv().unwrap();
            assert_eq!(f, Frame::Lookup { name: "svc".into() });
            t.send(&Frame::LookupReply { found: true }).unwrap();
        });
        let mut client = UdsTransport::connect(&path).unwrap();
        client.send(&Frame::Lookup { name: "svc".into() }).unwrap();
        assert_eq!(client.recv().unwrap(), Frame::LookupReply { found: true });
        server.join().unwrap();
    }

    #[test]
    fn uds_disconnect_and_timeout() {
        let path = socket_path("disconnect");
        let listener = UdsListenerTransport::bind(&path).unwrap();
        let server = thread::spawn(move || {
            let t = listener.accept().unwrap();
            thread::sleep(Duration::from_millis(100));
            drop(t);
        });
        let mut client = UdsTransport::connect(&path).unwrap();
        let err = client.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout), "{err:?}");
        server.join().unwrap();
        assert!(matches!(client.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn socket_file_removed_on_drop() {
        let path = socket_path("cleanup");
        {
            let _listener = UdsListenerTransport::bind(&path).unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }
}
