//! # nrmi-transport — network substrate for NRMI
//!
//! The paper's evaluation ran on two Sun workstations (750 MHz and
//! 440 MHz) joined by a 100 Mbps LAN. This crate reproduces that
//! environment in two layers:
//!
//! * **Real transports** — [`ChannelTransport`] (in-process, crossbeam
//!   channels) and [`TcpTransport`] (framed `std::net` sockets) carry the
//!   protocol [`Frame`]s for actual execution.
//! * **Simulated time** — a [`SimEnv`] deterministically accounts CPU
//!   microseconds (scaled per [`MachineSpec`]) and transfer microseconds
//!   (latency + bytes over a [`LinkSpec`]'s bandwidth). Benchmarks read
//!   the simulated clock to regenerate the paper's tables with the
//!   original environment's proportions, independent of the host machine.
//!
//! The two layers are independent: transports work without a `SimEnv`
//! (no accounting), and the middleware charges the `SimEnv` explicitly
//! for the work it models (serialization CPU, restore CPU, transfers).

// Denied (not forbidden) so the `poller` module can scope an allow for
// its two lines of `poll(2)` FFI; everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod framed;
mod listen;

pub mod blocking;
pub mod endpoint;
pub mod fault;
pub mod message;
#[cfg(unix)]
pub mod poller;
pub mod simnet;
pub mod tcp;
#[cfg(unix)]
pub mod uds;

pub use blocking::blocking_region;
#[cfg(feature = "lockcheck")]
pub use blocking::set_blocking_hook;
pub use endpoint::{
    channel_pair, ChannelTransport, Listener, Transport, TransportReceiver, TransportSender,
};
#[cfg(unix)]
pub use endpoint::{PollableListener, ReactorIo};
pub use error::TransportError;
pub use fault::{Fault, FaultPlan, FaultyTransport};
pub use framed::{
    bytes_copied, set_wire_batching, wire_batching_enabled, wire_syscalls, SendQueue,
};
pub use message::{decode_rvals, encode_rvals, Frame, RVal};
#[cfg(unix)]
pub use poller::{Event, Interest, Poller, Token, Waker};
pub use simnet::{LinkSpec, MachineSpec, SimEnv, SimReport};
pub use tcp::{TcpListenerTransport, TcpTransport};
#[cfg(unix)]
pub use uds::{UdsListenerTransport, UdsTransport};

/// Result alias for transport operations.
pub type Result<T> = std::result::Result<T, TransportError>;
