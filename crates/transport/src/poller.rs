//! A thin readiness-polling abstraction over `poll(2)` — the substrate
//! for the reactor serve loop, with no runtime dependency.
//!
//! The design is the classic self-pipe reactor core:
//!
//! * Callers [`register`](Poller::register) file descriptors under
//!   opaque [`Token`]s with a read/write [`Interest`], then block in
//!   [`Poller::wait`] until the kernel reports readiness [`Event`]s.
//! * A [`Waker`] (the write end of an internal socket pair) lets any
//!   thread interrupt a blocked `wait` — how worker completions and
//!   shutdown reach a reactor that is asleep in the kernel.
//!
//! `poll(2)` is declared directly as an `extern "C"` item: the workspace
//! vendors no `libc` crate, and `std` already links the platform libc,
//! so the symbol resolves with no new dependency. `poll` over `epoll`
//! keeps the code portable across Unixes and needs no extra fd
//! lifecycle; rebuilding the pollfd array per wait is O(n) in
//! registered fds, which the readiness loop is anyway.

#![cfg(unix)]
// The crate denies unsafe code; this module is the one or two lines of
// FFI the reactor needs, so the lint is scoped down here rather than
// relaxed crate-wide.
#![allow(unsafe_code)]

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::os::raw::{c_int, c_ulong};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

use crate::{Result, TransportError};

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Identifies one registered file descriptor across [`Poller::wait`]
/// calls. Chosen by the caller; `usize::MAX` is reserved for the
/// poller's internal wake channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

impl Token {
    /// The reserved token [`Poller::wait`] never reports: the internal
    /// wake pipe.
    pub const WAKE: Token = Token(usize::MAX);
}

/// Which readiness conditions a registration asks to be told about.
/// Error/hangup conditions are always reported regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when a read would make progress.
    pub readable: bool,
    /// Report when a write would make progress.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Neither direction — the fd stays registered for error/hangup
    /// reporting only (a paused connection).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn events(self) -> i16 {
        let mut ev = 0;
        if self.readable {
            ev |= POLLIN;
        }
        if self.writable {
            ev |= POLLOUT;
        }
        ev
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration this event is for.
    pub token: Token,
    /// A read would make progress (includes peer hangup: the read that
    /// observes EOF is how the closure is consumed).
    pub readable: bool,
    /// A write would make progress.
    pub writable: bool,
    /// The kernel reports an error/hangup condition on the fd
    /// (`POLLERR`/`POLLHUP`/`POLLNVAL`); the owner should drain and
    /// drop it.
    pub hangup: bool,
}

/// Wakes a [`Poller`] blocked in [`wait`](Poller::wait) from any
/// thread. Cheap to clone; writes one byte into the poller's internal
/// socket pair (a full pipe means a wake is already pending, which is
/// just as good).
#[derive(Debug, Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Interrupts the poller's current (or next) wait.
    pub fn wake(&self) {
        // WouldBlock: the pipe already holds unread wake bytes, so the
        // poller is guaranteed to wake — nothing to do. Other errors
        // mean the poller is gone; nothing to wake.
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// A `poll(2)`-backed readiness selector.
pub struct Poller {
    wake_rx: UnixStream,
    wake_tx: Arc<UnixStream>,
    registered: HashMap<usize, (RawFd, Interest)>,
    /// Scratch pollfd array rebuilt per wait, reused across calls.
    scratch: Vec<PollFd>,
    /// Tokens parallel to `scratch` (index 0 is the wake pipe).
    tokens: Vec<usize>,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("registered", &self.registered.len())
            .finish()
    }
}

impl Poller {
    /// Creates a poller and its internal wake channel.
    ///
    /// # Errors
    /// Propagates socket-pair creation failures.
    pub fn new() -> Result<Self> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        Ok(Poller {
            wake_rx,
            wake_tx: Arc::new(wake_tx),
            registered: HashMap::new(),
            scratch: Vec::new(),
            tokens: Vec::new(),
        })
    }

    /// A handle other threads use to interrupt [`Poller::wait`].
    pub fn waker(&self) -> Waker {
        Waker {
            tx: Arc::clone(&self.wake_tx),
        }
    }

    /// Registers `fd` under `token`. Re-registering a live token
    /// replaces its fd and interest.
    pub fn register(&mut self, token: Token, fd: RawFd, interest: Interest) {
        debug_assert_ne!(token, Token::WAKE, "WAKE token is reserved");
        self.registered.insert(token.0, (fd, interest));
    }

    /// Updates the interest of an existing registration; no-op for an
    /// unknown token.
    pub fn modify(&mut self, token: Token, interest: Interest) {
        if let Some(entry) = self.registered.get_mut(&token.0) {
            entry.1 = interest;
        }
    }

    /// Removes a registration; no-op for an unknown token.
    pub fn deregister(&mut self, token: Token) {
        self.registered.remove(&token.0);
    }

    /// Registered descriptors (excluding the wake channel).
    pub fn len(&self) -> usize {
        self.registered.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.registered.is_empty()
    }

    /// Blocks until at least one registered fd is ready, the `timeout`
    /// elapses (`None` blocks indefinitely), or a [`Waker`] fires.
    /// Readiness reports are appended to `events` (cleared first);
    /// returns `true` when a wake was consumed.
    ///
    /// A signal interrupting the underlying `poll` returns normally
    /// with no events — callers are loops and simply come around again.
    ///
    /// # Errors
    /// Propagates `poll(2)` failures.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> Result<bool> {
        crate::blocking::blocking_region("poller.wait");
        events.clear();
        self.scratch.clear();
        self.tokens.clear();
        self.scratch.push(PollFd {
            fd: self.wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        self.tokens.push(usize::MAX);
        for (&token, &(fd, interest)) in &self.registered {
            self.scratch.push(PollFd {
                fd,
                events: interest.events(),
                revents: 0,
            });
            self.tokens.push(token);
        }
        let timeout_ms: c_int = match timeout {
            // Round up so a nonzero wait can't busy-spin as zero.
            Some(t) => t.as_millis().max(1).min(c_int::MAX as u128) as c_int,
            None => -1,
        };
        let rc = unsafe {
            poll(
                self.scratch.as_mut_ptr(),
                self.scratch.len() as c_ulong,
                timeout_ms,
            )
        };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == ErrorKind::Interrupted {
                return Ok(false);
            }
            return Err(TransportError::Io(err));
        }
        let mut woke = false;
        for (pfd, &token) in self.scratch.iter().zip(&self.tokens) {
            if pfd.revents == 0 {
                continue;
            }
            if token == usize::MAX {
                woke = true;
                // Drain every pending wake byte so the next wait blocks.
                let mut sink = [0u8; 64];
                while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
                continue;
            }
            events.push(Event {
                token: Token(token),
                readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                writable: pfd.revents & POLLOUT != 0,
                hangup: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
            });
        }
        Ok(woke)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::time::Instant;

    #[test]
    fn wait_times_out_with_no_events() {
        let mut poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        let woke = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(!woke);
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn readable_fd_reports_its_token() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(Token(7), b.as_raw_fd(), Interest::READABLE);
        a.write_all(&[0xab]).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readable);
        drop(b);
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        let woke = poller.wait(&mut events, None).unwrap();
        assert!(woke, "wait must report the wake");
        assert!(events.is_empty());
        assert!(start.elapsed() < Duration::from_secs(2));
        handle.join().unwrap();
    }

    #[test]
    fn wake_bytes_are_drained() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        for _ in 0..10 {
            waker.wake();
        }
        let mut events = Vec::new();
        assert!(poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap());
        // All ten coalesced into one wake; the next wait blocks fresh.
        assert!(!poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap());
    }

    #[test]
    fn hangup_is_reported() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(Token(3), b.as_raw_fd(), Interest::READABLE);
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(
            events[0].hangup || events[0].readable,
            "peer closure must surface as hangup or EOF-readable: {:?}",
            events[0]
        );
        drop(b);
    }

    #[test]
    fn modify_and_deregister_change_reports() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(Token(1), b.as_raw_fd(), Interest::NONE);
        a.write_all(&[1]).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty(), "no interest, no report: {events:?}");
        poller.modify(Token(1), Interest::READABLE);
        poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        assert_eq!(events.len(), 1);
        poller.deregister(Token(1));
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        drop(b);
    }
}
