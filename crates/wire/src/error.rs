//! Wire-format error type.

use std::error::Error;
use std::fmt;

use nrmi_heap::HeapError;

/// Errors raised while encoding or decoding object graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The payload did not start with the NRMI magic bytes.
    BadMagic,
    /// The payload's format version is not supported.
    UnsupportedVersion(u8),
    /// The payload ended before a complete value was read.
    UnexpectedEof {
        /// Byte offset at which more input was needed.
        offset: usize,
    },
    /// An unknown value tag was encountered.
    UnknownTag {
        /// The offending tag byte.
        tag: u8,
        /// Byte offset of the tag.
        offset: usize,
    },
    /// A back-reference pointed past the objects decoded so far.
    BadBackRef {
        /// The referenced traversal position.
        position: u32,
        /// Number of objects decoded when it was encountered.
        decoded: u32,
    },
    /// A delta referenced an old-object index outside the snapshot.
    BadOldIndex {
        /// The referenced old index.
        index: u32,
        /// Snapshot size.
        len: u32,
    },
    /// A string was not valid UTF-8.
    InvalidUtf8 {
        /// Byte offset of the string payload.
        offset: usize,
    },
    /// A varint overflowed its target width.
    VarintOverflow {
        /// Byte offset of the varint.
        offset: usize,
    },
    /// An object of a non-serializable class was reached during encoding.
    NotSerializable {
        /// Class name.
        class: String,
    },
    /// A remote-marked object was reached but no remote hooks were
    /// installed (plain serialization cannot marshal remote objects).
    RemoteWithoutHooks {
        /// Class name.
        class: String,
    },
    /// A remote reference named a key absent from the export table.
    UnknownExport {
        /// The unresolvable key.
        key: u64,
    },
    /// The payload decoded completely but bytes were left over — a
    /// truncated write, a mis-framed buffer, or data smuggled after a
    /// valid prefix. Accepting it would silently drop state.
    TrailingBytes {
        /// Byte offset where decoding finished.
        offset: usize,
        /// Number of unconsumed bytes after it.
        trailing: usize,
    },
    /// An underlying heap operation failed.
    Heap(HeapError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "payload does not start with NRMI magic"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire format version {v}"),
            WireError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of payload at byte {offset}")
            }
            WireError::UnknownTag { tag, offset } => {
                write!(f, "unknown value tag {tag:#04x} at byte {offset}")
            }
            WireError::BadBackRef { position, decoded } => write!(
                f,
                "back-reference to position {position} but only {decoded} objects decoded"
            ),
            WireError::BadOldIndex { index, len } => {
                write!(f, "old-object index {index} outside snapshot of {len}")
            }
            WireError::InvalidUtf8 { offset } => {
                write!(f, "invalid UTF-8 string at byte {offset}")
            }
            WireError::VarintOverflow { offset } => {
                write!(f, "varint overflow at byte {offset}")
            }
            WireError::NotSerializable { class } => {
                write!(f, "class {class} is not serializable")
            }
            WireError::RemoteWithoutHooks { class } => write!(
                f,
                "remote object of class {class} reached without remote hooks installed"
            ),
            WireError::UnknownExport { key } => {
                write!(f, "remote reference to unknown export key {key}")
            }
            WireError::TrailingBytes { offset, trailing } => {
                write!(
                    f,
                    "{trailing} unconsumed byte(s) after payload ended at byte {offset}"
                )
            }
            WireError::Heap(e) => write!(f, "heap error during (de)serialization: {e}"),
        }
    }
}

impl Error for WireError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WireError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for WireError {
    fn from(e: HeapError) -> Self {
        WireError::Heap(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_sourced() {
        fn assert_bounds<T: Send + Sync + Error + 'static>() {}
        assert_bounds::<WireError>();
        let e = WireError::Heap(HeapError::DanglingRef(3));
        assert!(e.source().is_some());
        assert!(WireError::BadMagic.source().is_none());
    }

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(WireError, &str)> = vec![
            (WireError::BadMagic, "magic"),
            (WireError::UnsupportedVersion(9), "9"),
            (WireError::UnexpectedEof { offset: 5 }, "5"),
            (
                WireError::UnknownTag {
                    tag: 0xff,
                    offset: 2,
                },
                "0xff",
            ),
            (
                WireError::BadBackRef {
                    position: 7,
                    decoded: 3,
                },
                "7",
            ),
            (WireError::BadOldIndex { index: 4, len: 2 }, "4"),
            (WireError::InvalidUtf8 { offset: 1 }, "UTF-8"),
            (WireError::VarintOverflow { offset: 1 }, "varint"),
            (
                WireError::NotSerializable {
                    class: "Foo".into(),
                },
                "Foo",
            ),
            (
                WireError::RemoteWithoutHooks {
                    class: "Bar".into(),
                },
                "Bar",
            ),
            (WireError::UnknownExport { key: 77 }, "77"),
            (
                WireError::TrailingBytes {
                    offset: 12,
                    trailing: 3,
                },
                "3 unconsumed",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
