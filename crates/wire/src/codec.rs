//! A reusable encoding scratch: the [`Codec`].
//!
//! Every encoder in this crate needs the same working state — a
//! position map from objects to traversal indices, a second map for
//! delta-shipped new objects, and a growable payload buffer. Building
//! those fresh per call is exactly the allocation churn the hot path
//! does not want: the position maps are sized by the arena and the
//! buffer by the payload, both of which are stable across the calls of
//! a session.
//!
//! A [`Codec`] owns that state and lends it to the encoders. Position
//! maps are generation-stamped ([`DensePositionMap`]), so "clearing"
//! them between calls is a counter bump; payload buffers come from a
//! small recycle pool fed by [`Codec::recycle`]. In steady state an
//! encode touches no allocator at all for its bookkeeping — the only
//! allocation left is the payload `Vec` itself when the pool is empty.
//!
//! The codec is *transparent*: each `encode_*` method runs the same
//! code path as the corresponding free function and produces
//! byte-identical output (the differential tests below pin this down).
//!
//! The pooled buffers double as **wire segments** for the transport's
//! scatter-gather path: the payload `Vec` inside an [`EncodedGraph`] or
//! [`EncodedDelta`] is handed to `Frame` construction whole, and the
//! vectored write path (`Frame::encode_prefix_into` plus `writev`)
//! references it *in place* as its own iovec entry instead of memmoving
//! it into a contiguous frame body. [`Codec::loan_segment`] is the
//! explicit loan side of that cycle; [`Codec::recycle`] is the return
//! side.

use nrmi_heap::{DensePositionMap, Heap, ObjId, Value};

use crate::delta::{self, EncodedDelta, GraphSnapshot};
use crate::ser::{EncodedGraph, RemoteHooks, Serializer};
use crate::warm::{self, EncodedRequestDelta};
use crate::Result;

/// Payload buffers kept in the recycle pool beyond which [`Codec::recycle`]
/// drops its argument instead of retaining it.
const MAX_POOLED_BUFFERS: usize = 8;

/// Reusable encoder scratch: dense position maps plus a payload-buffer
/// pool. See the [module docs](self) for the design.
#[derive(Debug, Default)]
pub struct Codec {
    /// Traversal-position map for full graph encodes.
    graph_positions: DensePositionMap,
    /// Old-object position map for (request and reply) delta encodes.
    delta_old: DensePositionMap,
    /// New-object position map for delta encodes.
    delta_new: DensePositionMap,
    /// Recycled payload buffers (cleared, capacity retained).
    buffers: Vec<Vec<u8>>,
}

impl Codec {
    /// Creates a codec with empty scratch; storage grows on first use
    /// and is retained afterwards.
    pub fn new() -> Self {
        Codec::default()
    }

    /// Returns a finished payload buffer to the pool so a later encode
    /// can reuse its allocation. Callers that keep payloads alive (e.g.
    /// cached seed requests) simply skip this.
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.buffers.len() < MAX_POOLED_BUFFERS && buf.capacity() > 0 {
            buf.clear();
            self.buffers.push(buf);
        }
    }

    /// Loans a pooled segment (cleared, capacity retained) for a caller
    /// to fill — the buffer every `encode_*` method writes its payload
    /// into, and the allocation the vectored wire path later references
    /// in place as one iovec entry. Return it with [`Codec::recycle`]
    /// once the bytes have left the process (or keep it alive for
    /// caches). Empty when the pool is dry — the caller's writes grow
    /// it, and recycling teaches the pool the session's payload sizes.
    pub fn loan_segment(&mut self) -> Vec<u8> {
        self.buffers.pop().unwrap_or_default()
    }

    /// As [`serialize_graph_with`](crate::ser::serialize_graph_with),
    /// reusing this codec's scratch. Byte-identical to the free
    /// function.
    ///
    /// # Errors
    /// See [`Serializer::encode_roots`].
    pub fn encode_graph<'a>(
        &mut self,
        heap: &'a Heap,
        roots: &'a [Value],
        old_index: Option<&DensePositionMap>,
        hooks: Option<&mut dyn RemoteHooks>,
    ) -> Result<EncodedGraph> {
        let ser = Serializer::with_scratch(
            heap,
            old_index,
            hooks,
            std::mem::take(&mut self.graph_positions),
            self.loan_segment(),
        );
        let (enc, positions) = ser.encode_roots_reclaim(roots)?;
        self.graph_positions = positions;
        Ok(enc)
    }

    /// As [`encode_delta`](crate::delta::encode_delta), reusing this
    /// codec's scratch. Byte-identical to the free function.
    ///
    /// # Errors
    /// See [`encode_delta`](crate::delta::encode_delta).
    pub fn encode_reply_delta(
        &mut self,
        heap: &Heap,
        snapshot: &GraphSnapshot,
        roots: &[Value],
    ) -> Result<EncodedDelta> {
        let (delta, old, new) = delta::encode_delta_pooled(
            heap,
            snapshot,
            roots,
            std::mem::take(&mut self.delta_old),
            std::mem::take(&mut self.delta_new),
            self.loan_segment(),
        )?;
        self.delta_old = old;
        self.delta_new = new;
        Ok(delta)
    }

    /// As [`encode_request_delta`](crate::warm::encode_request_delta),
    /// reusing this codec's scratch. Byte-identical to the free
    /// function.
    ///
    /// # Errors
    /// See [`encode_request_delta`](crate::warm::encode_request_delta).
    pub fn encode_request_delta(
        &mut self,
        heap: &Heap,
        sync: &[ObjId],
        freed: &[u32],
        dirty: &[u32],
        roots: &[Value],
    ) -> Result<EncodedRequestDelta> {
        let (delta, old, new) = warm::encode_request_delta_pooled(
            heap,
            sync,
            freed,
            dirty,
            roots,
            std::mem::take(&mut self.delta_old),
            std::mem::take(&mut self.delta_new),
            self.loan_segment(),
        )?;
        self.delta_old = old;
        self.delta_new = new;
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{encode_delta, DELTA_MAGIC};
    use crate::deserialize_graph;
    use crate::ser::{serialize_graph, serialize_graph_with};
    use crate::warm::{encode_request_delta, REQUEST_DELTA_MAGIC};
    use nrmi_heap::tree::{self, TreeClasses};
    use nrmi_heap::{ClassRegistry, HeapAccess, LinearMap};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    #[test]
    fn pooled_graph_encode_is_byte_identical_across_reuse() {
        let (mut heap, classes) = setup();
        let mut codec = Codec::new();
        // Several different graphs through ONE codec: stale scratch from
        // one encode must never leak into the next.
        for seed in 0..4 {
            let root = tree::build_random_tree(&mut heap, &classes, 32, seed).unwrap();
            let fresh = serialize_graph(&heap, &[Value::Ref(root)]).unwrap();
            let pooled = codec
                .encode_graph(&heap, &[Value::Ref(root)], None, None)
                .unwrap();
            assert_eq!(pooled.bytes, fresh.bytes, "seed {seed}");
            assert_eq!(pooled.linear, fresh.linear, "seed {seed}");
            codec.recycle(pooled.bytes);
        }
    }

    #[test]
    fn pooled_graph_encode_with_old_index_matches_fresh() {
        let (mut heap, classes) = setup();
        let root = tree::build_random_tree(&mut heap, &classes, 16, 9).unwrap();
        let map = LinearMap::build(&heap, &[root]).unwrap();
        let fresh =
            serialize_graph_with(&heap, &[Value::Ref(root)], Some(map.position_map()), None)
                .unwrap();
        let mut codec = Codec::new();
        // Warm the scratch on an unrelated encode first.
        let other = tree::build_random_tree(&mut heap, &classes, 8, 10).unwrap();
        let warmup = codec
            .encode_graph(&heap, &[Value::Ref(other)], None, None)
            .unwrap();
        codec.recycle(warmup.bytes);
        let pooled = codec
            .encode_graph(&heap, &[Value::Ref(root)], Some(map.position_map()), None)
            .unwrap();
        assert_eq!(pooled.bytes, fresh.bytes);
    }

    #[test]
    fn pooled_reply_delta_is_byte_identical() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 64, 11).unwrap();
        let enc = serialize_graph(&client, &[Value::Ref(root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut server).unwrap();
        let snapshot = GraphSnapshot::capture(&server, &dec.linear).unwrap();
        let server_root = dec.roots[0].as_ref_id().unwrap();
        server
            .set_field(server_root, "data", Value::Int(5))
            .unwrap();
        let fresh = encode_delta(&server, &snapshot, &[Value::Ref(server_root)]).unwrap();
        let mut codec = Codec::new();
        for round in 0..3 {
            let pooled = codec
                .encode_reply_delta(&server, &snapshot, &[Value::Ref(server_root)])
                .unwrap();
            assert_eq!(pooled.bytes, fresh.bytes, "round {round}");
            assert_eq!(pooled.stats, fresh.stats, "round {round}");
            assert_eq!(&pooled.bytes[..4], &DELTA_MAGIC);
            codec.recycle(pooled.bytes);
        }
    }

    #[test]
    fn pooled_request_delta_is_byte_identical() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 32, 12).unwrap();
        let sync = LinearMap::build(&client, &[root]).unwrap().order().to_vec();
        client.set_field(sync[3], "data", Value::Int(99)).unwrap();
        let leaf = client
            .alloc(classes.tree, vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        client.set_field(sync[0], "left", Value::Ref(leaf)).unwrap();
        let fresh =
            encode_request_delta(&client, &sync, &[], &[0, 3], &[Value::Ref(sync[0])]).unwrap();
        let mut codec = Codec::new();
        for round in 0..3 {
            let pooled = codec
                .encode_request_delta(&client, &sync, &[], &[0, 3], &[Value::Ref(sync[0])])
                .unwrap();
            assert_eq!(pooled.bytes, fresh.bytes, "round {round}");
            assert_eq!(pooled.new_objects, fresh.new_objects, "round {round}");
            assert_eq!(&pooled.bytes[..4], &REQUEST_DELTA_MAGIC);
            codec.recycle(pooled.bytes);
        }
    }

    #[test]
    fn recycled_buffers_are_actually_reused() {
        let (mut heap, classes) = setup();
        let root = tree::build_random_tree(&mut heap, &classes, 8, 13).unwrap();
        let mut codec = Codec::new();
        let enc = codec
            .encode_graph(&heap, &[Value::Ref(root)], None, None)
            .unwrap();
        let cap = enc.bytes.capacity();
        let ptr = enc.bytes.as_ptr();
        codec.recycle(enc.bytes);
        let enc2 = codec
            .encode_graph(&heap, &[Value::Ref(root)], None, None)
            .unwrap();
        assert_eq!(enc2.bytes.as_ptr(), ptr, "same backing allocation");
        assert!(enc2.bytes.capacity() >= cap);
    }
}
