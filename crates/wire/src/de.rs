//! Graph deserialization (unmarshalling) with linear-map reconstruction.
//!
//! Objects appear in the payload in the sender's traversal order, so the
//! receiver can rebuild the linear map *during* unmarshalling — no map is
//! ever transmitted. This is the first optimization of §5.2.4 of the
//! paper and the reason NRMI's extra bandwidth over plain call-by-copy is
//! only the reply payload. Each decoded object also records the sender's
//! `old_index` annotation, the raw material for restore step 4 ("match up
//! the two linear maps").

use nrmi_heap::{Heap, ObjId, Value};

use crate::io::ByteReader;
use crate::ser::{
    RemoteHooks, TAG_BACKREF, TAG_DOUBLE, TAG_FALSE, TAG_INT, TAG_LONG, TAG_NULL, TAG_OBJ,
    TAG_REMOTE, TAG_STR, TAG_STRREF, TAG_TRUE,
};
use crate::{Result, WireError, FORMAT_VERSION, MAGIC};

/// The result of unmarshalling a graph payload.
#[derive(Clone, Debug, Default)]
pub struct DecodedGraph {
    /// The decoded root values, in the order they were encoded.
    pub roots: Vec<Value>,
    /// The receiver-side linear map: newly allocated objects in the
    /// sender's traversal order (position `i` here corresponds to
    /// position `i` in the sender's [`EncodedGraph::linear`]).
    ///
    /// [`EncodedGraph::linear`]: crate::ser::EncodedGraph::linear
    pub linear: Vec<ObjId>,
    /// Per-object `old_index` annotations (parallel to `linear`): the
    /// object's position in the linear map of an *earlier* exchange, if
    /// the sender declared one. `None` marks objects the sender
    /// allocated after that exchange — the algorithm's "new objects".
    pub old_index: Vec<Option<u32>>,
}

impl DecodedGraph {
    /// Number of objects materialized.
    pub fn object_count(&self) -> usize {
        self.linear.len()
    }

    /// Iterates over `(obj, old_index)` pairs in traversal order.
    pub fn iter_with_old(&self) -> impl Iterator<Item = (ObjId, Option<u32>)> + '_ {
        self.linear
            .iter()
            .copied()
            .zip(self.old_index.iter().copied())
    }
}

/// Streaming graph decoder. Most callers use [`deserialize_graph`].
pub struct Deserializer<'h, 'b, 'k> {
    heap: &'h mut Heap,
    reader: ByteReader<'b>,
    linear: Vec<ObjId>,
    old_index: Vec<Option<u32>>,
    hooks: Option<&'k mut (dyn RemoteHooks + 'k)>,
    strings: Vec<String>,
}

impl<'h, 'b, 'k> std::fmt::Debug for Deserializer<'h, 'b, 'k> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deserializer")
            .field("decoded", &self.linear.len())
            .field("offset", &self.reader.position())
            .finish()
    }
}

impl<'h, 'b, 'k> Deserializer<'h, 'b, 'k> {
    /// Creates a decoder that materializes objects into `heap`.
    pub fn new(
        heap: &'h mut Heap,
        bytes: &'b [u8],
        hooks: Option<&'k mut (dyn RemoteHooks + 'k)>,
    ) -> Self {
        Deserializer {
            heap,
            reader: ByteReader::new(bytes),
            linear: Vec::new(),
            old_index: Vec::new(),
            hooks,
            strings: Vec::new(),
        }
    }

    /// Decodes the full payload.
    ///
    /// # Errors
    /// Fails on malformed payloads (bad magic/version/tags/back-references)
    /// or heap allocation failures.
    pub fn decode(mut self) -> Result<DecodedGraph> {
        let magic = self.reader.get_slice(4)?;
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = self.reader.get_u8()?;
        if version != FORMAT_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let root_count = self.reader.get_count()?;
        let mut roots = Vec::with_capacity(root_count);
        for _ in 0..root_count {
            let v = self.decode_value()?;
            roots.push(v);
        }
        if !self.reader.is_exhausted() {
            return Err(WireError::TrailingBytes {
                offset: self.reader.position(),
                trailing: self.reader.remaining(),
            });
        }
        Ok(DecodedGraph {
            roots,
            linear: self.linear,
            old_index: self.old_index,
        })
    }

    fn decode_value(&mut self) -> Result<Value> {
        let offset = self.reader.position();
        let tag = self.reader.get_u8()?;
        match tag {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_INT => {
                let v = self.reader.get_zigzag()?;
                Ok(Value::Int(v as i32))
            }
            TAG_LONG => Ok(Value::Long(self.reader.get_zigzag()?)),
            TAG_DOUBLE => Ok(Value::Double(self.reader.get_f64()?)),
            TAG_STR => {
                let s = self.reader.get_str()?;
                self.strings.push(s.clone());
                Ok(Value::Str(s))
            }
            TAG_STRREF => {
                let idx = self.reader.get_varint_u32()? as usize;
                self.strings
                    .get(idx)
                    .map(|s| Value::Str(s.clone()))
                    .ok_or(WireError::BadBackRef {
                        position: idx as u32,
                        decoded: self.strings.len() as u32,
                    })
            }
            TAG_OBJ => self.decode_object(),
            TAG_BACKREF => {
                let pos = self.reader.get_varint_u32()?;
                self.linear
                    .get(pos as usize)
                    .map(|&id| Value::Ref(id))
                    .ok_or(WireError::BadBackRef {
                        position: pos,
                        decoded: self.linear.len() as u32,
                    })
            }
            TAG_REMOTE => {
                let owned_by_sender = self.reader.get_u8()? != 0;
                let key = self.reader.get_varint()?;
                match self.hooks.as_deref_mut() {
                    Some(hooks) => hooks.import(self.heap, owned_by_sender, key),
                    None => Err(WireError::RemoteWithoutHooks {
                        class: format!("<stub:{key}>"),
                    }),
                }
            }
            other => Err(WireError::UnknownTag { tag: other, offset }),
        }
    }

    fn decode_object(&mut self) -> Result<Value> {
        let class = nrmi_heap::ClassId::from_index(self.reader.get_varint()? as u32);
        let old = match self.reader.get_varint()? {
            0 => None,
            n => Some((n - 1) as u32),
        };
        let slot_count = self.reader.get_count()?;

        // Allocate the shell first so children (and cycles) can refer to
        // it by traversal position while its slots are still being read.
        let desc = self.heap.registry_handle().get(class)?;
        let is_array = desc.flags().array;
        let id = if is_array {
            self.heap.alloc_array(class, Vec::new())?
        } else {
            self.heap.alloc_default(class)?
        };
        self.linear.push(id);
        self.old_index.push(old);

        let mut slots = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            slots.push(self.decode_value()?);
        }
        self.heap.overwrite_slots(id, slots)?;
        Ok(Value::Ref(id))
    }
}

/// Decodes a payload produced by [`serialize_graph`], materializing the
/// graph into `heap`.
///
/// # Errors
/// See [`Deserializer::decode`].
///
/// [`serialize_graph`]: crate::ser::serialize_graph
pub fn deserialize_graph(bytes: &[u8], heap: &mut Heap) -> Result<DecodedGraph> {
    Deserializer::new(heap, bytes, None).decode()
}

/// Decodes with remote hooks installed (stub-bearing graphs).
///
/// # Errors
/// See [`Deserializer::decode`].
pub fn deserialize_graph_with(
    bytes: &[u8],
    heap: &mut Heap,
    hooks: &mut dyn RemoteHooks,
) -> Result<DecodedGraph> {
    Deserializer::new(heap, bytes, Some(hooks)).decode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ser::serialize_graph;
    use nrmi_heap::graph::isomorphic;
    use nrmi_heap::tree::{self, TreeClasses};
    use nrmi_heap::{ClassRegistry, HeapAccess};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    fn roundtrip(heap: &Heap, roots: &[Value]) -> (Heap, DecodedGraph) {
        let enc = serialize_graph(heap, roots).unwrap();
        let mut dst = Heap::new(heap.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut dst).unwrap();
        (dst, dec)
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (mut heap, classes) = setup();
        let root = tree::build_random_tree(&mut heap, &classes, 8, 4).unwrap();
        let mut bytes = serialize_graph(&heap, &[Value::Ref(root)]).unwrap().bytes;
        bytes.push(0x00);
        let mut dst = Heap::new(heap.registry_handle().clone());
        match deserialize_graph(&bytes, &mut dst) {
            Err(WireError::TrailingBytes { trailing, .. }) => assert_eq!(trailing, 1),
            other => panic!("expected TrailingBytes, got {other:?}"),
        }
    }

    #[test]
    fn tree_roundtrip_isomorphic() {
        let (mut heap, classes) = setup();
        let root = tree::build_random_tree(&mut heap, &classes, 64, 5).unwrap();
        let (dst, dec) = roundtrip(&heap, &[Value::Ref(root)]);
        let root2 = dec.roots[0].as_ref_id().unwrap();
        assert!(isomorphic(&heap, root, &dst, root2).unwrap());
        assert_eq!(dec.object_count(), 64);
        assert!(dec.old_index.iter().all(Option::is_none));
    }

    #[test]
    fn aliasing_preserved() {
        let (mut heap, classes) = setup();
        let shared = heap
            .alloc(classes.tree, vec![Value::Int(42), Value::Null, Value::Null])
            .unwrap();
        let root = heap
            .alloc(
                classes.tree,
                vec![Value::Int(0), Value::Ref(shared), Value::Ref(shared)],
            )
            .unwrap();
        let (mut dst, dec) = roundtrip(&heap, &[Value::Ref(root)]);
        let root2 = dec.roots[0].as_ref_id().unwrap();
        let l = dst.get_ref(root2, "left").unwrap().unwrap();
        let r = dst.get_ref(root2, "right").unwrap().unwrap();
        assert_eq!(l, r);
        assert_eq!(dst.get_field(l, "data").unwrap(), Value::Int(42));
    }

    #[test]
    fn cycles_roundtrip() {
        let (mut heap, classes) = setup();
        let a = heap.alloc_default(classes.tree).unwrap();
        let b = heap.alloc_default(classes.tree).unwrap();
        heap.set_field(a, "left", Value::Ref(b)).unwrap();
        heap.set_field(b, "left", Value::Ref(a)).unwrap();
        let (mut dst, dec) = roundtrip(&heap, &[Value::Ref(a)]);
        let a2 = dec.roots[0].as_ref_id().unwrap();
        let b2 = dst.get_ref(a2, "left").unwrap().unwrap();
        assert_eq!(dst.get_ref(b2, "left").unwrap(), Some(a2));
    }

    #[test]
    fn receiver_linear_map_matches_sender_positions() {
        let (mut heap, classes) = setup();
        let ex = tree::build_running_example(&mut heap, &classes).unwrap();
        let enc = serialize_graph(&heap, &[Value::Ref(ex.root)]).unwrap();
        let mut dst = Heap::new(heap.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut dst).unwrap();
        assert_eq!(dec.linear.len(), enc.linear.len());
        // Position i on both sides refers to isomorphic objects: compare
        // the data field of each tree node pairwise.
        for (i, (&sid, &did)) in enc.linear.iter().zip(&dec.linear).enumerate() {
            let sv = heap.get_field(sid, "data").unwrap();
            let dv = dst.get_field(did, "data").unwrap();
            assert_eq!(sv, dv, "position {i}");
        }
    }

    #[test]
    fn old_index_annotations_roundtrip() {
        let (mut heap, classes) = setup();
        let root = tree::build_random_tree(&mut heap, &classes, 8, 2).unwrap();
        let map = nrmi_heap::LinearMap::build(&heap, &[root]).unwrap();
        let enc = crate::ser::serialize_graph_with(
            &heap,
            &[Value::Ref(root)],
            Some(map.position_map()),
            None,
        )
        .unwrap();
        let mut dst = Heap::new(heap.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut dst).unwrap();
        for (i, old) in dec.old_index.iter().enumerate() {
            assert_eq!(
                *old,
                Some(i as u32),
                "traversal order equals old order here"
            );
        }
    }

    #[test]
    fn mixed_roots() {
        let (mut heap, classes) = setup();
        let root = tree::build_random_tree(&mut heap, &classes, 4, 9).unwrap();
        let (_, dec) = roundtrip(
            &heap,
            &[
                Value::Int(1),
                Value::Ref(root),
                Value::Null,
                Value::Str("tail".into()),
            ],
        );
        assert_eq!(dec.roots.len(), 4);
        assert_eq!(dec.roots[0], Value::Int(1));
        assert!(dec.roots[1].as_ref_id().is_some());
        assert_eq!(dec.roots[2], Value::Null);
        assert_eq!(dec.roots[3], Value::Str("tail".into()));
    }

    #[test]
    fn repeated_root_decodes_to_same_object() {
        let (mut heap, classes) = setup();
        let root = tree::build_random_tree(&mut heap, &classes, 3, 4).unwrap();
        // Paper §4.1: passing the same parameter twice must create ONE
        // copy on the remote site, with sharing replicated.
        let (_, dec) = roundtrip(&heap, &[Value::Ref(root), Value::Ref(root)]);
        assert_eq!(dec.roots[0], dec.roots[1]);
        assert_eq!(dec.object_count(), 3);
    }

    #[test]
    fn malformed_payloads_rejected() {
        let (mut heap, _) = setup();
        assert!(matches!(
            deserialize_graph(b"XXXX\x01\x00", &mut heap),
            Err(WireError::BadMagic)
        ));
        assert!(matches!(
            deserialize_graph(b"NRMI\x63\x00", &mut heap),
            Err(WireError::UnsupportedVersion(0x63))
        ));
        assert!(matches!(
            deserialize_graph(b"NRMI", &mut heap),
            Err(WireError::UnexpectedEof { .. })
        ));
        // Root count 1 followed by an unknown tag.
        assert!(matches!(
            deserialize_graph(b"NRMI\x01\x01\x63", &mut heap),
            Err(WireError::UnknownTag { tag: 0x63, .. })
        ));
        // Back-reference with nothing decoded.
        assert!(matches!(
            deserialize_graph(b"NRMI\x01\x01\x08\x00", &mut heap),
            Err(WireError::BadBackRef { .. })
        ));
        // Remote stub without hooks.
        assert!(matches!(
            deserialize_graph(b"NRMI\x01\x01\x09\x01\x07", &mut heap),
            Err(WireError::RemoteWithoutHooks { .. })
        ));
    }

    #[test]
    fn repeated_strings_are_interned() {
        let mut reg = ClassRegistry::new();
        let named = reg
            .define("Named")
            .field_str("name")
            .serializable()
            .register();
        let mut heap = Heap::new(reg.snapshot());
        let long_name = "a-rather-long-repeated-string-value".to_owned();
        let nodes: Vec<Value> = (0..20)
            .map(|_| {
                Value::Ref(
                    heap.alloc(named, vec![Value::Str(long_name.clone())])
                        .unwrap(),
                )
            })
            .collect();
        let enc = serialize_graph(&heap, &nodes).unwrap();
        // 20 copies of a 35-byte string would be ≥700 bytes un-interned;
        // interning stores it once plus small references.
        assert!(
            enc.byte_len() < 300,
            "interned payload should be small, got {}",
            enc.byte_len()
        );
        let mut dst = Heap::new(heap.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut dst).unwrap();
        for root in &dec.roots {
            let id = root.as_ref_id().unwrap();
            assert_eq!(
                dst.get_field(id, "name").unwrap().as_str(),
                Some(long_name.as_str())
            );
        }
    }

    #[test]
    fn distinct_strings_stay_distinct() {
        let mut reg = ClassRegistry::new();
        let named = reg
            .define("Named")
            .field_str("name")
            .serializable()
            .register();
        let mut heap = Heap::new(reg.snapshot());
        let a = heap.alloc(named, vec![Value::Str("alpha".into())]).unwrap();
        let b = heap.alloc(named, vec![Value::Str("beta".into())]).unwrap();
        let c = heap.alloc(named, vec![Value::Str("alpha".into())]).unwrap();
        let enc = serialize_graph(&heap, &[Value::Ref(a), Value::Ref(b), Value::Ref(c)]).unwrap();
        let mut dst = Heap::new(heap.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut dst).unwrap();
        let texts: Vec<Option<String>> = dec
            .roots
            .iter()
            .map(|r| {
                dst.get_field(r.as_ref_id().unwrap(), "name")
                    .unwrap()
                    .as_str()
                    .map(str::to_owned)
            })
            .collect();
        assert_eq!(
            texts,
            vec![
                Some("alpha".into()),
                Some("beta".into()),
                Some("alpha".into())
            ]
        );
    }

    #[test]
    fn array_roundtrip_preserves_aliases_and_length() {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        let arr_class = reg.define_array("Object[]", nrmi_heap::FieldType::Ref);
        let mut heap = Heap::new(reg.snapshot());
        let node = heap.alloc_default(classes.tree).unwrap();
        let arr = heap
            .alloc_array(
                arr_class,
                vec![Value::Ref(node), Value::Ref(node), Value::Null],
            )
            .unwrap();
        let (mut dst, dec) = roundtrip(&heap, &[Value::Ref(arr)]);
        let arr2 = dec.roots[0].as_ref_id().unwrap();
        assert_eq!(dst.slot_count(arr2).unwrap(), 3);
        let e0 = dst.get_element(arr2, 0).unwrap();
        let e1 = dst.get_element(arr2, 1).unwrap();
        assert_eq!(e0, e1);
        assert_eq!(dst.get_element(arr2, 2).unwrap(), Value::Null);
    }
}
