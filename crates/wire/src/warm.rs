//! Request deltas for warm calls: the client-to-server twin of [`delta`].
//!
//! A warm-call session keeps the argument graph alive on the server
//! between calls, so a subsequent request need not re-ship the whole
//! graph: it ships only the **request delta** — which synchronized
//! objects the caller freed, which it mutated (with their new slots),
//! and any objects it allocated that the graph now reaches — plus the
//! call's roots, which may freely re-root within the graph.
//!
//! Both sides maintain the same *sync list*: the synchronized objects in
//! a canonical order (initially the seed call's linear map, extended by
//! every delta's new objects in emission order — see [`next_sync`]).
//! Positions into that list are the shared vocabulary: `OLDREF i` on the
//! wire means "the i-th synchronized object", exactly as old-indices do
//! in reply deltas.
//!
//! The caller decides what is freed/dirty (typically via
//! [`Heap::epoch`]-based version stamps); this module only encodes and
//! applies. Decoding is hardened the same way the graph and delta
//! decoders are: every count is validated against the remaining payload
//! before allocation, every position is bounds-checked, and malformed
//! input yields an error, never a panic.
//!
//! [`delta`]: crate::delta

use nrmi_heap::{DensePositionMap, Heap, ObjId, Value};

use crate::delta::{DeltaDecoder, DeltaEncoder};
use crate::io::ByteReader;
use crate::{Result, WireError};

/// Magic prefix for request-delta payloads.
pub const REQUEST_DELTA_MAGIC: [u8; 4] = *b"NRMQ";

/// Size accounting for a request delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestDeltaStats {
    /// Synchronized objects the delta is relative to.
    pub sync_count: usize,
    /// Synchronized objects the caller freed.
    pub freed_count: usize,
    /// Synchronized objects whose slots were re-shipped.
    pub dirty_count: usize,
    /// New objects shipped in full.
    pub new_count: usize,
    /// Total payload bytes.
    pub bytes: usize,
}

/// An encoded request delta plus bookkeeping the sender needs to advance
/// its sync list.
#[derive(Clone, Debug)]
pub struct EncodedRequestDelta {
    /// The wire payload.
    pub bytes: Vec<u8>,
    /// Sender-side ids of the new objects shipped in full, in emission
    /// order (the receiver materializes them in the same order).
    pub new_objects: Vec<ObjId>,
    /// The freed positions actually encoded (sorted, deduplicated).
    pub freed_positions: Vec<u32>,
    /// Size accounting.
    pub stats: RequestDeltaStats,
}

/// Encodes a request delta against `sync`, the sender's synchronized
/// object list. `freed` and `dirty` are positions into `sync` (the
/// caller computes them, e.g. from heap version stamps); `roots` are the
/// call's argument values, re-rooted freely. References to objects
/// outside the live sync list are shipped in full, depth-first, exactly
/// as reply deltas ship server-allocated objects.
///
/// # Errors
/// Fails on out-of-range positions, dangling references, or
/// non-serializable new objects.
pub fn encode_request_delta(
    heap: &Heap,
    sync: &[ObjId],
    freed: &[u32],
    dirty: &[u32],
    roots: &[Value],
) -> Result<EncodedRequestDelta> {
    let (delta, _, _) = encode_request_delta_pooled(
        heap,
        sync,
        freed,
        dirty,
        roots,
        DensePositionMap::new(),
        DensePositionMap::new(),
        Vec::new(),
    )?;
    Ok(delta)
}

/// The pooled workhorse behind [`encode_request_delta`]: identical
/// output, but the position-map scratch and payload buffer are supplied
/// by the caller and the maps are handed back for reuse.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_request_delta_pooled(
    heap: &Heap,
    sync: &[ObjId],
    freed: &[u32],
    dirty: &[u32],
    roots: &[Value],
    mut old_pos: DensePositionMap,
    new_pos: DensePositionMap,
    buf: Vec<u8>,
) -> Result<(EncodedRequestDelta, DensePositionMap, DensePositionMap)> {
    let len = sync.len() as u32;
    let mut freed_positions: Vec<u32> = freed.to_vec();
    freed_positions.sort_unstable();
    freed_positions.dedup();
    for &pos in freed_positions.iter().chain(dirty) {
        if pos >= len {
            return Err(WireError::BadOldIndex { index: pos, len });
        }
    }
    let is_freed = |pos: u32| freed_positions.binary_search(&pos).is_ok();

    // Freed entries are not referenceable: leave them out of the
    // position map so a stray reference to one surfaces as an error
    // (the object is gone from the sender's heap) instead of shipping a
    // position the receiver is about to free.
    old_pos.clear();
    for (i, &id) in sync.iter().enumerate() {
        if !is_freed(i as u32) {
            old_pos.insert(id, i as u32);
        }
    }

    let mut enc = DeltaEncoder::with_scratch(heap, old_pos, new_pos, buf);
    enc.writer.put_slice(&REQUEST_DELTA_MAGIC);
    enc.writer.put_u8(crate::FORMAT_VERSION);
    enc.writer.put_varint(u64::from(len));
    enc.writer.put_varint(freed_positions.len() as u64);
    for &pos in &freed_positions {
        enc.writer.put_varint(u64::from(pos));
    }
    enc.writer.put_varint(dirty.len() as u64);
    for &pos in dirty {
        if is_freed(pos) {
            return Err(WireError::BadOldIndex { index: pos, len });
        }
        let slots = heap.get(sync[pos as usize])?.body().slots();
        enc.writer.put_varint(u64::from(pos));
        enc.writer.put_varint(slots.len() as u64);
        for v in slots {
            enc.encode_value(v)?;
        }
    }
    enc.writer.put_varint(roots.len() as u64);
    for root in roots {
        enc.encode_value(root)?;
    }

    let DeltaEncoder {
        writer,
        old_pos,
        new_pos,
        new_ids: new_objects,
        ..
    } = enc;
    let bytes = writer.into_bytes();
    let stats = RequestDeltaStats {
        sync_count: sync.len(),
        freed_count: freed_positions.len(),
        dirty_count: dirty.len(),
        new_count: new_objects.len(),
        bytes: bytes.len(),
    };
    Ok((
        EncodedRequestDelta {
            bytes,
            new_objects,
            freed_positions,
            stats,
        },
        old_pos,
        new_pos,
    ))
}

/// The result of applying a request delta on the receiver.
#[derive(Clone, Debug, Default)]
pub struct AppliedRequestDelta {
    /// Decoded call roots (the arguments).
    pub roots: Vec<Value>,
    /// Objects newly materialized in the receiver's heap, decode order.
    pub new_objects: Vec<ObjId>,
    /// Positions the sender freed (their receiver-side objects have been
    /// freed too).
    pub freed_positions: Vec<u32>,
    /// Synchronized objects patched in place.
    pub changed_count: usize,
}

/// Applies a request delta: patches dirty synchronized objects in place,
/// materializes new objects, decodes the roots, and frees the receiver's
/// copies of objects the sender freed.
///
/// # Errors
/// Fails on malformed payloads, or if `sync` does not match the sync
/// count recorded in the delta (the sessions are out of step — the
/// caller should treat this as a cache miss and fall back to a cold
/// call).
pub fn apply_request_delta(
    bytes: &[u8],
    heap: &mut Heap,
    sync: &[ObjId],
) -> Result<AppliedRequestDelta> {
    let mut reader = ByteReader::new(bytes);
    let magic = reader.get_slice(4)?;
    if magic != REQUEST_DELTA_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = reader.get_u8()?;
    if version != crate::FORMAT_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let sync_count = reader.get_varint_u32()? as usize;
    if sync_count != sync.len() {
        return Err(WireError::BadOldIndex {
            index: sync_count as u32,
            len: sync.len() as u32,
        });
    }
    let freed_count = reader.get_count()?;
    let mut freed_positions = Vec::with_capacity(freed_count);
    let mut freed_flags = vec![false; sync_count];
    for _ in 0..freed_count {
        let pos = reader.get_varint_u32()? as usize;
        // Out-of-range and duplicate positions are both protocol errors.
        match freed_flags.get_mut(pos) {
            Some(flag @ false) => *flag = true,
            _ => {
                return Err(WireError::BadOldIndex {
                    index: pos as u32,
                    len: sync_count as u32,
                })
            }
        }
        freed_positions.push(pos as u32);
    }
    let dirty_count = reader.get_count()?;

    let mut dec = DeltaDecoder {
        heap,
        reader,
        client_linear: sync,
        new_objects: Vec::new(),
    };
    for _ in 0..dirty_count {
        let pos = dec.reader.get_varint_u32()? as usize;
        if pos >= sync_count || freed_flags[pos] {
            return Err(WireError::BadOldIndex {
                index: pos as u32,
                len: sync_count as u32,
            });
        }
        let target = sync[pos];
        let slot_count = dec.reader.get_count()?;
        let mut slots = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            slots.push(dec.decode_value()?);
        }
        dec.heap.overwrite_slots(target, slots)?;
    }
    let root_count = dec.reader.get_count()?;
    let mut roots = Vec::with_capacity(root_count);
    for _ in 0..root_count {
        roots.push(dec.decode_value()?);
    }
    let new_objects = dec.new_objects;
    if !dec.reader.is_exhausted() {
        return Err(WireError::TrailingBytes {
            offset: dec.reader.position(),
            trailing: dec.reader.remaining(),
        });
    }
    // Free last, after all decoding: freed slots must not be recycled by
    // the new-object allocations above, and a malformed payload errors
    // out before any receiver object is freed.
    for &pos in &freed_positions {
        heap.free(sync[pos as usize])?;
    }
    Ok(AppliedRequestDelta {
        roots,
        new_objects,
        freed_positions,
        changed_count: dirty_count,
    })
}

/// Advances a sync list across one delta exchange: drops the freed
/// positions and appends the delta's new objects. Each side calls this
/// with its *own* object ids (the sender's [`EncodedRequestDelta`] /
/// [`EncodedDelta`](crate::delta::EncodedDelta) ids, the receiver's
/// [`AppliedRequestDelta`] /
/// [`AppliedDelta`](crate::delta::AppliedDelta) ids); because emission
/// and decode order coincide, the two lists stay position-aligned.
///
/// `freed_positions` must be in ascending order, as both
/// [`EncodedRequestDelta::freed_positions`] and
/// [`AppliedRequestDelta::freed_positions`] are — the drop is a single
/// merge walk, with no per-call set construction.
pub fn next_sync(sync: &[ObjId], freed_positions: &[u32], new_objects: &[ObjId]) -> Vec<ObjId> {
    debug_assert!(
        freed_positions.windows(2).all(|w| w[0] < w[1]),
        "freed positions must be sorted and unique"
    );
    let mut out =
        Vec::with_capacity(sync.len().saturating_sub(freed_positions.len()) + new_objects.len());
    let mut freed = freed_positions.iter().peekable();
    for (i, &id) in sync.iter().enumerate() {
        if freed.next_if(|&&pos| pos as usize == i).is_some() {
            continue;
        }
        out.push(id);
    }
    out.extend_from_slice(new_objects);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::ByteWriter;
    use crate::{deserialize_graph, serialize_graph};
    use nrmi_heap::tree::{self, TreeClasses};
    use nrmi_heap::{ClassRegistry, HeapAccess, LinearMap};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    /// Seeds a client/server pair over one tree and returns the paired
    /// sync lists (identical traversal order, distinct id spaces).
    fn seeded_pair(size: usize, seed: u64) -> (Heap, Heap, Vec<ObjId>, Vec<ObjId>, TreeClasses) {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, size, seed).unwrap();
        let enc = serialize_graph(&client, &[Value::Ref(root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut server).unwrap();
        let client_sync = LinearMap::build(&client, &[root]).unwrap().order().to_vec();
        (client, server, client_sync, dec.linear, classes)
    }

    #[test]
    fn trailing_bytes_error_before_any_free() {
        let (client, mut server, c_sync, s_sync, _) = seeded_pair(8, 6);
        let enc =
            encode_request_delta(&client, &c_sync, &[1], &[], &[Value::Ref(c_sync[0])]).unwrap();
        let mut bytes = enc.bytes;
        bytes.push(0x00);
        match apply_request_delta(&bytes, &mut server, &s_sync) {
            Err(WireError::TrailingBytes { trailing, .. }) => assert_eq!(trailing, 1),
            other => panic!("expected TrailingBytes, got {other:?}"),
        }
        // Exhaustion is checked before the free loop runs, so the
        // malformed frame must not have freed the to-be-dropped slot.
        assert!(server.get_field(s_sync[1], "data").is_ok());
    }

    #[test]
    fn clean_graph_ships_roots_only() {
        let (client, mut server, c_sync, s_sync, _) = seeded_pair(128, 1);
        let enc =
            encode_request_delta(&client, &c_sync, &[], &[], &[Value::Ref(c_sync[0])]).unwrap();
        assert_eq!(enc.stats.dirty_count, 0);
        assert_eq!(enc.stats.new_count, 0);
        assert!(
            enc.stats.bytes < 32,
            "clean request delta must be tiny: {}",
            enc.stats.bytes
        );
        let applied = apply_request_delta(&enc.bytes, &mut server, &s_sync).unwrap();
        assert_eq!(applied.roots, vec![Value::Ref(s_sync[0])]);
        assert_eq!(applied.changed_count, 0);
    }

    #[test]
    fn dirty_slots_patch_in_place() {
        let (mut client, mut server, c_sync, s_sync, _) = seeded_pair(16, 2);
        client
            .set_field(c_sync[3], "data", Value::Int(777))
            .unwrap();
        let enc =
            encode_request_delta(&client, &c_sync, &[], &[3], &[Value::Ref(c_sync[0])]).unwrap();
        apply_request_delta(&enc.bytes, &mut server, &s_sync).unwrap();
        assert_eq!(
            server.get_field(s_sync[3], "data").unwrap(),
            Value::Int(777)
        );
    }

    #[test]
    fn new_objects_materialize_and_sync_lists_stay_aligned() {
        let (mut client, mut server, c_sync, s_sync, classes) = seeded_pair(8, 3);
        // Client splices a fresh two-node chain under the root.
        let leaf = client
            .alloc(classes.tree, vec![Value::Int(91), Value::Null, Value::Null])
            .unwrap();
        let mid = client
            .alloc(
                classes.tree,
                vec![Value::Int(90), Value::Ref(leaf), Value::Null],
            )
            .unwrap();
        client
            .set_field(c_sync[0], "left", Value::Ref(mid))
            .unwrap();
        let enc =
            encode_request_delta(&client, &c_sync, &[], &[0], &[Value::Ref(c_sync[0])]).unwrap();
        assert_eq!(enc.stats.new_count, 2);
        let applied = apply_request_delta(&enc.bytes, &mut server, &s_sync).unwrap();
        assert_eq!(applied.new_objects.len(), 2);
        let c_next = next_sync(&c_sync, &enc.freed_positions, &enc.new_objects);
        let s_next = next_sync(&s_sync, &applied.freed_positions, &applied.new_objects);
        assert_eq!(c_next.len(), s_next.len());
        // Position-for-position the data matches.
        for (&c_id, &s_id) in c_next.iter().zip(&s_next) {
            assert_eq!(
                client.get_field(c_id, "data").unwrap(),
                server.get_field(s_id, "data").unwrap()
            );
        }
    }

    #[test]
    fn freed_positions_free_the_receivers_copies() {
        let (mut client, mut server, c_sync, s_sync, _) = seeded_pair(8, 4);
        // Detach and free the root's right subtree head (position known
        // from preorder: find it via the heap rather than hardcoding).
        let victim = client.get_ref(c_sync[0], "right").unwrap().unwrap();
        let victim_pos = c_sync.iter().position(|&id| id == victim).unwrap() as u32;
        // The whole subtree below it must go too or refs would dangle;
        // keep the test simple by detaching only a leaf-shaped victim.
        let reachable = nrmi_heap::traverse::reachable_set(&client, &[victim]).unwrap();
        let freed: Vec<u32> = c_sync
            .iter()
            .enumerate()
            .filter(|(_, id)| reachable.contains(**id))
            .map(|(i, _)| i as u32)
            .collect();
        client.set_field(c_sync[0], "right", Value::Null).unwrap();
        for &pos in &freed {
            client.free(c_sync[pos as usize]).unwrap();
        }
        let enc =
            encode_request_delta(&client, &c_sync, &freed, &[0], &[Value::Ref(c_sync[0])]).unwrap();
        let applied = apply_request_delta(&enc.bytes, &mut server, &s_sync).unwrap();
        assert_eq!(applied.freed_positions.len(), freed.len());
        for &pos in &freed {
            assert!(!server.contains(s_sync[pos as usize]), "server copy freed");
        }
        let _ = victim_pos;
        assert!(server.contains(s_sync[0]));
    }

    #[test]
    fn sync_count_mismatch_rejected() {
        let (client, mut server, c_sync, s_sync, _) = seeded_pair(8, 5);
        let enc =
            encode_request_delta(&client, &c_sync, &[], &[], &[Value::Ref(c_sync[0])]).unwrap();
        let err = apply_request_delta(&enc.bytes, &mut server, &s_sync[..4]).unwrap_err();
        assert!(matches!(err, WireError::BadOldIndex { .. }));
    }

    #[test]
    fn hostile_payloads_error_cleanly() {
        let (_, mut server, _, s_sync, _) = seeded_pair(4, 6);
        // Bad magic.
        assert!(matches!(
            apply_request_delta(b"XXXX\x01\x00", &mut server, &s_sync),
            Err(WireError::BadMagic)
        ));
        // Every truncation of a real payload errors, never panics, and
        // never mutates the receiver before the error.
        let (client, mut server2, c_sync, s_sync2, _) = seeded_pair(4, 6);
        let enc =
            encode_request_delta(&client, &c_sync, &[], &[1], &[Value::Ref(c_sync[0])]).unwrap();
        for cut in 0..enc.bytes.len() {
            assert!(
                apply_request_delta(&enc.bytes[..cut], &mut server2, &s_sync2).is_err(),
                "cut at {cut}"
            );
        }
        // Duplicate freed position.
        let mut w = ByteWriter::new();
        w.put_slice(&REQUEST_DELTA_MAGIC);
        w.put_u8(crate::FORMAT_VERSION);
        w.put_varint(s_sync.len() as u64);
        w.put_varint(2); // freed_count
        w.put_varint(1);
        w.put_varint(1); // duplicate
        assert!(matches!(
            apply_request_delta(&w.into_bytes(), &mut server, &s_sync),
            Err(WireError::BadOldIndex { .. })
        ));
        // Freed position out of range.
        let mut oob = ByteWriter::new();
        oob.put_slice(&REQUEST_DELTA_MAGIC);
        oob.put_u8(crate::FORMAT_VERSION);
        oob.put_varint(s_sync.len() as u64);
        oob.put_varint(1);
        oob.put_varint(99);
        assert!(matches!(
            apply_request_delta(&oob.into_bytes(), &mut server, &s_sync),
            Err(WireError::BadOldIndex { .. })
        ));
    }

    #[test]
    fn dirty_entry_for_freed_position_rejected_both_ways() {
        let (client, mut server, c_sync, s_sync, _) = seeded_pair(4, 7);
        // Encoder refuses outright.
        assert!(matches!(
            encode_request_delta(&client, &c_sync, &[2], &[2], &[]),
            Err(WireError::BadOldIndex { .. })
        ));
        // Hand-built payload with a dirty entry naming a freed position.
        let mut w = ByteWriter::new();
        w.put_slice(&REQUEST_DELTA_MAGIC);
        w.put_u8(crate::FORMAT_VERSION);
        w.put_varint(s_sync.len() as u64);
        w.put_varint(1);
        w.put_varint(2); // freed: position 2
        w.put_varint(1); // dirty_count
        w.put_varint(2); // dirty position 2 — contradicts freed
        assert!(matches!(
            apply_request_delta(&w.into_bytes(), &mut server, &s_sync),
            Err(WireError::BadOldIndex { .. })
        ));
    }

    #[test]
    fn next_sync_drops_and_appends() {
        let ids: Vec<ObjId> = (0..5).map(ObjId::from_index).collect();
        let fresh = [ObjId::from_index(9)];
        let out = next_sync(&ids, &[1, 3], &fresh);
        assert_eq!(
            out,
            vec![
                ObjId::from_index(0),
                ObjId::from_index(2),
                ObjId::from_index(4),
                ObjId::from_index(9)
            ]
        );
    }
}
