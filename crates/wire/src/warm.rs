//! Request deltas for warm calls: the client-to-server twin of [`delta`].
//!
//! A warm-call session keeps the argument graph alive on the server
//! between calls, so a subsequent request need not re-ship the whole
//! graph: it ships only the **request delta** — which synchronized
//! objects the caller freed, which it mutated (with their new slots),
//! and any objects it allocated that the graph now reaches — plus the
//! call's roots, which may freely re-root within the graph.
//!
//! Both sides maintain the same *sync list*: the synchronized objects in
//! a canonical order (initially the seed call's linear map, extended by
//! every delta's new objects in emission order — see [`next_sync`]).
//! Positions into that list are the shared vocabulary: `OLDREF i` on the
//! wire means "the i-th synchronized object", exactly as old-indices do
//! in reply deltas.
//!
//! The caller decides what is freed/dirty (typically via
//! [`Heap::epoch`]-based version stamps); this module only encodes and
//! applies. Decoding is hardened the same way the graph and delta
//! decoders are: every count is validated against the remaining payload
//! before allocation, every position is bounds-checked, and malformed
//! input yields an error, never a panic.
//!
//! [`delta`]: crate::delta

use nrmi_heap::{DensePositionMap, Heap, ObjId, Value};

use crate::delta::{DeltaDecoder, DeltaEncoder, DTAG_NEWBACK, DTAG_NEWOBJ, DTAG_OLDREF};
use crate::io::ByteReader;
use crate::ser::{TAG_DOUBLE, TAG_FALSE, TAG_INT, TAG_LONG, TAG_NULL, TAG_STR, TAG_TRUE};
use crate::{Result, WireError};

/// Magic prefix for request-delta payloads.
pub const REQUEST_DELTA_MAGIC: [u8; 4] = *b"NRMQ";

/// Size accounting for a request delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestDeltaStats {
    /// Synchronized objects the delta is relative to.
    pub sync_count: usize,
    /// Synchronized objects the caller freed.
    pub freed_count: usize,
    /// Synchronized objects whose slots were re-shipped.
    pub dirty_count: usize,
    /// New objects shipped in full.
    pub new_count: usize,
    /// Total payload bytes.
    pub bytes: usize,
}

/// An encoded request delta plus bookkeeping the sender needs to advance
/// its sync list.
#[derive(Clone, Debug)]
pub struct EncodedRequestDelta {
    /// The wire payload.
    pub bytes: Vec<u8>,
    /// Sender-side ids of the new objects shipped in full, in emission
    /// order (the receiver materializes them in the same order).
    pub new_objects: Vec<ObjId>,
    /// The freed positions actually encoded (sorted, deduplicated).
    pub freed_positions: Vec<u32>,
    /// Size accounting.
    pub stats: RequestDeltaStats,
}

/// Encodes a request delta against `sync`, the sender's synchronized
/// object list. `freed` and `dirty` are positions into `sync` (the
/// caller computes them, e.g. from heap version stamps); `roots` are the
/// call's argument values, re-rooted freely. References to objects
/// outside the live sync list are shipped in full, depth-first, exactly
/// as reply deltas ship server-allocated objects.
///
/// # Errors
/// Fails on out-of-range positions, dangling references, or
/// non-serializable new objects.
pub fn encode_request_delta(
    heap: &Heap,
    sync: &[ObjId],
    freed: &[u32],
    dirty: &[u32],
    roots: &[Value],
) -> Result<EncodedRequestDelta> {
    let (delta, _, _) = encode_request_delta_pooled(
        heap,
        sync,
        freed,
        dirty,
        roots,
        DensePositionMap::new(),
        DensePositionMap::new(),
        Vec::new(),
    )?;
    Ok(delta)
}

/// The pooled workhorse behind [`encode_request_delta`]: identical
/// output, but the position-map scratch and payload buffer are supplied
/// by the caller and the maps are handed back for reuse.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_request_delta_pooled(
    heap: &Heap,
    sync: &[ObjId],
    freed: &[u32],
    dirty: &[u32],
    roots: &[Value],
    mut old_pos: DensePositionMap,
    new_pos: DensePositionMap,
    buf: Vec<u8>,
) -> Result<(EncodedRequestDelta, DensePositionMap, DensePositionMap)> {
    let len = sync.len() as u32;
    let mut freed_positions: Vec<u32> = freed.to_vec();
    freed_positions.sort_unstable();
    freed_positions.dedup();
    for &pos in freed_positions.iter().chain(dirty) {
        if pos >= len {
            return Err(WireError::BadOldIndex { index: pos, len });
        }
    }
    let is_freed = |pos: u32| freed_positions.binary_search(&pos).is_ok();

    // Freed entries are not referenceable: leave them out of the
    // position map so a stray reference to one surfaces as an error
    // (the object is gone from the sender's heap) instead of shipping a
    // position the receiver is about to free.
    old_pos.clear();
    for (i, &id) in sync.iter().enumerate() {
        if !is_freed(i as u32) {
            old_pos.insert(id, i as u32);
        }
    }

    let mut enc = DeltaEncoder::with_scratch(heap, old_pos, new_pos, buf);
    enc.writer.put_slice(&REQUEST_DELTA_MAGIC);
    enc.writer.put_u8(crate::FORMAT_VERSION);
    enc.writer.put_varint(u64::from(len));
    enc.writer.put_varint(freed_positions.len() as u64);
    for &pos in &freed_positions {
        enc.writer.put_varint(u64::from(pos));
    }
    enc.writer.put_varint(dirty.len() as u64);
    for &pos in dirty {
        if is_freed(pos) {
            return Err(WireError::BadOldIndex { index: pos, len });
        }
        let slots = heap.get(sync[pos as usize])?.body().slots();
        enc.writer.put_varint(u64::from(pos));
        enc.writer.put_varint(slots.len() as u64);
        for v in slots {
            enc.encode_value(v)?;
        }
    }
    enc.writer.put_varint(roots.len() as u64);
    for root in roots {
        enc.encode_value(root)?;
    }

    let DeltaEncoder {
        writer,
        old_pos,
        new_pos,
        new_ids: new_objects,
        ..
    } = enc;
    let bytes = writer.into_bytes();
    let stats = RequestDeltaStats {
        sync_count: sync.len(),
        freed_count: freed_positions.len(),
        dirty_count: dirty.len(),
        new_count: new_objects.len(),
        bytes: bytes.len(),
    };
    Ok((
        EncodedRequestDelta {
            bytes,
            new_objects,
            freed_positions,
            stats,
        },
        old_pos,
        new_pos,
    ))
}

/// The result of applying a request delta on the receiver.
#[derive(Clone, Debug, Default)]
pub struct AppliedRequestDelta {
    /// Decoded call roots (the arguments).
    pub roots: Vec<Value>,
    /// Objects newly materialized in the receiver's heap, decode order.
    pub new_objects: Vec<ObjId>,
    /// Positions the sender freed (their receiver-side objects have been
    /// freed too).
    pub freed_positions: Vec<u32>,
    /// Synchronized objects patched in place.
    pub changed_count: usize,
}

/// Applies a request delta: patches dirty synchronized objects in place,
/// materializes new objects, decodes the roots, and frees the receiver's
/// copies of objects the sender freed.
///
/// # Errors
/// Fails on malformed payloads, or if `sync` does not match the sync
/// count recorded in the delta (the sessions are out of step — the
/// caller should treat this as a cache miss and fall back to a cold
/// call).
pub fn apply_request_delta(
    bytes: &[u8],
    heap: &mut Heap,
    sync: &[ObjId],
) -> Result<AppliedRequestDelta> {
    let mut reader = ByteReader::new(bytes);
    let magic = reader.get_slice(4)?;
    if magic != REQUEST_DELTA_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = reader.get_u8()?;
    if version != crate::FORMAT_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let sync_count = reader.get_varint_u32()? as usize;
    if sync_count != sync.len() {
        return Err(WireError::BadOldIndex {
            index: sync_count as u32,
            len: sync.len() as u32,
        });
    }
    let freed_count = reader.get_count()?;
    let mut freed_positions = Vec::with_capacity(freed_count);
    let mut freed_flags = vec![false; sync_count];
    for _ in 0..freed_count {
        let pos = reader.get_varint_u32()? as usize;
        // Out-of-range and duplicate positions are both protocol errors.
        match freed_flags.get_mut(pos) {
            Some(flag @ false) => *flag = true,
            _ => {
                return Err(WireError::BadOldIndex {
                    index: pos as u32,
                    len: sync_count as u32,
                })
            }
        }
        freed_positions.push(pos as u32);
    }
    let dirty_count = reader.get_count()?;

    let mut dec = DeltaDecoder {
        heap,
        reader,
        client_linear: sync,
        new_objects: Vec::new(),
    };
    for _ in 0..dirty_count {
        let pos = dec.reader.get_varint_u32()? as usize;
        if pos >= sync_count || freed_flags[pos] {
            return Err(WireError::BadOldIndex {
                index: pos as u32,
                len: sync_count as u32,
            });
        }
        let target = sync[pos];
        let slot_count = dec.reader.get_count()?;
        let mut slots = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            slots.push(dec.decode_value()?);
        }
        dec.heap.overwrite_slots(target, slots)?;
    }
    let root_count = dec.reader.get_count()?;
    let mut roots = Vec::with_capacity(root_count);
    for _ in 0..root_count {
        roots.push(dec.decode_value()?);
    }
    let new_objects = dec.new_objects;
    if !dec.reader.is_exhausted() {
        return Err(WireError::TrailingBytes {
            offset: dec.reader.position(),
            trailing: dec.reader.remaining(),
        });
    }
    // Free last, after all decoding: freed slots must not be recycled by
    // the new-object allocations above, and a malformed payload errors
    // out before any receiver object is freed.
    for &pos in &freed_positions {
        heap.free(sync[pos as usize])?;
    }
    Ok(AppliedRequestDelta {
        roots,
        new_objects,
        freed_positions,
        changed_count: dirty_count,
    })
}

/// The sync positions a request delta touches, recovered without
/// applying it. Both lists are sorted and unique.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeekedRequestDelta {
    /// Positions the sender freed.
    pub freed_positions: Vec<u32>,
    /// Positions the sender overwrote.
    pub dirty_positions: Vec<u32>,
}

impl PeekedRequestDelta {
    /// True when the delta frees or overwrites the given sync position.
    pub fn touches(&self, pos: u32) -> bool {
        self.freed_positions.binary_search(&pos).is_ok()
            || self.dirty_positions.binary_search(&pos).is_ok()
    }
}

/// Skips `count` encoded values without decoding them into a heap,
/// validating exactly what [`DeltaDecoder::decode_value`] would reject
/// structurally: tags, old-index bounds, and back-reference bounds.
/// `NEWOBJ` payloads are flattened into the skip count (the stream is
/// depth-first, so stream order equals recursion order), which also
/// bounds the walk by the payload length instead of the stack.
fn skip_values(
    reader: &mut ByteReader,
    count: usize,
    sync_len: usize,
    new_seen: &mut u32,
) -> Result<()> {
    let mut remaining = count as u64;
    while remaining > 0 {
        remaining -= 1;
        let offset = reader.position();
        let tag = reader.get_u8()?;
        match tag {
            TAG_NULL | TAG_FALSE | TAG_TRUE => {}
            TAG_INT | TAG_LONG => {
                reader.get_zigzag()?;
            }
            TAG_DOUBLE => {
                reader.get_f64()?;
            }
            TAG_STR => {
                let len = reader.get_count()?;
                reader.get_slice(len)?;
            }
            DTAG_OLDREF => {
                let idx = reader.get_varint_u32()?;
                if idx as usize >= sync_len {
                    return Err(WireError::BadOldIndex {
                        index: idx,
                        len: sync_len as u32,
                    });
                }
            }
            DTAG_NEWBACK => {
                let pos = reader.get_varint_u32()?;
                if pos >= *new_seen {
                    return Err(WireError::BadBackRef {
                        position: pos,
                        decoded: *new_seen,
                    });
                }
            }
            DTAG_NEWOBJ => {
                reader.get_varint_u32()?; // class id; validated on apply
                let slot_count = reader.get_count()?;
                *new_seen += 1;
                remaining = remaining.saturating_add(slot_count as u64);
            }
            other => return Err(WireError::UnknownTag { tag: other, offset }),
        }
    }
    Ok(())
}

/// Parses a request delta far enough to learn which sync positions it
/// frees or overwrites, without touching any heap.
///
/// This is the server half of the coherence **merge rule**: when a warm
/// entry is dirty (out-of-band writes) *and* a request is in flight, the
/// repair patch must exclude every position the request itself rewrites
/// — the client's write wins at object granularity, because its slots
/// are already on the wire and will overwrite the server's copy when the
/// delta applies. Patching those positions back would silently undo the
/// client's mutation.
///
/// Validation mirrors [`apply_request_delta`] structurally (magic,
/// version, sync count, position bounds and duplicates, value tags,
/// trailing bytes), so any payload this rejects would also fail to
/// apply; the caller can fall through and let the apply path surface the
/// authoritative error. Values are skipped, never decoded — no
/// allocation proportional to the graph, no heap access.
pub fn peek_request_delta(bytes: &[u8], sync_len: usize) -> Result<PeekedRequestDelta> {
    let mut reader = ByteReader::new(bytes);
    if reader.get_slice(4)? != REQUEST_DELTA_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = reader.get_u8()?;
    if version != crate::FORMAT_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let sync_count = reader.get_varint_u32()? as usize;
    if sync_count != sync_len {
        return Err(WireError::BadOldIndex {
            index: sync_count as u32,
            len: sync_len as u32,
        });
    }
    let freed_count = reader.get_count()?;
    let mut freed_flags = vec![false; sync_count];
    let mut freed_positions = Vec::with_capacity(freed_count);
    for _ in 0..freed_count {
        let pos = reader.get_varint_u32()? as usize;
        match freed_flags.get_mut(pos) {
            Some(flag @ false) => *flag = true,
            _ => {
                return Err(WireError::BadOldIndex {
                    index: pos as u32,
                    len: sync_count as u32,
                })
            }
        }
        freed_positions.push(pos as u32);
    }
    let dirty_count = reader.get_count()?;
    let mut dirty_positions = Vec::with_capacity(dirty_count);
    let mut new_seen = 0u32;
    for _ in 0..dirty_count {
        let pos = reader.get_varint_u32()? as usize;
        if pos >= sync_count || freed_flags[pos] {
            return Err(WireError::BadOldIndex {
                index: pos as u32,
                len: sync_count as u32,
            });
        }
        dirty_positions.push(pos as u32);
        let slot_count = reader.get_count()?;
        skip_values(&mut reader, slot_count, sync_len, &mut new_seen)?;
    }
    let root_count = reader.get_count()?;
    skip_values(&mut reader, root_count, sync_len, &mut new_seen)?;
    if !reader.is_exhausted() {
        return Err(WireError::TrailingBytes {
            offset: reader.position(),
            trailing: reader.remaining(),
        });
    }
    freed_positions.sort_unstable();
    dirty_positions.sort_unstable();
    dirty_positions.dedup();
    Ok(PeekedRequestDelta {
        freed_positions,
        dirty_positions,
    })
}

/// Advances a sync list across one delta exchange: drops the freed
/// positions and appends the delta's new objects. Each side calls this
/// with its *own* object ids (the sender's [`EncodedRequestDelta`] /
/// [`EncodedDelta`](crate::delta::EncodedDelta) ids, the receiver's
/// [`AppliedRequestDelta`] /
/// [`AppliedDelta`](crate::delta::AppliedDelta) ids); because emission
/// and decode order coincide, the two lists stay position-aligned.
///
/// `freed_positions` must be in ascending order, as both
/// [`EncodedRequestDelta::freed_positions`] and
/// [`AppliedRequestDelta::freed_positions`] are — the drop is a single
/// merge walk, with no per-call set construction.
pub fn next_sync(sync: &[ObjId], freed_positions: &[u32], new_objects: &[ObjId]) -> Vec<ObjId> {
    debug_assert!(
        freed_positions.windows(2).all(|w| w[0] < w[1]),
        "freed positions must be sorted and unique"
    );
    let mut out =
        Vec::with_capacity(sync.len().saturating_sub(freed_positions.len()) + new_objects.len());
    let mut freed = freed_positions.iter().peekable();
    for (i, &id) in sync.iter().enumerate() {
        if freed.next_if(|&&pos| pos as usize == i).is_some() {
            continue;
        }
        out.push(id);
    }
    out.extend_from_slice(new_objects);
    out
}

/// Magic prefix for invalidation-patch payloads (server-to-client: the
/// coherence protocol's targeted reseed of a stale warm cache).
pub const INVALIDATION_MAGIC: [u8; 4] = *b"NRMV";

/// Size accounting for an invalidation patch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InvalidationStats {
    /// Synchronized objects the patch is relative to.
    pub sync_count: usize,
    /// Synchronized objects whose slots were re-shipped.
    pub dirty_count: usize,
    /// New objects shipped in full (reached from dirty slots but not in
    /// the sync list — e.g. spliced in by another client's call).
    pub new_count: usize,
    /// Total payload bytes.
    pub bytes: usize,
}

/// An encoded invalidation patch plus the bookkeeping the sender needs
/// to advance its sync list.
#[derive(Clone, Debug)]
pub struct EncodedInvalidation {
    /// The wire payload.
    pub bytes: Vec<u8>,
    /// Sender-side ids of the new objects shipped in full, in emission
    /// order (the receiver materializes them in the same order, so both
    /// sync lists extend identically).
    pub new_objects: Vec<ObjId>,
    /// Size accounting.
    pub stats: InvalidationStats,
}

/// Encodes an invalidation patch against `sync`: the dirty positions'
/// current slots, with references to objects outside the sync list
/// shipped in full, depth-first. This is a request delta with no freed
/// section and no roots — the receiver's graph shape is repaired, not
/// re-rooted — and it travels server-to-client inside
/// `Frame::CacheStale`.
///
/// # Errors
/// Fails on out-of-range positions, dangling references (a sync object
/// freed out from under the cache — the caller must fall back to a full
/// `CacheMiss`), or non-serializable new objects.
pub fn encode_invalidation(
    heap: &Heap,
    sync: &[ObjId],
    dirty: &[u32],
) -> Result<EncodedInvalidation> {
    let len = sync.len() as u32;
    let mut dirty_positions: Vec<u32> = dirty.to_vec();
    dirty_positions.sort_unstable();
    dirty_positions.dedup();
    for &pos in &dirty_positions {
        if pos >= len {
            return Err(WireError::BadOldIndex { index: pos, len });
        }
    }

    let mut old_pos = DensePositionMap::new();
    for (i, &id) in sync.iter().enumerate() {
        old_pos.insert(id, i as u32);
    }

    let mut enc = DeltaEncoder::with_scratch(heap, old_pos, DensePositionMap::new(), Vec::new());
    enc.writer.put_slice(&INVALIDATION_MAGIC);
    enc.writer.put_u8(crate::FORMAT_VERSION);
    enc.writer.put_varint(u64::from(len));
    enc.writer.put_varint(dirty_positions.len() as u64);
    for &pos in &dirty_positions {
        let slots = heap.get(sync[pos as usize])?.body().slots();
        enc.writer.put_varint(u64::from(pos));
        enc.writer.put_varint(slots.len() as u64);
        for v in slots {
            enc.encode_value(v)?;
        }
    }

    let DeltaEncoder {
        writer,
        new_ids: new_objects,
        ..
    } = enc;
    let bytes = writer.into_bytes();
    let stats = InvalidationStats {
        sync_count: sync.len(),
        dirty_count: dirty_positions.len(),
        new_count: new_objects.len(),
        bytes: bytes.len(),
    };
    Ok(EncodedInvalidation {
        bytes,
        new_objects,
        stats,
    })
}

/// The result of applying an invalidation patch on the receiver.
#[derive(Clone, Debug, Default)]
pub struct AppliedInvalidation {
    /// Objects newly materialized in the receiver's heap, decode order
    /// (append to the sync list, exactly like a delta's new objects).
    pub new_objects: Vec<ObjId>,
    /// Positions patched in place, ascending.
    pub dirty_positions: Vec<u32>,
}

/// Applies an invalidation patch: overwrites the dirty positions' slots
/// and materializes any new objects they reference. No objects are
/// freed — a peer's call can splice objects *into* the shared graph,
/// but unlinking only makes them unreachable, and unreachable cached
/// objects are harmless until the entry is evicted.
///
/// # Errors
/// Fails on malformed payloads, or if `sync` does not match the sync
/// count recorded in the patch (sessions out of step — the caller
/// should evict and fall back cold).
pub fn apply_invalidation(
    bytes: &[u8],
    heap: &mut Heap,
    sync: &[ObjId],
) -> Result<AppliedInvalidation> {
    apply_invalidation_filtered(bytes, heap, sync, &mut |_| true)
}

/// [`apply_invalidation`] with a per-position merge predicate: a
/// position is overwritten only when `overwrite(pos)` returns true.
///
/// This is the client half of the coherence merge rule, for *pushed*
/// patches: a patch that arrives over an idle connection may race local
/// writes the client has not shipped yet. Positions the client has
/// dirtied locally must keep the client's slots — they stay dirty, ship
/// with the next request delta, and win on the server — so the caller
/// skips them here instead of letting the patch clobber them.
///
/// Skipped positions still have their wire values decoded (the stream
/// must be consumed, and any new objects they reference are still
/// materialized to keep the two sync lists position-aligned); only the
/// final overwrite is withheld. `dirty_positions` in the result lists
/// the positions actually overwritten.
pub fn apply_invalidation_filtered(
    bytes: &[u8],
    heap: &mut Heap,
    sync: &[ObjId],
    overwrite: &mut dyn FnMut(u32) -> bool,
) -> Result<AppliedInvalidation> {
    let mut reader = ByteReader::new(bytes);
    let magic = reader.get_slice(4)?;
    if magic != INVALIDATION_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = reader.get_u8()?;
    if version != crate::FORMAT_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let sync_count = reader.get_varint_u32()? as usize;
    if sync_count != sync.len() {
        return Err(WireError::BadOldIndex {
            index: sync_count as u32,
            len: sync.len() as u32,
        });
    }
    let dirty_count = reader.get_count()?;

    let mut dec = DeltaDecoder {
        heap,
        reader,
        client_linear: sync,
        new_objects: Vec::new(),
    };
    let mut dirty_positions = Vec::with_capacity(dirty_count);
    let mut last_pos: Option<u32> = None;
    for _ in 0..dirty_count {
        let pos = dec.reader.get_varint_u32()?;
        // Positions are ascending on the honest path; duplicates and
        // disorder are protocol errors, same as duplicate freed slots.
        if pos as usize >= sync_count || last_pos.is_some_and(|p| p >= pos) {
            return Err(WireError::BadOldIndex {
                index: pos,
                len: sync_count as u32,
            });
        }
        last_pos = Some(pos);
        let target = sync[pos as usize];
        let slot_count = dec.reader.get_count()?;
        let mut slots = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            slots.push(dec.decode_value()?);
        }
        if overwrite(pos) {
            dec.heap.overwrite_slots(target, slots)?;
            dirty_positions.push(pos);
        }
    }
    let new_objects = dec.new_objects;
    if !dec.reader.is_exhausted() {
        return Err(WireError::TrailingBytes {
            offset: dec.reader.position(),
            trailing: dec.reader.remaining(),
        });
    }
    Ok(AppliedInvalidation {
        new_objects,
        dirty_positions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::ByteWriter;
    use crate::{deserialize_graph, serialize_graph};
    use nrmi_heap::tree::{self, TreeClasses};
    use nrmi_heap::{ClassRegistry, HeapAccess, LinearMap};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    /// Seeds a client/server pair over one tree and returns the paired
    /// sync lists (identical traversal order, distinct id spaces).
    fn seeded_pair(size: usize, seed: u64) -> (Heap, Heap, Vec<ObjId>, Vec<ObjId>, TreeClasses) {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, size, seed).unwrap();
        let enc = serialize_graph(&client, &[Value::Ref(root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut server).unwrap();
        let client_sync = LinearMap::build(&client, &[root]).unwrap().order().to_vec();
        (client, server, client_sync, dec.linear, classes)
    }

    #[test]
    fn trailing_bytes_error_before_any_free() {
        let (client, mut server, c_sync, s_sync, _) = seeded_pair(8, 6);
        let enc =
            encode_request_delta(&client, &c_sync, &[1], &[], &[Value::Ref(c_sync[0])]).unwrap();
        let mut bytes = enc.bytes;
        bytes.push(0x00);
        match apply_request_delta(&bytes, &mut server, &s_sync) {
            Err(WireError::TrailingBytes { trailing, .. }) => assert_eq!(trailing, 1),
            other => panic!("expected TrailingBytes, got {other:?}"),
        }
        // Exhaustion is checked before the free loop runs, so the
        // malformed frame must not have freed the to-be-dropped slot.
        assert!(server.get_field(s_sync[1], "data").is_ok());
    }

    #[test]
    fn peek_reports_touched_positions_without_a_heap() {
        let (mut client, _server, c_sync, _s_sync, classes) = seeded_pair(8, 11);
        // Splice a fresh node under the root (dirty + new object), and
        // free position 2's subtree standing (just the position here —
        // peek never dereferences, so a simple mark suffices).
        let fresh = client
            .alloc(classes.tree, vec![Value::Int(55), Value::Null, Value::Null])
            .unwrap();
        client
            .set_field(c_sync[0], "left", Value::Ref(fresh))
            .unwrap();
        let enc =
            encode_request_delta(&client, &c_sync, &[2], &[0], &[Value::Ref(c_sync[0])]).unwrap();
        let peeked = peek_request_delta(&enc.bytes, c_sync.len()).unwrap();
        assert_eq!(peeked.freed_positions, vec![2]);
        assert_eq!(peeked.dirty_positions, vec![0]);
        assert!(peeked.touches(0) && peeked.touches(2));
        assert!(!peeked.touches(1));
    }

    #[test]
    fn peek_of_clean_delta_touches_nothing() {
        let (client, _server, c_sync, _s_sync, _) = seeded_pair(16, 12);
        let enc =
            encode_request_delta(&client, &c_sync, &[], &[], &[Value::Ref(c_sync[0])]).unwrap();
        let peeked = peek_request_delta(&enc.bytes, c_sync.len()).unwrap();
        assert!(peeked.freed_positions.is_empty());
        assert!(peeked.dirty_positions.is_empty());
    }

    #[test]
    fn peek_rejects_malformed_payloads() {
        let (client, _server, c_sync, _s_sync, _) = seeded_pair(8, 13);
        let enc =
            encode_request_delta(&client, &c_sync, &[1], &[], &[Value::Ref(c_sync[0])]).unwrap();
        // Garbage magic.
        assert!(peek_request_delta(&[0xFF, 0x00, 0x01], c_sync.len()).is_err());
        // Sync-list mismatch.
        assert!(matches!(
            peek_request_delta(&enc.bytes, c_sync.len() + 1),
            Err(WireError::BadOldIndex { .. })
        ));
        // Truncation anywhere must error, never panic.
        for cut in 0..enc.bytes.len() {
            assert!(
                peek_request_delta(&enc.bytes[..cut], c_sync.len()).is_err(),
                "truncated at {cut} must not parse"
            );
        }
        // Trailing garbage.
        let mut bytes = enc.bytes.clone();
        bytes.push(0x00);
        assert!(matches!(
            peek_request_delta(&bytes, c_sync.len()),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn filtered_invalidation_apply_skips_vetoed_positions() {
        let (mut server, mut client, s_sync, c_sync, _) = seeded_pair(8, 14);
        // "Server" side dirties two synchronized objects out-of-band.
        server.set_field(s_sync[0], "data", Value::Int(41)).unwrap();
        server.set_field(s_sync[3], "data", Value::Int(43)).unwrap();
        let patch = encode_invalidation(&server, &s_sync, &[0, 3]).unwrap();
        // The client has its own unshipped write at position 0: the
        // merge predicate vetoes the overwrite there.
        client.set_field(c_sync[0], "data", Value::Int(7)).unwrap();
        let applied =
            apply_invalidation_filtered(&patch.bytes, &mut client, &c_sync, &mut |pos| pos != 0)
                .unwrap();
        assert_eq!(applied.dirty_positions, vec![3]);
        assert_eq!(client.get_field(c_sync[0], "data").unwrap(), Value::Int(7));
        assert_eq!(client.get_field(c_sync[3], "data").unwrap(), Value::Int(43));
    }

    #[test]
    fn clean_graph_ships_roots_only() {
        let (client, mut server, c_sync, s_sync, _) = seeded_pair(128, 1);
        let enc =
            encode_request_delta(&client, &c_sync, &[], &[], &[Value::Ref(c_sync[0])]).unwrap();
        assert_eq!(enc.stats.dirty_count, 0);
        assert_eq!(enc.stats.new_count, 0);
        assert!(
            enc.stats.bytes < 32,
            "clean request delta must be tiny: {}",
            enc.stats.bytes
        );
        let applied = apply_request_delta(&enc.bytes, &mut server, &s_sync).unwrap();
        assert_eq!(applied.roots, vec![Value::Ref(s_sync[0])]);
        assert_eq!(applied.changed_count, 0);
    }

    #[test]
    fn dirty_slots_patch_in_place() {
        let (mut client, mut server, c_sync, s_sync, _) = seeded_pair(16, 2);
        client
            .set_field(c_sync[3], "data", Value::Int(777))
            .unwrap();
        let enc =
            encode_request_delta(&client, &c_sync, &[], &[3], &[Value::Ref(c_sync[0])]).unwrap();
        apply_request_delta(&enc.bytes, &mut server, &s_sync).unwrap();
        assert_eq!(
            server.get_field(s_sync[3], "data").unwrap(),
            Value::Int(777)
        );
    }

    #[test]
    fn new_objects_materialize_and_sync_lists_stay_aligned() {
        let (mut client, mut server, c_sync, s_sync, classes) = seeded_pair(8, 3);
        // Client splices a fresh two-node chain under the root.
        let leaf = client
            .alloc(classes.tree, vec![Value::Int(91), Value::Null, Value::Null])
            .unwrap();
        let mid = client
            .alloc(
                classes.tree,
                vec![Value::Int(90), Value::Ref(leaf), Value::Null],
            )
            .unwrap();
        client
            .set_field(c_sync[0], "left", Value::Ref(mid))
            .unwrap();
        let enc =
            encode_request_delta(&client, &c_sync, &[], &[0], &[Value::Ref(c_sync[0])]).unwrap();
        assert_eq!(enc.stats.new_count, 2);
        let applied = apply_request_delta(&enc.bytes, &mut server, &s_sync).unwrap();
        assert_eq!(applied.new_objects.len(), 2);
        let c_next = next_sync(&c_sync, &enc.freed_positions, &enc.new_objects);
        let s_next = next_sync(&s_sync, &applied.freed_positions, &applied.new_objects);
        assert_eq!(c_next.len(), s_next.len());
        // Position-for-position the data matches.
        for (&c_id, &s_id) in c_next.iter().zip(&s_next) {
            assert_eq!(
                client.get_field(c_id, "data").unwrap(),
                server.get_field(s_id, "data").unwrap()
            );
        }
    }

    #[test]
    fn freed_positions_free_the_receivers_copies() {
        let (mut client, mut server, c_sync, s_sync, _) = seeded_pair(8, 4);
        // Detach and free the root's right subtree head (position known
        // from preorder: find it via the heap rather than hardcoding).
        let victim = client.get_ref(c_sync[0], "right").unwrap().unwrap();
        let victim_pos = c_sync.iter().position(|&id| id == victim).unwrap() as u32;
        // The whole subtree below it must go too or refs would dangle;
        // keep the test simple by detaching only a leaf-shaped victim.
        let reachable = nrmi_heap::traverse::reachable_set(&client, &[victim]).unwrap();
        let freed: Vec<u32> = c_sync
            .iter()
            .enumerate()
            .filter(|(_, id)| reachable.contains(**id))
            .map(|(i, _)| i as u32)
            .collect();
        client.set_field(c_sync[0], "right", Value::Null).unwrap();
        for &pos in &freed {
            client.free(c_sync[pos as usize]).unwrap();
        }
        let enc =
            encode_request_delta(&client, &c_sync, &freed, &[0], &[Value::Ref(c_sync[0])]).unwrap();
        let applied = apply_request_delta(&enc.bytes, &mut server, &s_sync).unwrap();
        assert_eq!(applied.freed_positions.len(), freed.len());
        for &pos in &freed {
            assert!(!server.contains(s_sync[pos as usize]), "server copy freed");
        }
        let _ = victim_pos;
        assert!(server.contains(s_sync[0]));
    }

    #[test]
    fn sync_count_mismatch_rejected() {
        let (client, mut server, c_sync, s_sync, _) = seeded_pair(8, 5);
        let enc =
            encode_request_delta(&client, &c_sync, &[], &[], &[Value::Ref(c_sync[0])]).unwrap();
        let err = apply_request_delta(&enc.bytes, &mut server, &s_sync[..4]).unwrap_err();
        assert!(matches!(err, WireError::BadOldIndex { .. }));
    }

    #[test]
    fn hostile_payloads_error_cleanly() {
        let (_, mut server, _, s_sync, _) = seeded_pair(4, 6);
        // Bad magic.
        assert!(matches!(
            apply_request_delta(b"XXXX\x01\x00", &mut server, &s_sync),
            Err(WireError::BadMagic)
        ));
        // Every truncation of a real payload errors, never panics, and
        // never mutates the receiver before the error.
        let (client, mut server2, c_sync, s_sync2, _) = seeded_pair(4, 6);
        let enc =
            encode_request_delta(&client, &c_sync, &[], &[1], &[Value::Ref(c_sync[0])]).unwrap();
        for cut in 0..enc.bytes.len() {
            assert!(
                apply_request_delta(&enc.bytes[..cut], &mut server2, &s_sync2).is_err(),
                "cut at {cut}"
            );
        }
        // Duplicate freed position.
        let mut w = ByteWriter::new();
        w.put_slice(&REQUEST_DELTA_MAGIC);
        w.put_u8(crate::FORMAT_VERSION);
        w.put_varint(s_sync.len() as u64);
        w.put_varint(2); // freed_count
        w.put_varint(1);
        w.put_varint(1); // duplicate
        assert!(matches!(
            apply_request_delta(&w.into_bytes(), &mut server, &s_sync),
            Err(WireError::BadOldIndex { .. })
        ));
        // Freed position out of range.
        let mut oob = ByteWriter::new();
        oob.put_slice(&REQUEST_DELTA_MAGIC);
        oob.put_u8(crate::FORMAT_VERSION);
        oob.put_varint(s_sync.len() as u64);
        oob.put_varint(1);
        oob.put_varint(99);
        assert!(matches!(
            apply_request_delta(&oob.into_bytes(), &mut server, &s_sync),
            Err(WireError::BadOldIndex { .. })
        ));
    }

    #[test]
    fn dirty_entry_for_freed_position_rejected_both_ways() {
        let (client, mut server, c_sync, s_sync, _) = seeded_pair(4, 7);
        // Encoder refuses outright.
        assert!(matches!(
            encode_request_delta(&client, &c_sync, &[2], &[2], &[]),
            Err(WireError::BadOldIndex { .. })
        ));
        // Hand-built payload with a dirty entry naming a freed position.
        let mut w = ByteWriter::new();
        w.put_slice(&REQUEST_DELTA_MAGIC);
        w.put_u8(crate::FORMAT_VERSION);
        w.put_varint(s_sync.len() as u64);
        w.put_varint(1);
        w.put_varint(2); // freed: position 2
        w.put_varint(1); // dirty_count
        w.put_varint(2); // dirty position 2 — contradicts freed
        assert!(matches!(
            apply_request_delta(&w.into_bytes(), &mut server, &s_sync),
            Err(WireError::BadOldIndex { .. })
        ));
    }

    #[test]
    fn invalidation_patches_dirty_slots_in_place() {
        // Server-to-client direction: the server's copy mutated under a
        // peer's call; the patch repairs the client's cache.
        let (mut client, mut server, c_sync, s_sync, _) = seeded_pair(16, 11);
        server
            .set_field(s_sync[5], "data", Value::Int(4242))
            .unwrap();
        let enc = encode_invalidation(&server, &s_sync, &[5]).unwrap();
        assert_eq!(enc.stats.dirty_count, 1);
        assert_eq!(enc.stats.new_count, 0);
        let applied = apply_invalidation(&enc.bytes, &mut client, &c_sync).unwrap();
        assert_eq!(applied.dirty_positions, vec![5]);
        assert_eq!(
            client.get_field(c_sync[5], "data").unwrap(),
            Value::Int(4242)
        );
        let _ = &mut server;
    }

    #[test]
    fn invalidation_ships_spliced_objects_and_lists_stay_aligned() {
        let (mut client, mut server, c_sync, s_sync, classes) = seeded_pair(8, 12);
        // A peer's call spliced a fresh chain under the server's root.
        let leaf = server
            .alloc(classes.tree, vec![Value::Int(61), Value::Null, Value::Null])
            .unwrap();
        let mid = server
            .alloc(
                classes.tree,
                vec![Value::Int(60), Value::Ref(leaf), Value::Null],
            )
            .unwrap();
        server
            .set_field(s_sync[0], "left", Value::Ref(mid))
            .unwrap();
        let enc = encode_invalidation(&server, &s_sync, &[0]).unwrap();
        assert_eq!(enc.stats.new_count, 2);
        let applied = apply_invalidation(&enc.bytes, &mut client, &c_sync).unwrap();
        assert_eq!(applied.new_objects.len(), 2);
        let s_next = next_sync(&s_sync, &[], &enc.new_objects);
        let c_next = next_sync(&c_sync, &[], &applied.new_objects);
        assert_eq!(s_next.len(), c_next.len());
        for (&s_id, &c_id) in s_next.iter().zip(&c_next) {
            assert_eq!(
                server.get_field(s_id, "data").unwrap(),
                client.get_field(c_id, "data").unwrap()
            );
        }
    }

    #[test]
    fn empty_invalidation_is_tiny_and_clean() {
        let (mut client, server, c_sync, s_sync, _) = seeded_pair(64, 13);
        let enc = encode_invalidation(&server, &s_sync, &[]).unwrap();
        assert!(
            enc.stats.bytes < 16,
            "empty patch must be tiny: {}",
            enc.stats.bytes
        );
        let applied = apply_invalidation(&enc.bytes, &mut client, &c_sync).unwrap();
        assert!(applied.dirty_positions.is_empty());
        assert!(applied.new_objects.is_empty());
    }

    #[test]
    fn invalidation_rejects_dangling_sync_object() {
        // A peer freed part of the shared graph: the encoder must error
        // (the serve loop then falls back to a full CacheMiss), never
        // ship garbage.
        let (_, mut server, _, s_sync, _) = seeded_pair(8, 14);
        let victim = *s_sync.last().unwrap();
        let reachable = nrmi_heap::traverse::reachable_set(&server, &[victim]).unwrap();
        for &id in s_sync.iter().rev() {
            if reachable.contains(id) {
                // Detach first so the free is legal on a sanitized heap.
                for (i, parent) in s_sync.iter().enumerate() {
                    if !server.contains(*parent) {
                        continue;
                    }
                    let _ = i;
                    for field in ["left", "right"] {
                        if server.get_ref(*parent, field) == Ok(Some(id)) {
                            server.set_field(*parent, field, Value::Null).unwrap();
                        }
                    }
                }
                server.free(id).unwrap();
            }
        }
        let dirty: Vec<u32> = (0..s_sync.len() as u32).collect();
        assert!(encode_invalidation(&server, &s_sync, &dirty).is_err());
    }

    #[test]
    fn invalidation_hostile_payloads_error_cleanly() {
        let (mut client, mut server, c_sync, s_sync, _) = seeded_pair(4, 15);
        // Bad magic.
        assert!(matches!(
            apply_invalidation(b"XXXX\x01\x00", &mut client, &c_sync),
            Err(WireError::BadMagic)
        ));
        // Sync-count mismatch.
        server
            .set_field(s_sync[1], "data", Value::Int(9))
            .unwrap();
        let enc = encode_invalidation(&server, &s_sync, &[1]).unwrap();
        assert!(matches!(
            apply_invalidation(&enc.bytes, &mut client, &c_sync[..2]),
            Err(WireError::BadOldIndex { .. })
        ));
        // Every truncation errors, never panics.
        for cut in 0..enc.bytes.len() {
            assert!(
                apply_invalidation(&enc.bytes[..cut], &mut client, &c_sync).is_err(),
                "cut at {cut}"
            );
        }
        // Trailing garbage after a valid patch.
        let mut padded = enc.bytes.clone();
        padded.push(0x00);
        assert!(matches!(
            apply_invalidation(&padded, &mut client, &c_sync),
            Err(WireError::TrailingBytes { .. })
        ));
        // Duplicate dirty position (disorder is a protocol error). The
        // first entry is well-formed (three null slots match the Node
        // arity), so the duplicate check is what fires.
        let mut w = ByteWriter::new();
        w.put_slice(&INVALIDATION_MAGIC);
        w.put_u8(crate::FORMAT_VERSION);
        w.put_varint(c_sync.len() as u64);
        w.put_varint(2); // dirty_count
        w.put_varint(1);
        w.put_varint(3); // slot_count
        for _ in 0..3 {
            w.put_u8(TAG_NULL);
        }
        w.put_varint(1); // duplicate position
        w.put_varint(0);
        assert!(matches!(
            apply_invalidation(&w.into_bytes(), &mut client, &c_sync),
            Err(WireError::BadOldIndex { .. })
        ));
        // Out-of-range dirty position.
        let mut oob = ByteWriter::new();
        oob.put_slice(&INVALIDATION_MAGIC);
        oob.put_u8(crate::FORMAT_VERSION);
        oob.put_varint(c_sync.len() as u64);
        oob.put_varint(1);
        oob.put_varint(99);
        assert!(matches!(
            apply_invalidation(&oob.into_bytes(), &mut client, &c_sync),
            Err(WireError::BadOldIndex { .. })
        ));
    }

    #[test]
    fn next_sync_drops_and_appends() {
        let ids: Vec<ObjId> = (0..5).map(ObjId::from_index).collect();
        let fresh = [ObjId::from_index(9)];
        let out = next_sync(&ids, &[1, 3], &fresh);
        assert_eq!(
            out,
            vec![
                ObjId::from_index(0),
                ObjId::from_index(2),
                ObjId::from_index(4),
                ObjId::from_index(9)
            ]
        );
    }
}
