//! Low-level byte IO: LEB128 varints, zigzag integers, strings.

use bytes::{BufMut, BytesMut};

use crate::{Result, WireError};

/// Append-only byte sink used by the serializer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: BytesMut,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Creates a writer that reuses `buf`'s allocation (the buffer is
    /// cleared first). Pooled encoders pass recycled payload buffers
    /// here so steady-state encoding does not allocate.
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        ByteWriter { buf: buf.into() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the payload. This is a move of the
    /// backing storage, not a copy.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.into()
    }

    /// Writes one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Writes raw bytes.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Writes an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Writes a signed integer with zigzag + varint encoding.
    pub fn put_zigzag(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes an `f64` as fixed 8 bytes, little-endian IEEE bits.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_varint(v.len() as u64);
        self.buf.put_slice(v.as_bytes());
    }
}

/// Cursor over a received payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps `buf` with the cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if the cursor has consumed the whole payload.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`WireError::UnexpectedEof`] at end of payload.
    pub fn get_u8(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(WireError::UnexpectedEof { offset: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    /// [`WireError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn get_slice(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { offset: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    /// [`WireError::UnexpectedEof`] or [`WireError::VarintOverflow`].
    pub fn get_varint(&mut self) -> Result<u64> {
        let start = self.pos;
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(WireError::VarintOverflow { offset: start });
            }
            result |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Reads a varint that must fit an index/position field (`u32` on
    /// the wire). A wider value is a malformed frame: truncating it with
    /// `as u32` could alias a *valid* index and silently corrupt the
    /// decode, so it is rejected as an overflow instead.
    ///
    /// # Errors
    /// [`WireError::VarintOverflow`] for values above `u32::MAX`; varint
    /// errors as [`ByteReader::get_varint`].
    pub fn get_varint_u32(&mut self) -> Result<u32> {
        let offset = self.pos;
        u32::try_from(self.get_varint()?).map_err(|_| WireError::VarintOverflow { offset })
    }

    /// Reads a count (varint) that prefixes a sequence of items each at
    /// least one byte long. Rejects counts exceeding the remaining
    /// payload, which bounds attacker-controlled pre-allocation.
    ///
    /// # Errors
    /// [`WireError::UnexpectedEof`] if the count exceeds the remaining
    /// bytes; varint errors as [`ByteReader::get_varint`].
    pub fn get_count(&mut self) -> Result<usize> {
        let offset = self.pos;
        let count = self.get_varint()? as usize;
        if count > self.remaining() {
            return Err(WireError::UnexpectedEof { offset });
        }
        Ok(count)
    }

    /// Reads a zigzag-encoded signed integer.
    ///
    /// # Errors
    /// As [`ByteReader::get_varint`].
    pub fn get_zigzag(&mut self) -> Result<i64> {
        let v = self.get_varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads an IEEE `f64`.
    ///
    /// # Errors
    /// [`WireError::UnexpectedEof`].
    pub fn get_f64(&mut self) -> Result<f64> {
        let s = self.get_slice(8)?;
        let mut bits = [0u8; 8];
        bits.copy_from_slice(s);
        Ok(f64::from_bits(u64::from_le_bytes(bits)))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`WireError::UnexpectedEof`] or [`WireError::InvalidUtf8`].
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_varint()? as usize;
        let offset = self.pos;
        let s = self.get_slice(len)?;
        String::from_utf8(s.to_vec()).map_err(|_| WireError::InvalidUtf8 { offset })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_varint().unwrap(), v);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn zigzag_roundtrip() {
        let values = [
            0i64,
            -1,
            1,
            -2,
            i32::MIN as i64,
            i32::MAX as i64,
            i64::MIN,
            i64::MAX,
        ];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_zigzag(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_zigzag().unwrap(), v);
        }
    }

    #[test]
    fn small_varints_are_one_byte() {
        let mut w = ByteWriter::new();
        w.put_varint(5);
        assert_eq!(w.len(), 1);
        let mut w = ByteWriter::new();
        w.put_zigzag(-1);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn f64_and_str_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_f64(3.25);
        w.put_f64(f64::NAN);
        w.put_str("héllo");
        w.put_str("");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_f64().unwrap(), 3.25);
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_str().unwrap(), "");
    }

    #[test]
    fn eof_detection() {
        let mut r = ByteReader::new(&[]);
        assert!(matches!(r.get_u8(), Err(WireError::UnexpectedEof { .. })));
        let mut r = ByteReader::new(&[0x80, 0x80]);
        assert!(matches!(
            r.get_varint(),
            Err(WireError::UnexpectedEof { .. })
        ));
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(matches!(r.get_f64(), Err(WireError::UnexpectedEof { .. })));
    }

    #[test]
    fn varint_overflow_detection() {
        // 11 continuation bytes exceed 64 bits.
        let bytes = [0xffu8; 11];
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_varint(),
            Err(WireError::VarintOverflow { .. })
        ));
    }

    #[test]
    fn varint_u32_narrowing() {
        let mut w = ByteWriter::new();
        w.put_varint(u64::from(u32::MAX));
        w.put_varint(u64::from(u32::MAX) + 1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_varint_u32().unwrap(), u32::MAX);
        // One past u32::MAX is a well-formed varint but not a legal
        // index; it must be rejected, not truncated.
        assert!(matches!(
            r.get_varint_u32(),
            Err(WireError::VarintOverflow { .. })
        ));
    }

    #[test]
    fn invalid_utf8_detection() {
        let mut w = ByteWriter::new();
        w.put_varint(2);
        w.put_slice(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(WireError::InvalidUtf8 { .. })));
    }

    #[test]
    fn position_tracking() {
        let mut w = ByteWriter::new();
        assert!(w.is_empty());
        w.put_u8(1);
        w.put_slice(&[2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.position(), 0);
        r.get_u8().unwrap();
        assert_eq!(r.position(), 1);
        assert_eq!(r.remaining(), 2);
    }
}
