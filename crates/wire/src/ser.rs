//! Graph serialization (marshalling).
//!
//! The serializer performs the *same deterministic preorder traversal* as
//! [`nrmi_heap::LinearMap`]: the first time an object is reached it is
//! emitted inline and assigned the next traversal position; later visits
//! emit a back-reference to that position. Consequently:
//!
//! * sharing and cycles are preserved exactly (one copy per object);
//! * the sequence of inline-emitted objects *is* the linear map, so the
//!   receiving side can rebuild the map during deserialization without it
//!   ever being transmitted (§5.2.4, optimization 1);
//! * when the sender knows an object's position in a previously received
//!   linear map (the server marshalling its reply), that *old index* is
//!   embedded with the object — this is the information the client's
//!   restore step uses to "match up the two linear maps" (step 4).

use std::collections::HashMap;

use nrmi_heap::{DensePositionMap, Heap, ObjId, Value};

use crate::io::ByteWriter;
use crate::{Result, WireError, FORMAT_VERSION, MAGIC};

pub(crate) const TAG_NULL: u8 = 0;
pub(crate) const TAG_FALSE: u8 = 1;
pub(crate) const TAG_TRUE: u8 = 2;
pub(crate) const TAG_INT: u8 = 3;
pub(crate) const TAG_LONG: u8 = 4;
pub(crate) const TAG_DOUBLE: u8 = 5;
pub(crate) const TAG_STR: u8 = 6;
pub(crate) const TAG_OBJ: u8 = 7;
pub(crate) const TAG_BACKREF: u8 = 8;
pub(crate) const TAG_REMOTE: u8 = 9;
pub(crate) const TAG_STRREF: u8 = 13;

/// Marshalling hooks for remote-marked objects.
///
/// Plain serializable graphs never need these. When a graph contains an
/// object whose class carries the `remote` flag (the
/// `UnicastRemoteObject` analogue), RMI semantics replace it with a stub;
/// the middleware layer implements that replacement by providing these
/// hooks (issuing/looking up object keys in its export table).
pub trait RemoteHooks {
    /// Called when a remote-marked object owned by the *sender* is
    /// reached during encoding; returns the export-table key its stub
    /// should carry.
    ///
    /// # Errors
    /// Implementations may refuse to export (e.g. table full).
    fn export(&mut self, heap: &Heap, obj: ObjId) -> Result<u64>;

    /// Called when a remote reference is decoded. `owned_by_sender` is
    /// true when the sender owns the object (the receiver should
    /// materialize or reuse a local stub carrying `key` — allocated in
    /// `heap`, which is the heap being deserialized into), and false when
    /// the reference names an object the *receiver* owns (resolve `key`
    /// in the receiver's export table back to the original object).
    ///
    /// # Errors
    /// Implementations may reject unknown keys.
    fn import(&mut self, heap: &mut Heap, owned_by_sender: bool, key: u64) -> Result<Value>;
}

/// The output of serialization: the payload plus the traversal-order
/// linear map of the objects that were inlined into it.
#[derive(Clone, Debug)]
pub struct EncodedGraph {
    /// The wire payload.
    pub bytes: Vec<u8>,
    /// Objects in traversal (linear-map) order — the sender-side linear
    /// map, obtained "almost for free" from the serialization walk.
    pub linear: Vec<ObjId>,
}

impl EncodedGraph {
    /// Number of objects inlined in the payload.
    pub fn object_count(&self) -> usize {
        self.linear.len()
    }

    /// Payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The payload viewed as a wire segment: the exact bytes the
    /// transport's scatter-gather path hands to `writev` as one iovec
    /// entry (via `Frame::encode_prefix_into`), without copying them
    /// into a contiguous frame body first. The backing `Vec` usually
    /// came from a [`Codec`](crate::Codec) loan and goes back to its
    /// pool once sent.
    pub fn wire_segment(&self) -> &[u8] {
        &self.bytes
    }
}

/// Streaming graph encoder. Most callers use [`serialize_graph`] or
/// [`serialize_graph_with`].
pub struct Serializer<'h, 'm, 'k> {
    heap: &'h Heap,
    writer: ByteWriter,
    positions: DensePositionMap,
    order: Vec<ObjId>,
    old_index: Option<&'m DensePositionMap>,
    hooks: Option<&'k mut (dyn RemoteHooks + 'k)>,
    /// String intern table: repeated strings are emitted once and then
    /// referenced by index, as Java serialization's handle table does.
    /// Keys borrow from the heap (and the root slice), so interning
    /// never copies string data.
    strings: HashMap<&'h str, u32>,
}

impl<'h, 'm, 'k> std::fmt::Debug for Serializer<'h, 'm, 'k> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Serializer")
            .field("objects", &self.order.len())
            .field("bytes", &self.writer.len())
            .finish()
    }
}

impl<'h, 'm, 'k> Serializer<'h, 'm, 'k> {
    /// Creates a serializer over `heap`.
    ///
    /// `old_index` maps objects to their position in a previously
    /// received linear map (server replies use this); `hooks` handle
    /// remote-marked objects.
    pub fn new(
        heap: &'h Heap,
        old_index: Option<&'m DensePositionMap>,
        hooks: Option<&'k mut (dyn RemoteHooks + 'k)>,
    ) -> Self {
        Serializer::with_scratch(heap, old_index, hooks, DensePositionMap::new(), Vec::new())
    }

    /// Creates a serializer over recycled scratch: a position map whose
    /// storage survives clears and a payload buffer whose allocation is
    /// reused. [`Codec`](crate::Codec) threads these through so
    /// steady-state encoding allocates nothing per object.
    pub(crate) fn with_scratch(
        heap: &'h Heap,
        old_index: Option<&'m DensePositionMap>,
        hooks: Option<&'k mut (dyn RemoteHooks + 'k)>,
        mut positions: DensePositionMap,
        buf: Vec<u8>,
    ) -> Self {
        positions.clear();
        let mut writer = ByteWriter::with_buffer(buf);
        writer.put_slice(&MAGIC);
        writer.put_u8(FORMAT_VERSION);
        Serializer {
            heap,
            writer,
            positions,
            order: Vec::new(),
            old_index,
            hooks,
            strings: HashMap::new(),
        }
    }

    /// Encodes the given root values (arguments of a call, or a reply's
    /// object list) and finishes the payload.
    ///
    /// # Errors
    /// Fails on dangling references, non-serializable classes, or
    /// remote-marked objects without hooks.
    pub fn encode_roots(self, roots: &'h [Value]) -> Result<EncodedGraph> {
        Ok(self.encode_roots_reclaim(roots)?.0)
    }

    /// As [`Serializer::encode_roots`], but also hands the position map
    /// back so a pooling caller can reuse its storage.
    pub(crate) fn encode_roots_reclaim(
        mut self,
        roots: &'h [Value],
    ) -> Result<(EncodedGraph, DensePositionMap)> {
        self.writer.put_varint(roots.len() as u64);
        for root in roots {
            self.encode_value(root)?;
        }
        Ok((
            EncodedGraph {
                bytes: self.writer.into_bytes(),
                linear: self.order,
            },
            self.positions,
        ))
    }

    fn encode_value(&mut self, value: &'h Value) -> Result<()> {
        match value {
            Value::Null => self.writer.put_u8(TAG_NULL),
            Value::Bool(false) => self.writer.put_u8(TAG_FALSE),
            Value::Bool(true) => self.writer.put_u8(TAG_TRUE),
            Value::Int(i) => {
                self.writer.put_u8(TAG_INT);
                self.writer.put_zigzag(i64::from(*i));
            }
            Value::Long(i) => {
                self.writer.put_u8(TAG_LONG);
                self.writer.put_zigzag(*i);
            }
            Value::Double(d) => {
                self.writer.put_u8(TAG_DOUBLE);
                self.writer.put_f64(*d);
            }
            Value::Str(s) => match self.strings.get(s.as_str()) {
                Some(&idx) => {
                    self.writer.put_u8(TAG_STRREF);
                    self.writer.put_varint(u64::from(idx));
                }
                None => {
                    self.strings.insert(s.as_str(), self.strings.len() as u32);
                    self.writer.put_u8(TAG_STR);
                    self.writer.put_str(s);
                }
            },
            Value::Ref(id) => self.encode_object(*id)?,
        }
        Ok(())
    }

    fn encode_object(&mut self, id: ObjId) -> Result<()> {
        if let Some(pos) = self.positions.get(id) {
            self.writer.put_u8(TAG_BACKREF);
            self.writer.put_varint(u64::from(pos));
            return Ok(());
        }
        // Copy the shared heap reference out of `self` so borrows of
        // object slots are disjoint from the `&mut self` the recursive
        // encode calls need — this is what lets slots be encoded in
        // place instead of cloned.
        let heap = self.heap;
        let obj = heap.get(id)?;
        let desc = heap.registry_handle().get(obj.class())?;
        let flags = desc.flags();
        if flags.stub {
            // A stub I hold names an object YOU (the receiver) own:
            // forward the peer key with the owned-by-sender flag clear.
            let key = self
                .heap
                .stub_key(id)?
                .expect("stub-flagged object carries a key");
            self.writer.put_u8(TAG_REMOTE);
            self.writer.put_u8(0);
            self.writer.put_varint(key);
            return Ok(());
        }
        if flags.remote {
            // RMI semantics: remote objects travel as stubs, not copies.
            // I own this object; the receiver gets a stub with my key.
            let Some(hooks) = self.hooks.as_deref_mut() else {
                return Err(WireError::RemoteWithoutHooks {
                    class: desc.name().to_owned(),
                });
            };
            let key = hooks.export(self.heap, id)?;
            self.writer.put_u8(TAG_REMOTE);
            self.writer.put_u8(1);
            self.writer.put_varint(key);
            return Ok(());
        }
        if !flags.serializable {
            return Err(WireError::NotSerializable {
                class: desc.name().to_owned(),
            });
        }

        let pos = self.order.len() as u32;
        self.positions.insert(id, pos);
        self.order.push(id);

        self.writer.put_u8(TAG_OBJ);
        self.writer.put_varint(u64::from(obj.class().index()));
        match self.old_index.and_then(|m| m.get(id)) {
            Some(old) => self.writer.put_varint(u64::from(old) + 1),
            None => self.writer.put_varint(0),
        }
        let slots = obj.body().slots();
        self.writer.put_varint(slots.len() as u64);
        for slot in slots {
            self.encode_value(slot)?;
        }
        Ok(())
    }
}

/// Serializes the graphs reachable from `roots` in `heap`.
///
/// # Errors
/// See [`Serializer::encode_roots`].
pub fn serialize_graph<'a>(heap: &'a Heap, roots: &'a [Value]) -> Result<EncodedGraph> {
    Serializer::new(heap, None, None).encode_roots(roots)
}

/// Serializes with old-index annotations and/or remote hooks — the form
/// the middleware layer uses for server replies and stub-bearing graphs.
/// `old_index` is typically a linear map's
/// [`position_map`](nrmi_heap::LinearMap::position_map).
///
/// # Errors
/// See [`Serializer::encode_roots`].
pub fn serialize_graph_with<'a>(
    heap: &'a Heap,
    roots: &'a [Value],
    old_index: Option<&DensePositionMap>,
    hooks: Option<&mut dyn RemoteHooks>,
) -> Result<EncodedGraph> {
    Serializer::new(heap, old_index, hooks).encode_roots(roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrmi_heap::tree::{self, TreeClasses};
    use nrmi_heap::{ClassRegistry, HeapAccess};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    #[test]
    fn payload_starts_with_magic_and_version() {
        let (mut heap, classes) = setup();
        let root = tree::build_random_tree(&mut heap, &classes, 4, 1).unwrap();
        let enc = serialize_graph(&heap, &[Value::Ref(root)]).unwrap();
        assert_eq!(&enc.bytes[..4], b"NRMI");
        assert_eq!(enc.bytes[4], FORMAT_VERSION);
        assert_eq!(enc.object_count(), 4);
        assert!(enc.byte_len() > 5);
    }

    #[test]
    fn linear_order_matches_linear_map() {
        let (mut heap, classes) = setup();
        let ex = tree::build_running_example(&mut heap, &classes).unwrap();
        let enc = serialize_graph(&heap, &[Value::Ref(ex.root)]).unwrap();
        let map = nrmi_heap::LinearMap::build(&heap, &[ex.root]).unwrap();
        assert_eq!(
            enc.linear,
            map.order(),
            "serialization walk IS the linear map"
        );
    }

    #[test]
    fn shared_objects_emitted_once() {
        let (mut heap, classes) = setup();
        let shared = heap.alloc_default(classes.tree).unwrap();
        let root = heap
            .alloc(
                classes.tree,
                vec![Value::Int(0), Value::Ref(shared), Value::Ref(shared)],
            )
            .unwrap();
        let enc = serialize_graph(&heap, &[Value::Ref(root)]).unwrap();
        assert_eq!(enc.object_count(), 2);
    }

    #[test]
    fn cycles_terminate_via_backrefs() {
        let (mut heap, classes) = setup();
        let a = heap.alloc_default(classes.tree).unwrap();
        let b = heap.alloc_default(classes.tree).unwrap();
        heap.set_field(a, "left", Value::Ref(b)).unwrap();
        heap.set_field(b, "left", Value::Ref(a)).unwrap();
        let enc = serialize_graph(&heap, &[Value::Ref(a)]).unwrap();
        assert_eq!(enc.object_count(), 2);
    }

    #[test]
    fn non_serializable_rejected() {
        let mut reg = ClassRegistry::new();
        let plain = reg.define("Plain").field_int("x").register();
        let mut heap = Heap::new(reg.snapshot());
        let obj = heap.alloc_default(plain).unwrap();
        let err = serialize_graph(&heap, &[Value::Ref(obj)]).unwrap_err();
        assert!(matches!(err, WireError::NotSerializable { .. }));
    }

    #[test]
    fn remote_without_hooks_rejected() {
        let mut reg = ClassRegistry::new();
        let svc = reg.define("Service").remote().register();
        let mut heap = Heap::new(reg.snapshot());
        let obj = heap.alloc_default(svc).unwrap();
        let err = serialize_graph(&heap, &[Value::Ref(obj)]).unwrap_err();
        assert!(matches!(err, WireError::RemoteWithoutHooks { .. }));
    }

    #[test]
    fn primitive_roots_only() {
        let (heap, _) = setup();
        let enc = serialize_graph(
            &heap,
            &[Value::Int(7), Value::Str("ok".into()), Value::Null],
        )
        .unwrap();
        assert_eq!(enc.object_count(), 0);
    }

    #[test]
    fn dangling_root_is_error() {
        let (heap, _) = setup();
        let err = serialize_graph(&heap, &[Value::Ref(ObjId::from_index(99))]).unwrap_err();
        assert!(matches!(err, WireError::Heap(_)));
    }
}
