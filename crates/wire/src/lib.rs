//! # nrmi-wire — alias-preserving graph serialization
//!
//! The stand-in for Java Serialization in this reproduction. NRMI taps
//! into the serialization traversal to obtain its linear map "almost for
//! free" (§5.2.1 of the paper); this crate does the same: the
//! [`Serializer`] walks the object graph in the exact
//! deterministic order of [`nrmi_heap::LinearMap`], emitting every object
//! once and encoding repeated visits as back-references, so **sharing and
//! cycles survive the wire**. The [`Deserializer`]
//! reconstructs the graph *and the linear map in the same pass* — the
//! paper's first optimization (§5.2.4): the map is never transmitted.
//!
//! The [`delta`] module implements the paper's second optimization
//! (described as future work in §5.2.4): the reply encodes only the
//! difference between the pre-call and post-call states, so passing an
//! object by copy-restore without changing it costs roughly the same as
//! passing it by copy.
//!
//! ## Example: round-tripping an aliased graph
//!
//! ```
//! use nrmi_heap::{ClassRegistry, Heap, HeapAccess, Value};
//! use nrmi_wire::{deserialize_graph, serialize_graph};
//!
//! # fn main() -> Result<(), nrmi_wire::WireError> {
//! let mut reg = ClassRegistry::new();
//! let pair = reg.define("Pair").field_ref("a").field_ref("b").serializable().register();
//! let mut heap = Heap::new(reg.snapshot());
//! let shared = heap.alloc_default(pair)?;
//! let root = heap.alloc(pair, vec![Value::Ref(shared), Value::Ref(shared)])?;
//!
//! let msg = serialize_graph(&heap, &[Value::Ref(root)])?;
//! let mut heap2 = Heap::new(heap.registry_handle().clone());
//! let decoded = deserialize_graph(&msg.bytes, &mut heap2)?;
//! let root2 = decoded.roots[0].as_ref_id().unwrap();
//! let a = heap2.get_ref(root2, "a")?.unwrap();
//! let b = heap2.get_ref(root2, "b")?.unwrap();
//! assert_eq!(a, b, "aliasing preserved across the wire");
//! # Ok(())
//! # }
//! ```

//! ## Wire format specification
//!
//! A **graph payload** (requests and full replies) is:
//!
//! ```text
//! "NRMI" u8:version varint:root_count root_count × value
//!
//! value :=
//!   0x00                        null
//!   0x01 / 0x02                 false / true
//!   0x03 zigzag                 int (32-bit)
//!   0x04 zigzag                 long (64-bit)
//!   0x05 f64le                  double
//!   0x06 varint:len bytes       string (also enters the intern table)
//!   0x0D varint:index           interned-string reference
//!   0x07 varint:class           object, followed by
//!        varint:old_index+1|0   (its position in the request's linear
//!                                map, or 0 for objects the callee
//!                                allocated — restore step 4's matching)
//!        varint:slot_count
//!        slot_count × value
//!   0x08 varint:position        back-reference to the position-th
//!                               object of THIS payload (sharing/cycles)
//!   0x09 u8:owned_by_sender     remote reference (stub), export key
//!        varint:key             in the owner's table
//! ```
//!
//! Objects appear in deterministic preorder, so the sequence of `0x07`
//! records *is* the linear map. A **delta payload** ("NRMD") instead
//! lists `(old_index, slots)` pairs for changed objects plus inline new
//! objects; see [`delta`]. All varints are LEB128; counts are validated
//! against the remaining payload before any allocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod io;

pub mod codec;
pub mod de;
pub mod delta;
pub mod dump;
pub mod ser;
pub mod warm;

pub use codec::Codec;
pub use de::{deserialize_graph, deserialize_graph_with, DecodedGraph, Deserializer};
pub use delta::{apply_delta, encode_delta, DeltaStats, GraphSnapshot};
pub use dump::{dump_graph, DumpStats, GraphDump};
pub use error::WireError;
pub use io::{ByteReader, ByteWriter};
pub use ser::{serialize_graph, serialize_graph_with, EncodedGraph, RemoteHooks, Serializer};
pub use warm::{
    apply_invalidation, apply_invalidation_filtered, apply_request_delta, encode_invalidation,
    encode_request_delta, next_sync, peek_request_delta, AppliedInvalidation, AppliedRequestDelta,
    EncodedInvalidation, EncodedRequestDelta, InvalidationStats, PeekedRequestDelta,
    RequestDeltaStats, INVALIDATION_MAGIC,
};

/// Result alias for wire operations.
pub type Result<T> = std::result::Result<T, WireError>;

/// Wire format version byte; bumped on breaking format changes.
pub const FORMAT_VERSION: u8 = 1;

/// Magic prefix identifying an NRMI graph payload.
pub const MAGIC: [u8; 4] = *b"NRMI";
