//! Delta encoding of post-call state (§5.2.4, optimization 2).
//!
//! Instead of shipping the full post-call object graph back to the
//! caller, the server can send "just a 'delta' structure, encoding the
//! difference between the original data and the data after the execution
//! of the remote routine. In this way, the cost of passing an object
//! by-copy-restore and not making any changes to it is almost identical
//! to the cost of passing it by-copy." The paper leaves this to future
//! work; this module implements it, and the benchmark suite ablates it
//! against the full-reply path.
//!
//! Protocol: when the server deserializes the request it captures a
//! [`GraphSnapshot`] of every received ("old") object's slots. After the
//! method runs, [`encode_delta`] emits only the old objects whose slots
//! changed, plus any new objects they (or the reply roots) reference.
//! The client applies the delta *in place* with [`apply_delta`]: old
//! objects are patched directly through its own linear map, so the
//! restore needs no temporary copies and no pointer-fixup pass at all —
//! delta application subsumes algorithm steps 4–6.

use nrmi_heap::{DensePositionMap, Heap, ObjId, Value};

use crate::io::{ByteReader, ByteWriter};
use crate::ser::{TAG_DOUBLE, TAG_FALSE, TAG_INT, TAG_LONG, TAG_NULL, TAG_STR, TAG_TRUE};
use crate::{Result, WireError};

/// Magic prefix for delta payloads.
pub const DELTA_MAGIC: [u8; 4] = *b"NRMD";

pub(crate) const DTAG_OLDREF: u8 = 10;
pub(crate) const DTAG_NEWOBJ: u8 = 11;
pub(crate) const DTAG_NEWBACK: u8 = 12;

/// The server-side snapshot of the objects received in a request, taken
/// before the remote method runs.
#[derive(Clone, Debug, Default)]
pub struct GraphSnapshot {
    linear: Vec<ObjId>,
    slots: Vec<Vec<Value>>,
}

impl GraphSnapshot {
    /// Captures the current slots of every object in `linear` (the
    /// receiver-side linear map of the request).
    ///
    /// # Errors
    /// Propagates dangling-reference errors.
    pub fn capture(heap: &Heap, linear: &[ObjId]) -> Result<Self> {
        let mut snap = GraphSnapshot {
            linear: Vec::new(),
            slots: Vec::new(),
        };
        snap.recapture(heap, linear)?;
        Ok(snap)
    }

    /// Re-captures the snapshot in place over (a possibly different)
    /// `linear`, reusing the existing per-object slot storage. A session
    /// that snapshots the same cached graph between warm calls reaches a
    /// steady state where recapture allocates nothing.
    ///
    /// # Errors
    /// Propagates dangling-reference errors.
    pub fn recapture(&mut self, heap: &Heap, linear: &[ObjId]) -> Result<()> {
        self.linear.clear();
        self.linear.extend_from_slice(linear);
        self.slots.resize_with(linear.len(), Vec::new);
        for (i, &id) in linear.iter().enumerate() {
            heap.clone_slots_into(id, &mut self.slots[i])?;
        }
        Ok(())
    }

    /// Number of old objects in the snapshot.
    pub fn len(&self) -> usize {
        self.linear.len()
    }

    /// True if the snapshot covers no objects.
    pub fn is_empty(&self) -> bool {
        self.linear.is_empty()
    }
}

/// Size accounting for a delta encoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Old objects covered by the snapshot.
    pub old_count: usize,
    /// Old objects whose slots changed and were re-sent.
    pub changed_count: usize,
    /// New objects shipped in full.
    pub new_count: usize,
    /// Total payload bytes.
    pub bytes: usize,
}

/// An encoded delta plus its statistics.
#[derive(Clone, Debug)]
pub struct EncodedDelta {
    /// The wire payload.
    pub bytes: Vec<u8>,
    /// Size accounting.
    pub stats: DeltaStats,
    /// Sender-side ids of the new objects shipped in full, in emission
    /// order — the order the receiver's [`AppliedDelta::new_objects`]
    /// materializes them in. Warm-call sessions append these to both
    /// sides' synchronized object lists so positions keep corresponding.
    pub new_objects: Vec<ObjId>,
}

pub(crate) struct DeltaEncoder<'h> {
    pub(crate) heap: &'h Heap,
    pub(crate) writer: ByteWriter,
    pub(crate) old_pos: DensePositionMap,
    pub(crate) new_pos: DensePositionMap,
    pub(crate) new_ids: Vec<ObjId>,
}

impl<'h> DeltaEncoder<'h> {
    /// Creates an encoder over recycled scratch. `old_pos` is used as
    /// populated by the caller; `new_pos` is cleared (O(1)) and the
    /// payload buffer's allocation is reused.
    pub(crate) fn with_scratch(
        heap: &'h Heap,
        old_pos: DensePositionMap,
        mut new_pos: DensePositionMap,
        buf: Vec<u8>,
    ) -> Self {
        new_pos.clear();
        DeltaEncoder {
            heap,
            writer: ByteWriter::with_buffer(buf),
            old_pos,
            new_pos,
            new_ids: Vec::new(),
        }
    }

    pub(crate) fn encode_value(&mut self, value: &Value) -> Result<()> {
        match value {
            Value::Null => self.writer.put_u8(TAG_NULL),
            Value::Bool(false) => self.writer.put_u8(TAG_FALSE),
            Value::Bool(true) => self.writer.put_u8(TAG_TRUE),
            Value::Int(i) => {
                self.writer.put_u8(TAG_INT);
                self.writer.put_zigzag(i64::from(*i));
            }
            Value::Long(i) => {
                self.writer.put_u8(TAG_LONG);
                self.writer.put_zigzag(*i);
            }
            Value::Double(d) => {
                self.writer.put_u8(TAG_DOUBLE);
                self.writer.put_f64(*d);
            }
            Value::Str(s) => {
                self.writer.put_u8(TAG_STR);
                self.writer.put_str(s);
            }
            Value::Ref(id) => self.encode_ref(*id)?,
        }
        Ok(())
    }

    fn encode_ref(&mut self, id: ObjId) -> Result<()> {
        if let Some(pos) = self.old_pos.get(id) {
            self.writer.put_u8(DTAG_OLDREF);
            self.writer.put_varint(u64::from(pos));
            return Ok(());
        }
        if let Some(pos) = self.new_pos.get(id) {
            self.writer.put_u8(DTAG_NEWBACK);
            self.writer.put_varint(u64::from(pos));
            return Ok(());
        }
        // A genuinely new object: ship it in full, depth-first. The heap
        // reference is copied out of `self` so the slot borrow stays
        // disjoint from the recursive `&mut self` calls (no clone).
        let heap = self.heap;
        let obj = heap.get(id)?;
        let desc = heap.registry_handle().get(obj.class())?;
        if !desc.flags().serializable {
            return Err(WireError::NotSerializable {
                class: desc.name().to_owned(),
            });
        }
        let pos = self.new_ids.len() as u32;
        self.new_pos.insert(id, pos);
        self.new_ids.push(id);
        self.writer.put_u8(DTAG_NEWOBJ);
        self.writer.put_varint(u64::from(obj.class().index()));
        let slots = obj.body().slots();
        self.writer.put_varint(slots.len() as u64);
        for slot in slots {
            self.encode_value(slot)?;
        }
        Ok(())
    }
}

/// Encodes the difference between `snapshot` and the current state of
/// `heap`, along with the reply `roots` (e.g. the return value).
///
/// # Errors
/// Fails on dangling references or non-serializable new objects.
pub fn encode_delta(
    heap: &Heap,
    snapshot: &GraphSnapshot,
    roots: &[Value],
) -> Result<EncodedDelta> {
    let (delta, _, _) = encode_delta_pooled(
        heap,
        snapshot,
        roots,
        DensePositionMap::new(),
        DensePositionMap::new(),
        Vec::new(),
    )?;
    Ok(delta)
}

/// The pooled workhorse behind [`encode_delta`]: identical output, but
/// the position-map scratch and payload buffer are supplied by the
/// caller and the maps are handed back for reuse.
pub(crate) fn encode_delta_pooled(
    heap: &Heap,
    snapshot: &GraphSnapshot,
    roots: &[Value],
    mut old_pos: DensePositionMap,
    new_pos: DensePositionMap,
    buf: Vec<u8>,
) -> Result<(EncodedDelta, DensePositionMap, DensePositionMap)> {
    old_pos.clear();
    for (i, &id) in snapshot.linear.iter().enumerate() {
        old_pos.insert(id, i as u32);
    }

    // Count changed old objects first (one comparison pass against the
    // snapshot, borrowing slots in place — no clones).
    let mut changed_count: usize = 0;
    for (i, &id) in snapshot.linear.iter().enumerate() {
        if heap.get(id)?.body().slots() != snapshot.slots[i].as_slice() {
            changed_count += 1;
        }
    }

    let mut enc = DeltaEncoder::with_scratch(heap, old_pos, new_pos, buf);
    enc.writer.put_slice(&DELTA_MAGIC);
    enc.writer.put_u8(crate::FORMAT_VERSION);
    enc.writer.put_varint(snapshot.len() as u64);
    enc.writer.put_varint(changed_count as u64);
    for (i, &id) in snapshot.linear.iter().enumerate() {
        let now = heap.get(id)?.body().slots();
        if now == snapshot.slots[i].as_slice() {
            continue;
        }
        enc.writer.put_varint(i as u64);
        enc.writer.put_varint(now.len() as u64);
        for v in now {
            enc.encode_value(v)?;
        }
    }
    enc.writer.put_varint(roots.len() as u64);
    for root in roots {
        enc.encode_value(root)?;
    }

    let DeltaEncoder {
        writer,
        old_pos,
        new_pos,
        new_ids: new_objects,
        ..
    } = enc;
    let bytes = writer.into_bytes();
    let stats = DeltaStats {
        old_count: snapshot.len(),
        changed_count,
        new_count: new_objects.len(),
        bytes: bytes.len(),
    };
    Ok((
        EncodedDelta {
            bytes,
            stats,
            new_objects,
        },
        old_pos,
        new_pos,
    ))
}

/// The result of applying a delta on the caller side.
#[derive(Clone, Debug, Default)]
pub struct AppliedDelta {
    /// Decoded reply roots (e.g. the return value).
    pub roots: Vec<Value>,
    /// Objects newly materialized in the caller's heap.
    pub new_objects: Vec<ObjId>,
    /// Number of old objects that were patched in place.
    pub changed_count: usize,
}

pub(crate) struct DeltaDecoder<'h, 'b> {
    pub(crate) heap: &'h mut Heap,
    pub(crate) reader: ByteReader<'b>,
    pub(crate) client_linear: &'b [ObjId],
    pub(crate) new_objects: Vec<ObjId>,
}

impl<'h, 'b> DeltaDecoder<'h, 'b> {
    pub(crate) fn decode_value(&mut self) -> Result<Value> {
        let offset = self.reader.position();
        let tag = self.reader.get_u8()?;
        match tag {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_INT => Ok(Value::Int(self.reader.get_zigzag()? as i32)),
            TAG_LONG => Ok(Value::Long(self.reader.get_zigzag()?)),
            TAG_DOUBLE => Ok(Value::Double(self.reader.get_f64()?)),
            TAG_STR => Ok(Value::Str(self.reader.get_str()?)),
            DTAG_OLDREF => {
                let idx = self.reader.get_varint_u32()?;
                self.client_linear
                    .get(idx as usize)
                    .map(|&id| Value::Ref(id))
                    .ok_or(WireError::BadOldIndex {
                        index: idx,
                        len: self.client_linear.len() as u32,
                    })
            }
            DTAG_NEWBACK => {
                let pos = self.reader.get_varint_u32()?;
                self.new_objects
                    .get(pos as usize)
                    .map(|&id| Value::Ref(id))
                    .ok_or(WireError::BadBackRef {
                        position: pos,
                        decoded: self.new_objects.len() as u32,
                    })
            }
            DTAG_NEWOBJ => {
                let class = nrmi_heap::ClassId::from_index(self.reader.get_varint_u32()?);
                let slot_count = self.reader.get_count()?;
                let desc = self.heap.registry_handle().get(class)?;
                let id = if desc.flags().array {
                    self.heap.alloc_array(class, Vec::new())?
                } else {
                    self.heap.alloc_default(class)?
                };
                self.new_objects.push(id);
                let mut slots = Vec::with_capacity(slot_count);
                for _ in 0..slot_count {
                    slots.push(self.decode_value()?);
                }
                self.heap.overwrite_slots(id, slots)?;
                Ok(Value::Ref(id))
            }
            other => Err(WireError::UnknownTag { tag: other, offset }),
        }
    }
}

/// Applies a delta payload to the caller's heap: patches changed old
/// objects in place (through `client_linear`, the caller's linear map of
/// the original request) and materializes new objects.
///
/// This *is* the restore: after `apply_delta` returns, every mutation the
/// server made is visible through every caller-side alias, because old
/// objects were overwritten rather than replaced.
///
/// # Errors
/// Fails on malformed payloads or if `client_linear` does not match the
/// old-object count recorded in the delta.
pub fn apply_delta(bytes: &[u8], heap: &mut Heap, client_linear: &[ObjId]) -> Result<AppliedDelta> {
    let mut reader = ByteReader::new(bytes);
    let magic = reader.get_slice(4)?;
    if magic != DELTA_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = reader.get_u8()?;
    if version != crate::FORMAT_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let old_count = reader.get_varint_u32()? as usize;
    if old_count != client_linear.len() {
        return Err(WireError::BadOldIndex {
            index: old_count as u32,
            len: client_linear.len() as u32,
        });
    }
    let changed_count = reader.get_count()?;

    let mut dec = DeltaDecoder {
        heap,
        reader,
        client_linear,
        new_objects: Vec::new(),
    };
    for _ in 0..changed_count {
        let idx = dec.reader.get_varint_u32()? as usize;
        let target = *client_linear.get(idx).ok_or(WireError::BadOldIndex {
            index: idx as u32,
            len: old_count as u32,
        })?;
        let slot_count = dec.reader.get_count()?;
        let mut slots = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            slots.push(dec.decode_value()?);
        }
        dec.heap.overwrite_slots(target, slots)?;
    }
    let root_count = dec.reader.get_count()?;
    let mut roots = Vec::with_capacity(root_count);
    for _ in 0..root_count {
        let v = dec.decode_value()?;
        roots.push(v);
    }
    if !dec.reader.is_exhausted() {
        return Err(WireError::TrailingBytes {
            offset: dec.reader.position(),
            trailing: dec.reader.remaining(),
        });
    }
    Ok(AppliedDelta {
        roots,
        new_objects: dec.new_objects,
        changed_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{deserialize_graph, serialize_graph};
    use nrmi_heap::tree::{self, TreeClasses};
    use nrmi_heap::{ClassRegistry, HeapAccess};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    /// Full client/server delta round trip: serialize request, snapshot,
    /// mutate server-side, encode delta, apply on client. Returns the
    /// client heap (mutated in place) and the applied delta.
    fn delta_roundtrip(
        client: &mut Heap,
        root: ObjId,
        mutate: impl FnOnce(&mut Heap, ObjId),
    ) -> (AppliedDelta, DeltaStats) {
        let enc = serialize_graph(client, &[Value::Ref(root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut server).unwrap();
        let snapshot = GraphSnapshot::capture(&server, &dec.linear).unwrap();
        let server_root = dec.roots[0].as_ref_id().unwrap();
        mutate(&mut server, server_root);
        let delta = encode_delta(&server, &snapshot, &[]).unwrap();
        let applied = apply_delta(&delta.bytes, client, &enc.linear).unwrap();
        (applied, delta.stats)
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 8, 5).unwrap();
        let enc = serialize_graph(&client, &[Value::Ref(root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut server).unwrap();
        let snapshot = GraphSnapshot::capture(&server, &dec.linear).unwrap();
        let mut bytes = encode_delta(&server, &snapshot, &[]).unwrap().bytes;
        bytes.push(0x7f);
        match apply_delta(&bytes, &mut client, &enc.linear) {
            Err(WireError::TrailingBytes { trailing, .. }) => assert_eq!(trailing, 1),
            other => panic!("expected TrailingBytes, got {other:?}"),
        }
    }

    #[test]
    fn unchanged_graph_produces_near_empty_delta() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 256, 1).unwrap();
        let (applied, stats) = delta_roundtrip(&mut client, root, |_, _| {});
        assert_eq!(applied.changed_count, 0);
        assert_eq!(stats.changed_count, 0);
        assert_eq!(stats.new_count, 0);
        assert!(
            stats.bytes < 32,
            "no-change delta should be tiny, got {} bytes",
            stats.bytes
        );
    }

    #[test]
    fn single_field_change_patches_in_place() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 64, 2).unwrap();
        let (applied, stats) = delta_roundtrip(&mut client, root, |server, r| {
            server.set_field(r, "data", Value::Int(31337)).unwrap();
        });
        assert_eq!(applied.changed_count, 1);
        assert_eq!(stats.new_count, 0);
        assert_eq!(client.get_field(root, "data").unwrap(), Value::Int(31337));
    }

    #[test]
    fn running_example_restored_exactly_via_delta() {
        let (mut client, classes) = setup();
        let ex = tree::build_running_example(&mut client, &classes).unwrap();
        let (applied, stats) = delta_roundtrip(&mut client, ex.root, |server, r| {
            tree::run_foo(server, r).unwrap();
        });
        // foo changes: t (left/right fields), t.left (data), t.right
        // (data + right), t.right.right (data) → 4 changed old objects,
        // 1 new object.
        assert_eq!(stats.changed_count, 4);
        assert_eq!(stats.new_count, 1);
        assert_eq!(applied.new_objects.len(), 1);
        let violations = tree::figure2_violations(&mut client, &ex).unwrap();
        assert!(
            violations.is_empty(),
            "delta restore violated figure 2: {violations:?}"
        );
    }

    #[test]
    fn new_objects_shared_between_changed_entries_materialize_once() {
        let (mut client, classes) = setup();
        let a = client.alloc_default(classes.tree).unwrap();
        let b = client.alloc_default(classes.tree).unwrap();
        let root = client
            .alloc(
                classes.tree,
                vec![Value::Int(0), Value::Ref(a), Value::Ref(b)],
            )
            .unwrap();
        let (applied, stats) = delta_roundtrip(&mut client, root, |server, r| {
            // Both children now point at ONE new node.
            let class = server.class_of(r).unwrap();
            let fresh = server
                .alloc(class, vec![Value::Int(77), Value::Null, Value::Null])
                .unwrap();
            let ca = server.get_ref(r, "left").unwrap().unwrap();
            let cb = server.get_ref(r, "right").unwrap().unwrap();
            server.set_field(ca, "left", Value::Ref(fresh)).unwrap();
            server.set_field(cb, "left", Value::Ref(fresh)).unwrap();
        });
        assert_eq!(stats.new_count, 1, "shared new object shipped once");
        assert_eq!(applied.new_objects.len(), 1);
        let na = client.get_ref(a, "left").unwrap().unwrap();
        let nb = client.get_ref(b, "left").unwrap().unwrap();
        assert_eq!(na, nb, "aliasing of the new object preserved on the client");
        assert_eq!(client.get_field(na, "data").unwrap(), Value::Int(77));
    }

    #[test]
    fn delta_smaller_than_full_reply_for_sparse_changes() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 512, 3).unwrap();
        let enc = serialize_graph(&client, &[Value::Ref(root)]).unwrap();
        let full_reply_size = enc.byte_len();
        let (_, stats) = delta_roundtrip(&mut client, root, |server, r| {
            server.set_field(r, "data", Value::Int(1)).unwrap();
        });
        assert!(
            stats.bytes * 10 < full_reply_size,
            "delta {} should be ≪ full {}",
            stats.bytes,
            full_reply_size
        );
    }

    #[test]
    fn roots_travel_through_delta() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 4, 4).unwrap();
        let enc = serialize_graph(&client, &[Value::Ref(root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut server).unwrap();
        let snapshot = GraphSnapshot::capture(&server, &dec.linear).unwrap();
        let server_root = dec.roots[0].as_ref_id().unwrap();
        // Return value: an int and the root itself (as an old-ref).
        let delta = encode_delta(
            &server,
            &snapshot,
            &[Value::Int(5), Value::Ref(server_root)],
        )
        .unwrap();
        let applied = apply_delta(&delta.bytes, &mut client, &enc.linear).unwrap();
        assert_eq!(applied.roots[0], Value::Int(5));
        assert_eq!(
            applied.roots[1],
            Value::Ref(root),
            "old-ref root maps to client original"
        );
    }

    #[test]
    fn mismatched_linear_map_rejected() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 4, 5).unwrap();
        let enc = serialize_graph(&client, &[Value::Ref(root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut server).unwrap();
        let snapshot = GraphSnapshot::capture(&server, &dec.linear).unwrap();
        let delta = encode_delta(&server, &snapshot, &[]).unwrap();
        let err = apply_delta(&delta.bytes, &mut client, &enc.linear[..2]).unwrap_err();
        assert!(matches!(err, WireError::BadOldIndex { .. }));
    }

    #[test]
    fn bad_magic_rejected() {
        let (mut client, _) = setup();
        assert!(matches!(
            apply_delta(b"XXXX\x01\x00\x00\x00", &mut client, &[]),
            Err(WireError::BadMagic)
        ));
    }

    #[test]
    fn snapshot_len_and_empty() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 3, 6).unwrap();
        let map = nrmi_heap::LinearMap::build(&client, &[root]).unwrap();
        let snap = GraphSnapshot::capture(&client, map.order()).unwrap();
        assert_eq!(snap.len(), 3);
        assert!(!snap.is_empty());
        let empty = GraphSnapshot::capture(&client, &[]).unwrap();
        assert!(empty.is_empty());
    }
}
