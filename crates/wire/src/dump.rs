//! Payload introspection: render a wire payload as human-readable text
//! without materializing it into a heap.
//!
//! Debugging middleware means staring at byte buffers; [`dump_graph`]
//! turns an NRMI graph payload into an indented listing of its objects,
//! back-references, old-index annotations, and remote stubs, resolving
//! class ids against a registry. Used by tests (to assert what a payload
//! *contains*, e.g. "the reply carries old-index annotations for all 7
//! objects") and by humans (println-debugging a protocol exchange).

use std::fmt::Write as _;

use nrmi_heap::ClassRegistry;

use crate::io::ByteReader;
use crate::ser::{
    TAG_BACKREF, TAG_DOUBLE, TAG_FALSE, TAG_INT, TAG_LONG, TAG_NULL, TAG_OBJ, TAG_REMOTE, TAG_STR,
    TAG_STRREF, TAG_TRUE,
};
use crate::{Result, WireError, FORMAT_VERSION, MAGIC};

/// Summary statistics extracted while dumping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DumpStats {
    /// Objects inlined in the payload.
    pub objects: usize,
    /// Back-references (shared structure / cycles on the wire).
    pub backrefs: usize,
    /// Objects carrying an old-index annotation (restore candidates).
    pub annotated: usize,
    /// Remote stubs.
    pub remotes: usize,
    /// Interned-string references.
    pub string_refs: usize,
}

/// The rendered dump plus its statistics.
#[derive(Clone, Debug)]
pub struct GraphDump {
    /// Human-readable listing.
    pub text: String,
    /// Extracted statistics.
    pub stats: DumpStats,
}

struct Dumper<'a, 'r> {
    reader: ByteReader<'a>,
    registry: &'r ClassRegistry,
    out: String,
    stats: DumpStats,
    next_position: u32,
    strings: Vec<String>,
}

impl Dumper<'_, '_> {
    fn dump_value(&mut self, depth: usize) -> Result<()> {
        let indent = "  ".repeat(depth);
        let offset = self.reader.position();
        let tag = self.reader.get_u8()?;
        match tag {
            TAG_NULL => {
                let _ = writeln!(self.out, "{indent}null");
            }
            TAG_FALSE => {
                let _ = writeln!(self.out, "{indent}false");
            }
            TAG_TRUE => {
                let _ = writeln!(self.out, "{indent}true");
            }
            TAG_INT => {
                let v = self.reader.get_zigzag()?;
                let _ = writeln!(self.out, "{indent}int {v}");
            }
            TAG_LONG => {
                let v = self.reader.get_zigzag()?;
                let _ = writeln!(self.out, "{indent}long {v}");
            }
            TAG_DOUBLE => {
                let v = self.reader.get_f64()?;
                let _ = writeln!(self.out, "{indent}double {v}");
            }
            TAG_STR => {
                let s = self.reader.get_str()?;
                self.strings.push(s.clone());
                let _ = writeln!(self.out, "{indent}str {s:?}");
            }
            TAG_STRREF => {
                let idx = self.reader.get_varint()? as usize;
                self.stats.string_refs += 1;
                let resolved = self.strings.get(idx).cloned().unwrap_or_default();
                let _ = writeln!(self.out, "{indent}strref #{idx} ({resolved:?})");
            }
            TAG_BACKREF => {
                let pos = self.reader.get_varint()?;
                self.stats.backrefs += 1;
                let _ = writeln!(self.out, "{indent}-> @{pos}");
            }
            TAG_REMOTE => {
                let owned_by_sender = self.reader.get_u8()? != 0;
                let key = self.reader.get_varint()?;
                self.stats.remotes += 1;
                let owner = if owned_by_sender {
                    "sender"
                } else {
                    "receiver"
                };
                let _ = writeln!(self.out, "{indent}remote stub key={key} (owned by {owner})");
            }
            TAG_OBJ => {
                let class_idx = self.reader.get_varint()? as u32;
                let old = self.reader.get_varint()?;
                let slot_count = self.reader.get_count()?;
                let position = self.next_position;
                self.next_position += 1;
                self.stats.objects += 1;
                let class_id = nrmi_heap::ClassId::from_index(class_idx);
                let class_name = self
                    .registry
                    .get(class_id)
                    .map(|d| d.name().to_owned())
                    .unwrap_or_else(|_| format!("<class:{class_idx}>"));
                let annotation = if old == 0 {
                    String::new()
                } else {
                    self.stats.annotated += 1;
                    format!(" old_index={}", old - 1)
                };
                let _ = writeln!(
                    self.out,
                    "{indent}@{position} {class_name} ({slot_count} slots){annotation}"
                );
                let field_names: Vec<String> = self
                    .registry
                    .get(class_id)
                    .map(|d| d.fields().iter().map(|f| f.name().to_owned()).collect())
                    .unwrap_or_default();
                for i in 0..slot_count {
                    if let Some(name) = field_names.get(i) {
                        let _ = writeln!(self.out, "{indent}  .{name}:");
                    } else {
                        let _ = writeln!(self.out, "{indent}  [{i}]:");
                    }
                    self.dump_value(depth + 2)?;
                }
            }
            other => return Err(WireError::UnknownTag { tag: other, offset }),
        }
        Ok(())
    }
}

/// Dumps an NRMI graph payload (as produced by
/// [`serialize_graph`](crate::serialize_graph)) to text, resolving class
/// names against `registry`.
///
/// # Errors
/// The same malformed-payload errors the real decoder reports.
pub fn dump_graph(bytes: &[u8], registry: &ClassRegistry) -> Result<GraphDump> {
    let mut dumper = Dumper {
        reader: ByteReader::new(bytes),
        registry,
        out: String::new(),
        stats: DumpStats::default(),
        next_position: 0,
        strings: Vec::new(),
    };
    let magic = dumper.reader.get_slice(4)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = dumper.reader.get_u8()?;
    if version != FORMAT_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let root_count = dumper.reader.get_count()?;
    let _ = writeln!(
        dumper.out,
        "graph payload v{version}: {root_count} root(s), {} bytes",
        bytes.len()
    );
    for i in 0..root_count {
        let _ = writeln!(dumper.out, "root[{i}]:");
        dumper.dump_value(1)?;
    }
    Ok(GraphDump {
        text: dumper.out,
        stats: dumper.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{serialize_graph, serialize_graph_with};
    use nrmi_heap::{tree, Heap, LinearMap, Value};

    fn setup() -> (Heap, ClassRegistry) {
        let mut reg = ClassRegistry::new();
        let _ = tree::register_tree_classes(&mut reg);
        let snapshot = reg.snapshot();
        (Heap::new(snapshot), reg)
    }

    #[test]
    fn dump_shows_structure_and_stats() {
        let (mut heap, registry) = setup();
        let classes = tree::TreeClasses {
            tree: registry.by_name("Tree").unwrap(),
        };
        let ex = tree::build_running_example(&mut heap, &classes).unwrap();
        let enc =
            serialize_graph(&heap, &[Value::Ref(ex.root), Value::Ref(ex.alias1_target)]).unwrap();
        let dump = dump_graph(&enc.bytes, &registry).unwrap();
        assert_eq!(dump.stats.objects, 7);
        assert_eq!(dump.stats.backrefs, 1, "alias1 root is a back-reference");
        assert_eq!(dump.stats.annotated, 0);
        assert!(dump.text.contains("Tree (3 slots)"));
        assert!(dump.text.contains(".left:"));
        assert!(dump.text.contains("int 5"));
        assert!(dump.text.contains("-> @"));
    }

    #[test]
    fn dump_shows_old_index_annotations() {
        let (mut heap, registry) = setup();
        let classes = tree::TreeClasses {
            tree: registry.by_name("Tree").unwrap(),
        };
        let root = tree::build_random_tree(&mut heap, &classes, 5, 1).unwrap();
        let map = LinearMap::build(&heap, &[root]).unwrap();
        let enc = serialize_graph_with(&heap, &[Value::Ref(root)], Some(map.position_map()), None)
            .unwrap();
        let dump = dump_graph(&enc.bytes, &registry).unwrap();
        assert_eq!(
            dump.stats.annotated, 5,
            "every object annotated:\n{}",
            dump.text
        );
        assert!(dump.text.contains("old_index=0"));
    }

    #[test]
    fn dump_shows_interned_strings() {
        let mut reg = ClassRegistry::new();
        let named = reg
            .define("Named")
            .field_str("name")
            .serializable()
            .register();
        let registry_snapshot = reg.snapshot();
        let mut heap = Heap::new(registry_snapshot);
        let a = heap.alloc(named, vec![Value::Str("dup".into())]).unwrap();
        let b = heap.alloc(named, vec![Value::Str("dup".into())]).unwrap();
        let enc = serialize_graph(&heap, &[Value::Ref(a), Value::Ref(b)]).unwrap();
        let dump = dump_graph(&enc.bytes, &reg).unwrap();
        assert_eq!(dump.stats.string_refs, 1);
        assert!(dump.text.contains("strref #0 (\"dup\")"));
    }

    #[test]
    fn dump_rejects_malformed() {
        let reg = ClassRegistry::new();
        assert!(matches!(
            dump_graph(b"XXXX\x01\x00", &reg),
            Err(WireError::BadMagic)
        ));
        assert!(dump_graph(b"NRMI\x01\x01\x63", &reg).is_err());
    }
}
