//! Decoder robustness: hostile or corrupt payloads must produce errors,
//! never panics, unbounded allocation, or heap corruption.

use proptest::prelude::*;

use nrmi_heap::{ClassRegistry, Heap, Value};
use nrmi_wire::{apply_delta, deserialize_graph, serialize_graph};

fn fresh_heap() -> Heap {
    let mut reg = ClassRegistry::new();
    reg.define("Node")
        .field_int("data")
        .field_ref("left")
        .field_ref("right")
        .restorable()
        .register();
    Heap::new(reg.snapshot())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: decode returns an error or a valid graph —
    /// never a panic — and only live objects remain in the heap.
    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut heap = fresh_heap();
        let _ = deserialize_graph(&bytes, &mut heap);
        // Whatever happened, the heap's accounting is intact.
        prop_assert_eq!(heap.live_count() as u64, heap.stats().live());
    }

    /// Arbitrary bytes with a valid magic prefix (deeper penetration
    /// into the decoder) still never panic.
    #[test]
    fn decoder_never_panics_past_the_magic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut payload = b"NRMI\x01".to_vec();
        payload.extend(&bytes);
        let mut heap = fresh_heap();
        let _ = deserialize_graph(&payload, &mut heap);
        prop_assert_eq!(heap.live_count() as u64, heap.stats().live());
    }

    /// Truncating a VALID payload at every prefix length yields clean
    /// errors, never panics or accepted-but-wrong graphs.
    #[test]
    fn truncated_valid_payloads_fail_cleanly(
        n in 1usize..12,
        edges in proptest::collection::vec((0usize..12, any::<bool>(), 0usize..12), 0..16)
    ) {
        use nrmi_heap::HeapAccess;
        let mut src = fresh_heap();
        let class = src.registry_handle().by_name("Node").unwrap();
        let nodes: Vec<_> = (0..n)
            .map(|i| src.alloc(class, vec![Value::Int(i as i32), Value::Null, Value::Null]).unwrap())
            .collect();
        for (a, left, b) in edges {
            let side = if left { "left" } else { "right" };
            src.set_field(nodes[a % n], side, Value::Ref(nodes[b % n])).unwrap();
        }
        let enc = serialize_graph(&src, &[Value::Ref(nodes[0])]).unwrap();
        for cut in 0..enc.bytes.len() {
            let mut heap = fresh_heap();
            prop_assert!(
                deserialize_graph(&enc.bytes[..cut], &mut heap).is_err(),
                "truncation at {cut} of {} accepted", enc.bytes.len()
            );
        }
        // The untruncated payload still decodes.
        let mut heap = fresh_heap();
        prop_assert!(deserialize_graph(&enc.bytes, &mut heap).is_ok());
    }

    /// Arbitrary delta payloads against a real linear map never panic.
    #[test]
    fn delta_decoder_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        with_magic in any::<bool>()
    ) {
        let mut heap = fresh_heap();
        let class = heap.registry_handle().by_name("Node").unwrap();
        let a = heap.alloc(class, vec![Value::Int(1), Value::Null, Value::Null]).unwrap();
        let b = heap.alloc(class, vec![Value::Int(2), Value::Null, Value::Null]).unwrap();
        let payload = if with_magic {
            let mut p = b"NRMD\x01".to_vec();
            p.extend(&bytes);
            p
        } else {
            bytes
        };
        let _ = apply_delta(&payload, &mut heap, &[a, b]);
        prop_assert_eq!(heap.live_count() as u64, heap.stats().live());
    }
}
