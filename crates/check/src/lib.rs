//! # nrmi-check — static analysis and verification for NRMI
//!
//! Four analyses, one diagnostic engine (DESIGN.md §3d):
//!
//! 1. **Static descriptor analysis** ([`schema`]): walks a
//!    [`ClassRegistry`](nrmi_heap::ClassRegistry) without executing
//!    anything and reports wire-unsound metadata (`NRMI-S00x`), computes
//!    structural fingerprints per class, and diffs two registries for
//!    schema drift with who-changed-what context (`NRMI-S01x`).
//! 2. **Protocol model checking** ([`protocol`]): the cold/warm/delta
//!    handshake as an explicit transition system, exhaustively
//!    enumerated to a bound against the real client and server
//!    implementations with a local-oracle divergence check
//!    (`NRMI-P00x`).
//! 3. **Heap diagnostics** ([`heapcheck`]): the structural heap
//!    validator lifted into diagnostics (`NRMI-H00x`). A related code
//!    family, `NRMI-Z00x`, is emitted at runtime by `nrmi-heap`'s
//!    `sanitize` feature (shadow liveness state catching dangling
//!    dereference, use-after-GC, cross-heap confusion, and stale
//!    dense-map reads at the moment they happen).
//! 4. **Lock-discipline audit** ([`lockcheck`]): judges the
//!    acquisition-order witness `nrmi-core`'s tracked locks record
//!    under the `lockcheck` feature — order cycles, locks held across
//!    blocking transport ops, same-class re-entry, hold-time
//!    watermarks (`NRMI-L00x`, DESIGN.md §3i).
//!
//! Everything reports through [`Diagnostic`]/[`Report`]; CI gates on
//! [`Report::has_errors`] via `cargo run -p nrmi-bench --bin tables --
//! check`, which prints the JSON rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod heapcheck;
pub mod lockcheck;
pub mod protocol;
pub mod schema;

pub use diag::{Diagnostic, Report, Severity};
pub use heapcheck::check_heap;
pub use lockcheck::{assert_discipline_clean, check_lock_witness, check_locks};
pub use protocol::{
    check_pipelined_sequence, check_reactor_sequence, check_reliability_sequence, check_sequence,
    check_shared_graph_sequence, check_shared_sequence, judge_reply, model_check, Action,
    ModelCheckConfig, PipelinedAction, ReactorAction, ReliabilityAction, ReplyContext,
    SharedAction, SharedGraphAction, ADVERSARIAL_ALPHABET, CORE_ALPHABET, PIPELINED_ALPHABET,
    REACTOR_ALPHABET, RELIABILITY_ALPHABET, SHARED_ALPHABET, SHARED_GRAPH_ALPHABET,
};
pub use schema::{analyze_registry, diff_registries, fingerprint, fingerprints};

/// Runs the full verification suite the CI `check` job gates on:
///
/// * schema analysis of the repository's canonical registry (the tree
///   classes every benchmark and example uses);
/// * a drift diff of two independently constructed copies of that
///   registry (must be clean — it is the same build recipe);
/// * the protocol model check at the given bounds;
/// * the lock-discipline audit over whatever this process's witness
///   has recorded so far (empty — and silent — unless built with
///   `--features lockcheck` and real server code ran first).
///
/// Returns the merged report; the caller decides how to render it and
/// whether errors are fatal.
pub fn self_check(cfg: &ModelCheckConfig) -> Report {
    let mut report = Report::new();

    let build = || {
        let mut reg = nrmi_heap::ClassRegistry::new();
        let _ = nrmi_heap::tree::register_tree_classes(&mut reg);
        reg
    };
    let registry = build();
    report.merge(analyze_registry(&registry));
    report.merge(diff_registries("client", &registry, "server", &build()));
    report.merge(model_check(cfg));
    report.merge(check_locks());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_check_canonical_registry_is_clean() {
        // Schema + drift only (protocol depth 0 keeps this test fast;
        // protocol coverage has its own tests).
        let report = self_check(&ModelCheckConfig {
            core_depth: 0,
            adversarial_depth: 0,
            reliability_depth: 0,
            shared_depth: 0,
            shared_graph_depth: 0,
            pipelined_depth: 0,
            reactor_depth: 0,
            max_errors: 25,
        });
        assert!(!report.has_errors(), "{}", report.render());
    }
}
