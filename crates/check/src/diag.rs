//! The diagnostic engine every analysis reports through.
//!
//! One [`Diagnostic`] type carries a stable code (`NRMI-S001`, …), a
//! severity, a human message, and span-ish context (named facts about
//! where the problem lives: class, field, action sequence). A [`Report`]
//! is an ordered collection with text and JSON renderers; CI gates on
//! [`Report::has_errors`].
//!
//! ## Code scheme
//!
//! | prefix | analysis |
//! |--------|----------|
//! | `NRMI-S0xx` | static descriptor/schema analysis ([`crate::schema`]) |
//! | `NRMI-H0xx` | heap structural integrity ([`crate::heapcheck`]) |
//! | `NRMI-P0xx` | protocol model checking ([`crate::protocol`]) |
//! | `NRMI-Z0xx` | runtime sanitizer traps (`nrmi-heap` `sanitize` feature) |

use std::fmt;

/// How bad a finding is. `Error` findings fail the CI gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth surfacing, not wrong.
    Info,
    /// Suspicious but not provably wire-unsound.
    Warning,
    /// Wire-unsound or semantics-corrupting; fails the gate.
    Error,
}

impl Severity {
    /// Lowercase label used in renderings ("error", "warning", "info").
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding: code, severity, message, and named context facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code, e.g. `NRMI-S001`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable one-line description.
    pub message: String,
    /// Span-ish context: ordered `(key, value)` facts pinning the finding
    /// to a class, field, object, or action sequence.
    pub context: Vec<(String, String)>,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// Creates an info-severity diagnostic.
    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Info,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// Attaches a context fact (builder style).
    pub fn with(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        self.context.push((key.into(), value.to_string()));
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.code, self.message)?;
        for (k, v) in &self.context {
            write!(f, "\n    {k}: {v}")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics from one or more analyses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// Appends every diagnostic of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// The diagnostics, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// True if nothing was found.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// True if any finding is [`Severity::Error`] — the CI gate condition.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// `(errors, warnings, infos)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diags {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Info => c.2 += 1,
            }
        }
        c
    }

    /// True if some finding carries `code`.
    pub fn has_code(&self, code: &str) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Multi-line human rendering; `"no findings"` when empty.
    pub fn render(&self) -> String {
        if self.diags.is_empty() {
            return "no findings".to_owned();
        }
        let (e, w, i) = self.counts();
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!("{e} error(s), {w} warning(s), {i} info(s)"));
        out
    }

    /// Renders the report as a JSON array of finding objects, suitable
    /// for `tables -- check` machine output.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"message\":{},\"context\":{{",
                json_str(d.code),
                json_str(d.severity.label()),
                json_str(&d.message),
            ));
            for (j, (k, v)) in d.context.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_str(k), json_str(v)));
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }
}

impl FromIterator<Diagnostic> for Report {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Self {
        Report {
            diags: iter.into_iter().collect(),
        }
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_and_labels() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn report_counts_and_gate() {
        let mut r = Report::new();
        assert!(!r.has_errors());
        r.push(Diagnostic::info("NRMI-X000", "fyi"));
        r.push(Diagnostic::warning("NRMI-X001", "hmm"));
        assert!(!r.has_errors());
        r.push(Diagnostic::error("NRMI-X002", "bad").with("class", "Tree"));
        assert!(r.has_errors());
        assert_eq!(r.counts(), (1, 1, 1));
        assert!(r.has_code("NRMI-X002"));
        assert!(!r.has_code("NRMI-X999"));
        assert!(r.render().contains("NRMI-X002"));
        assert!(r.render().contains("class: Tree"));
    }

    #[test]
    fn json_escapes_and_shapes() {
        let mut r = Report::new();
        r.push(Diagnostic::error("NRMI-X002", "line\nwith \"quotes\"").with("k", "v\\w"));
        let json = r.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\\n"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"k\":\"v\\\\w\""));
        assert_eq!(Report::new().to_json(), "[]");
    }
}
