//! Heap structural diagnostics: [`nrmi_heap::validate`] lifted into the
//! diagnostic engine (`NRMI-H00x`).
//!
//! The heap validator is the shared integrity oracle — restore tests,
//! chaos tests, and the protocol model checker all gate on it. This
//! module gives each violation class a stable code and span-ish context
//! so heap corruption reports render and gate exactly like schema and
//! protocol findings:
//!
//! * `H001` — dangling reference (a live slot points at a freed index).
//! * `H002` — unknown class id.
//! * `H003` — slot-arity mismatch against the class declaration.
//! * `H004` — field/element type mismatch.
//! * `H005` — malformed remote stub (non-`Long` key).

use nrmi_heap::validate::{validate, Violation};
use nrmi_heap::Heap;

use crate::diag::{Diagnostic, Report};

/// Validates `heap` and renders each violation as an error diagnostic.
/// `label` names the heap in context (e.g. `"client"`, `"server"`).
pub fn check_heap(label: &str, heap: &Heap) -> Report {
    validate(heap)
        .into_iter()
        .map(|v| violation_to_diag(label, &v))
        .collect()
}

fn violation_to_diag(label: &str, v: &Violation) -> Diagnostic {
    let code = match v {
        Violation::DanglingReference { .. } => "NRMI-H001",
        Violation::UnknownClass { .. } => "NRMI-H002",
        Violation::ArityMismatch { .. } => "NRMI-H003",
        Violation::TypeMismatch { .. } => "NRMI-H004",
        Violation::MalformedStub { .. } => "NRMI-H005",
    };
    let diag = Diagnostic::error(code, v.to_string()).with("heap", label);
    match v {
        Violation::DanglingReference {
            holder,
            slot,
            target,
        } => diag
            .with("object", holder)
            .with("slot", slot)
            .with("target", format!("#{target}")),
        Violation::UnknownClass { object, class } => {
            diag.with("object", object).with("class_index", class)
        }
        Violation::ArityMismatch {
            object,
            declared,
            actual,
        } => diag
            .with("object", object)
            .with("declared", declared)
            .with("actual", actual),
        Violation::TypeMismatch {
            object,
            slot,
            declared,
            found,
        } => diag
            .with("object", object)
            .with("slot", slot)
            .with("declared", format!("{declared:?}"))
            .with("found", found),
        Violation::MalformedStub { object } => diag.with("object", object),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrmi_heap::{ClassRegistry, Value};

    #[test]
    fn clean_heap_reports_nothing() {
        let mut reg = ClassRegistry::new();
        reg.define("Pair")
            .field_int("a")
            .field_ref("b")
            .serializable()
            .register();
        let heap = Heap::new(reg.snapshot());
        assert!(check_heap("client", &heap).is_empty());
    }

    #[test]
    fn dangling_reference_maps_to_h001_with_context() {
        let mut reg = ClassRegistry::new();
        let pair = reg
            .define("Pair")
            .field_int("a")
            .field_ref("b")
            .serializable()
            .register();
        let mut heap = Heap::new(reg.snapshot());
        let child = heap.alloc_default(pair).unwrap();
        let _parent = heap
            .alloc(pair, vec![Value::Int(1), Value::Ref(child)])
            .unwrap();
        heap.free(child).unwrap();
        let report = check_heap("server", &heap);
        assert!(report.has_errors());
        assert!(report.has_code("NRMI-H001"));
        let d = &report.diagnostics()[0];
        assert!(d.context.iter().any(|(k, v)| k == "heap" && v == "server"));
        assert!(d.context.iter().any(|(k, _)| k == "slot"));
    }
}
