//! Static descriptor analysis: wire-soundness of a [`ClassRegistry`] and
//! schema-drift detection between two registries.
//!
//! NRMI ships objects by walking descriptor metadata (the §5.3.1
//! reflective/portable split), so a *wrong* descriptor corrupts the wire
//! silently: the serializer happily emits what the registry says. These
//! checks run without executing anything.
//!
//! ## Single-registry soundness (`NRMI-S00x`)
//!
//! * `S001` — duplicate (shadowed) field names: name-based field access
//!   always resolves to the first occurrence, so the shadowed slot is
//!   unreachable by name and restore-by-name semantics diverge.
//! * `S002` — array/element disagreement: an `array` class without an
//!   element type (elements unserializable), an element type on a
//!   non-array (ignored metadata), or an array with declared fields
//!   (fields the wire never carries).
//! * `S003` — marker-flag contradictions that select impossible wire
//!   semantics: `restorable` without `serializable` (the paper's
//!   `Restorable extends Serializable`), or a user class carrying the
//!   internal `stub` flag alongside copying flags.
//! * `S004` — missing or malformed `@RemoteStub` class: `TAG_REMOTE`
//!   decoding materializes stubs, so a registry without the well-formed
//!   stub class cannot receive remote references.
//! * `S005` (warning) — an unmarked class: neither serializable,
//!   restorable, remote, nor internal; instances cannot cross the wire
//!   at all and fail at runtime with `NotSerializable`.
//!
//! Reference fields are untyped in this metadata model (every ref field
//! is `Object`, the dynamic class travels with the object), so "ref
//! field naming an unregistered class" and value-type cycles degenerate
//! here to the array/element checks above plus runtime `UnknownClass`
//! validation — see DESIGN.md §3d.
//!
//! ## Cross-registry drift (`NRMI-S01x`)
//!
//! [`fingerprint`] hashes everything wire-relevant about a class;
//! [`diff_registries`] compares a client and a server registry and
//! reports *who changed what*:
//!
//! * `S010` — class present on one side only.
//! * `S011` — field-layout drift (added / removed / renamed / retyped
//!   fields, by position).
//! * `S012` — flag or element-type drift (same layout, different
//!   semantics).
//! * `S013` — registration-index drift: class ids travel by index, so
//!   even structurally identical registries corrupt the wire when
//!   registration order differs.

use nrmi_heap::{ClassDescriptor, ClassRegistry, FieldType};

use crate::diag::{Diagnostic, Report};

/// Name of the auto-registered stub class (mirrors
/// `nrmi_heap::class::STUB_CLASS_NAME`, re-checked here).
const STUB_CLASS_NAME: &str = "@RemoteStub";

/// Analyzes one registry for wire-unsound metadata (`NRMI-S00x`).
pub fn analyze_registry(registry: &ClassRegistry) -> Report {
    let mut report = Report::new();
    for (_, desc) in registry.iter() {
        check_duplicate_fields(desc, &mut report);
        check_array_consistency(desc, &mut report);
        check_flag_contradictions(desc, &mut report);
        check_unmarked(desc, &mut report);
    }
    check_stub_class(registry, &mut report);
    report
}

fn check_duplicate_fields(desc: &ClassDescriptor, report: &mut Report) {
    for (i, field) in desc.fields().iter().enumerate() {
        if let Some(first) = desc.fields()[..i]
            .iter()
            .position(|f| f.name() == field.name())
        {
            report.push(
                Diagnostic::error(
                    "NRMI-S001",
                    format!(
                        "class `{}` declares field `{}` twice; by-name access always \
                         resolves to slot {first}, so slot {i} is shadowed",
                        desc.name(),
                        field.name(),
                    ),
                )
                .with("class", desc.name())
                .with("field", field.name())
                .with("slots", format!("{first} and {i}")),
            );
        }
    }
}

fn check_array_consistency(desc: &ClassDescriptor, report: &mut Report) {
    let flags = desc.flags();
    if flags.array && desc.element_type().is_none() {
        report.push(
            Diagnostic::error(
                "NRMI-S002",
                format!(
                    "array class `{}` has no element type; its elements cannot be \
                     type-checked or serialized",
                    desc.name()
                ),
            )
            .with("class", desc.name()),
        );
    }
    if !flags.array && desc.element_type().is_some() {
        report.push(
            Diagnostic::error(
                "NRMI-S002",
                format!(
                    "non-array class `{}` declares an element type the wire format \
                     will never consult",
                    desc.name()
                ),
            )
            .with("class", desc.name()),
        );
    }
    if flags.array && !desc.fields().is_empty() {
        report.push(
            Diagnostic::error(
                "NRMI-S002",
                format!(
                    "array class `{}` declares {} named field(s); array payloads are \
                     element vectors and the fields never travel",
                    desc.name(),
                    desc.field_count()
                ),
            )
            .with("class", desc.name()),
        );
    }
}

fn check_flag_contradictions(desc: &ClassDescriptor, report: &mut Report) {
    let flags = desc.flags();
    if flags.restorable && !flags.serializable {
        report.push(
            Diagnostic::error(
                "NRMI-S003",
                format!(
                    "class `{}` is restorable but not serializable; Restorable extends \
                     Serializable, and the copy-restore encoder requires the copy half",
                    desc.name()
                ),
            )
            .with("class", desc.name()),
        );
    }
    if flags.stub && desc.name() != STUB_CLASS_NAME {
        report.push(
            Diagnostic::error(
                "NRMI-S003",
                format!(
                    "class `{}` carries the internal stub flag; stubs are \
                     middleware-owned and must only be the auto-registered `{}`",
                    desc.name(),
                    STUB_CLASS_NAME
                ),
            )
            .with("class", desc.name()),
        );
    }
    if flags.stub && (flags.serializable || flags.restorable) {
        report.push(
            Diagnostic::error(
                "NRMI-S003",
                format!(
                    "stub class `{}` is marked for copying; stubs travel via \
                     TAG_REMOTE, never by value",
                    desc.name()
                ),
            )
            .with("class", desc.name()),
        );
    }
}

fn check_unmarked(desc: &ClassDescriptor, report: &mut Report) {
    let flags = desc.flags();
    if !flags.serializable && !flags.restorable && !flags.remote && !flags.stub && !flags.array {
        report.push(
            Diagnostic::warning(
                "NRMI-S005",
                format!(
                    "class `{}` has no passing-semantics marker; instances reaching a \
                     call boundary fail with NotSerializable",
                    desc.name()
                ),
            )
            .with("class", desc.name()),
        );
    }
}

fn check_stub_class(registry: &ClassRegistry, report: &mut Report) {
    match registry.by_name(STUB_CLASS_NAME) {
        None => report.push(Diagnostic::error(
            "NRMI-S004",
            format!(
                "registry has no `{STUB_CLASS_NAME}` class; TAG_REMOTE decoding cannot \
                 materialize remote references (registry built without \
                 ClassRegistry::new?)"
            ),
        )),
        Some(id) => {
            let desc = registry.get(id).expect("by_name returned the id");
            let shape_ok = desc.flags().stub
                && desc.field_count() == 1
                && desc.fields()[0].ty() == FieldType::Long;
            if !shape_ok {
                report.push(
                    Diagnostic::error(
                        "NRMI-S004",
                        format!(
                            "`{STUB_CLASS_NAME}` is malformed: expected the stub flag and \
                             exactly one Long key field, found {} field(s)",
                            desc.field_count()
                        ),
                    )
                    .with("class", desc.name()),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fingerprints and drift
// ---------------------------------------------------------------------------

/// A structural fingerprint of one class: a stable 64-bit hash over every
/// wire-relevant part of the descriptor (name, flags, element type, and
/// each field's name and type, in declaration order). Two descriptors
/// fingerprint equal iff they serialize objects identically.
pub fn fingerprint(desc: &ClassDescriptor) -> u64 {
    let mut h = Fnv::new();
    h.write(desc.name().as_bytes());
    let f = desc.flags();
    h.write(&[
        u8::from(f.serializable),
        u8::from(f.restorable),
        u8::from(f.remote),
        u8::from(f.array),
        u8::from(f.stub),
    ]);
    h.write(&[element_code(desc.element_type())]);
    for field in desc.fields() {
        h.write(field.name().as_bytes());
        h.write(&[0xff, type_code(field.ty())]);
    }
    h.finish()
}

/// Fingerprints every class of `registry` as `(name, fingerprint)` pairs
/// in registration order — the unit a deployment publishes so a peer can
/// diff schemas without shipping descriptors.
pub fn fingerprints(registry: &ClassRegistry) -> Vec<(String, u64)> {
    registry
        .iter()
        .map(|(_, d)| (d.name().to_owned(), fingerprint(d)))
        .collect()
}

fn type_code(ty: FieldType) -> u8 {
    match ty {
        FieldType::Bool => 1,
        FieldType::Int => 2,
        FieldType::Long => 3,
        FieldType::Double => 4,
        FieldType::Str => 5,
        FieldType::Ref => 6,
        FieldType::Any => 7,
    }
}

fn element_code(ty: Option<FieldType>) -> u8 {
    ty.map(type_code).unwrap_or(0)
}

/// FNV-1a, 64-bit. Hand-rolled so fingerprints are stable across std
/// hasher changes (they may be persisted and compared across builds).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Diffs a client registry against a server registry and reports schema
/// drift (`NRMI-S01x`) with precise who-changed-what context. `a_name`
/// and `b_name` label the two sides in messages (e.g. `"client"`,
/// `"server"`).
pub fn diff_registries(a_name: &str, a: &ClassRegistry, b_name: &str, b: &ClassRegistry) -> Report {
    let mut report = Report::new();
    for (a_id, a_desc) in a.iter() {
        match b.by_name(a_desc.name()) {
            None => report.push(
                Diagnostic::error(
                    "NRMI-S010",
                    format!(
                        "class `{}` exists on {a_name} but not on {b_name}",
                        a_desc.name()
                    ),
                )
                .with("class", a_desc.name())
                .with("present_on", a_name),
            ),
            Some(b_id) => {
                let b_desc = b.get(b_id).expect("by_name returned the id");
                diff_class(a_name, a_desc, b_name, b_desc, &mut report);
                if a_id.index() != b_id.index() {
                    report.push(
                        Diagnostic::error(
                            "NRMI-S013",
                            format!(
                                "class `{}` is registered at index {} on {a_name} but {} \
                                 on {b_name}; class ids travel by index, so every object \
                                 of this class decodes as the wrong class",
                                a_desc.name(),
                                a_id.index(),
                                b_id.index()
                            ),
                        )
                        .with("class", a_desc.name())
                        .with(a_name, a_id.index())
                        .with(b_name, b_id.index()),
                    );
                }
            }
        }
    }
    for (_, b_desc) in b.iter() {
        if a.by_name(b_desc.name()).is_none() {
            report.push(
                Diagnostic::error(
                    "NRMI-S010",
                    format!(
                        "class `{}` exists on {b_name} but not on {a_name}",
                        b_desc.name()
                    ),
                )
                .with("class", b_desc.name())
                .with("present_on", b_name),
            );
        }
    }
    report
}

fn diff_class(
    a_name: &str,
    a: &ClassDescriptor,
    b_name: &str,
    b: &ClassDescriptor,
    report: &mut Report,
) {
    if fingerprint(a) == fingerprint(b) {
        return;
    }
    let class = a.name();
    // Field-layout drift, position by position (S011).
    let max = a.field_count().max(b.field_count());
    for i in 0..max {
        match (a.fields().get(i), b.fields().get(i)) {
            (Some(fa), Some(fb)) => {
                if fa.name() != fb.name() || fa.ty() != fb.ty() {
                    report.push(
                        Diagnostic::error(
                            "NRMI-S011",
                            format!(
                                "class `{class}` field {i} drifted: {a_name} declares \
                                 `{}: {:?}`, {b_name} declares `{}: {:?}`",
                                fa.name(),
                                fa.ty(),
                                fb.name(),
                                fb.ty()
                            ),
                        )
                        .with("class", class)
                        .with("slot", i),
                    );
                }
            }
            (Some(fa), None) => report.push(
                Diagnostic::error(
                    "NRMI-S011",
                    format!(
                        "class `{class}` field {i} (`{}: {:?}`) exists on {a_name} but \
                         not on {b_name}",
                        fa.name(),
                        fa.ty()
                    ),
                )
                .with("class", class)
                .with("slot", i)
                .with("present_on", a_name),
            ),
            (None, Some(fb)) => report.push(
                Diagnostic::error(
                    "NRMI-S011",
                    format!(
                        "class `{class}` field {i} (`{}: {:?}`) exists on {b_name} but \
                         not on {a_name}",
                        fb.name(),
                        fb.ty()
                    ),
                )
                .with("class", class)
                .with("slot", i)
                .with("present_on", b_name),
            ),
            (None, None) => unreachable!(),
        }
    }
    // Flag / element drift (S012).
    if a.flags() != b.flags() {
        report.push(
            Diagnostic::error(
                "NRMI-S012",
                format!(
                    "class `{class}` marker flags drifted: {a_name} has {:?}, {b_name} \
                     has {:?}",
                    a.flags(),
                    b.flags()
                ),
            )
            .with("class", class),
        );
    }
    if a.element_type() != b.element_type() {
        report.push(
            Diagnostic::error(
                "NRMI-S012",
                format!(
                    "class `{class}` element type drifted: {a_name} has {:?}, {b_name} \
                     has {:?}",
                    a.element_type(),
                    b.element_type()
                ),
            )
            .with("class", class),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrmi_heap::{ClassFlags, FieldDescriptor};

    fn sound_registry() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.define("Tree")
            .field_int("data")
            .field_ref("left")
            .field_ref("right")
            .restorable()
            .register();
        reg.define_array("Object[]", FieldType::Ref);
        reg
    }

    #[test]
    fn sound_registry_is_clean() {
        let report = analyze_registry(&sound_registry());
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let reg = sound_registry();
        let fp1 = fingerprints(&reg);
        let fp2 = fingerprints(&sound_registry());
        assert_eq!(fp1, fp2, "same schema, same fingerprints");
        // Any wire-relevant change must move the fingerprint.
        let base = ClassDescriptor::new(
            "C",
            vec![FieldDescriptor::new("x", FieldType::Int)],
            ClassFlags {
                serializable: true,
                ..ClassFlags::default()
            },
            None,
        );
        let renamed = ClassDescriptor::new(
            "C",
            vec![FieldDescriptor::new("y", FieldType::Int)],
            base.flags(),
            None,
        );
        let retyped = ClassDescriptor::new(
            "C",
            vec![FieldDescriptor::new("x", FieldType::Long)],
            base.flags(),
            None,
        );
        let reflagged = ClassDescriptor::new(
            "C",
            vec![FieldDescriptor::new("x", FieldType::Int)],
            ClassFlags {
                serializable: true,
                restorable: true,
                ..ClassFlags::default()
            },
            None,
        );
        let fp = fingerprint(&base);
        assert_ne!(fp, fingerprint(&renamed));
        assert_ne!(fp, fingerprint(&retyped));
        assert_ne!(fp, fingerprint(&reflagged));
    }

    #[test]
    fn field_boundaries_do_not_collide() {
        // ["ab", "c"] vs ["a", "bc"] must fingerprint differently: field
        // names are delimited in the hash stream.
        let f = |names: &[&str]| {
            ClassDescriptor::new(
                "C",
                names
                    .iter()
                    .map(|n| FieldDescriptor::new(*n, FieldType::Int))
                    .collect(),
                ClassFlags::default(),
                None,
            )
        };
        assert_ne!(fingerprint(&f(&["ab", "c"])), fingerprint(&f(&["a", "bc"])));
    }

    #[test]
    fn identical_registries_diff_clean() {
        let report = diff_registries("client", &sound_registry(), "server", &sound_registry());
        assert!(report.is_empty(), "{}", report.render());
    }
}
