//! Protocol model checker for the warm-call handshake (`NRMI-P00x`).
//!
//! The cold/warm/delta handshake is encoded as an explicit transition
//! system over [`Frame`] message types, and [`model_check`] exhaustively
//! enumerates every bounded sequence of protocol actions against the
//! **real** implementation: [`client_invoke_warm_with_stats`] on one
//! side, [`server_handle_warm_call`] on the other, joined by an
//! in-process dispatch transport instead of threads. Each sequence runs
//! a fresh client/server pair from scratch, so every prefix of every
//! enumerated sequence is exercised.
//!
//! ## Action alphabet
//!
//! The *core* alphabet drives the protocol through its honest
//! transitions:
//!
//! | action | protocol edge exercised |
//! |--------|-------------------------|
//! | `Call` | seed (gen 0) on first use, request delta (gen ≥ 1) after |
//! | `MutateClient` | dirty-position classification in the request delta |
//! | `Graft` | new-object shipping in the request delta |
//! | `Prune` | freed-position shipping and server-side frees |
//! | `MutateServer` | out-of-band mutation → `CacheStale` repair patch, or client-wins merge when the request rewrites the same object |
//! | `Evict` | `CacheEvict` → server frees the cached graph |
//!
//! The *adversarial* alphabet adds hand-built frames the client
//! implementation would never send: a stale generation, an unknown cache
//! id, and a garbage payload. The server must answer `CacheMiss` or
//! `CallError` — never panic, never serve stale state.
//!
//! ## Invariants, checked after every action
//!
//! * `P001` / `P002` — client / server heap fails
//!   [`nrmi_heap::validate`] (the shared corruption oracle).
//! * `P003` — warm result diverges from the **local oracle twin**: a
//!   plain local heap holding the same graph, mutated by the same
//!   deterministic service logic with no middleware in between. After
//!   every `Call`, the warm return value must equal the twin's and the
//!   two graphs must be [`nrmi_heap::graph::isomorphic`]. Because the
//!   twin is exactly what a cold copy-restore call computes, warm ≡ twin
//!   subsumes warm ≡ cold.
//! * `P004` — an unexpected frame or transport outcome: a reply the
//!   state machine forbids ([`judge_reply`]), or a deadlock (the client
//!   blocks on a reply the server never produced, surfaced as a
//!   disconnect by the queue-backed transport).
//! * `P005` — generation lockstep broken: the client's next-generation
//!   counter disagrees with the server's for a live session.
//! * `P006` — a panic anywhere in the sequence (caught per sequence;
//!   the diagnostic carries the action trace and panic message).
//! * `P007` — at-most-once broken: the number of service executions
//!   disagrees with the number of completed calls, under faults (the
//!   reliability model) or across two connections sharing one reply
//!   cache (the shared model).
//! * `P008` — a reply observed a torn heap state: after any
//!   two-connection interleaving on the lock-split shared server, some
//!   client graph no longer matches its private oracle twin — another
//!   connection's call leaked into this one's restore.
//! * `P009` — reply routing broken: with several calls in flight on one
//!   multiplexed connection (the pipelined model), a reply resolved the
//!   wrong call — a collected value diverged from that call's private
//!   oracle, a consumed call id produced a ghost reply, or a call frame
//!   escaped the connection untagged.
//! * `P010` — the reactor dispatch discipline broken: enumerating the
//!   real [`nrmi_core::reactor_classify`] step function over two
//!   connections and an explicit job queue (the reactor model), a fresh
//!   pipelineable call failed to offload, a retransmitted call id
//!   offloaded a second execution, a reply reached the wrong
//!   connection, or a worker dispatch restored a graph its private
//!   oracle disowns (a torn heap) — each checked against
//!   per-connection oracle twins exactly as `P008`/`P009` are.
//! * `P011` — shared-graph coherence or lease safety broken: with two
//!   warm clients leased onto ONE server heap (the shared-graph model),
//!   each call writing the other's graph out-of-band, a client read
//!   stale state, a `CacheStale` repair clobbered an unshipped local
//!   write (the positional merge rule), or a connection teardown freed
//!   an object another connection's live session still synchronizes.

use std::collections::HashSet;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nrmi_core::ClientNode;
use nrmi_core::{
    client_apply_reply, client_evict_warm, client_invoke_warm_with_stats, client_marshal_call,
    server_handle_warm_call, CallOptions, FnService, NrmiError, PassMode, PendingCall, ServerNode,
    WarmCaches,
};
use nrmi_heap::validate::validate;
use nrmi_heap::{graph, ClassRegistry, Heap, HeapAccess, ObjId, Value};
use nrmi_transport::{Frame, MachineSpec, Transport, TransportError};

use crate::diag::{Diagnostic, Report};

/// One protocol action the checker can take. See the module docs for
/// the transition each exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// A warm call through the real client API (seeds on first use).
    Call,
    /// Mutate the root's `data` on the client (a dirty position).
    MutateClient,
    /// Splice a fresh node above the root's left subtree (a new object).
    Graft,
    /// Unlink and free the root's left subtree (freed positions).
    Prune,
    /// Mutate the server's cached graph out-of-band (coherence drop).
    MutateServer,
    /// Orderly client-side eviction of the warm session.
    Evict,
    /// Inject a warm request with a stale generation (must miss).
    StaleGeneration,
    /// Inject a warm request naming a cache id never seeded (must miss).
    UnknownCache,
    /// Inject a warm request whose payload is garbage (must error).
    GarbagePayload,
}

/// The honest alphabet: every transition of the cold/warm/delta state
/// machine, including coherence invalidation and eviction.
pub const CORE_ALPHABET: [Action; 6] = [
    Action::Call,
    Action::MutateClient,
    Action::Graft,
    Action::Prune,
    Action::MutateServer,
    Action::Evict,
];

/// Core alphabet plus hand-built hostile frames.
pub const ADVERSARIAL_ALPHABET: [Action; 9] = [
    Action::Call,
    Action::MutateClient,
    Action::Graft,
    Action::Prune,
    Action::MutateServer,
    Action::Evict,
    Action::StaleGeneration,
    Action::UnknownCache,
    Action::GarbagePayload,
];

/// What the state machine expects back for a frame it just sent; the
/// context [`judge_reply`] judges a reply frame against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyContext {
    /// A generation-0 seed carrying a full graph.
    SeedCall,
    /// An in-step warm request (delta); a miss is legal (the entry was
    /// lost) and so is a stale patch (out-of-band writes repaired in
    /// place), an error is not.
    WarmInStep,
    /// A warm request with a generation the server cannot be at.
    StaleGeneration,
    /// A warm request naming a cache id that was never seeded.
    UnknownCache,
    /// A warm request whose payload is not a well-formed delta.
    GarbagePayload,
}

/// Judges one reply frame against the protocol state machine. Returns
/// `None` when the reply is a legal transition, or the `NRMI-P004`
/// diagnostic describing the violation. Pure — usable both by the
/// enumerator and by seeded-fault tests.
pub fn judge_reply(ctx: ReplyContext, reply: &Frame) -> Option<Diagnostic> {
    let legal = match ctx {
        // A seed must complete or fail; the server has nothing to miss on.
        ReplyContext::SeedCall => {
            matches!(reply, Frame::CallReply { .. } | Frame::CallError { .. })
        }
        // In-step warm: reply; miss if the entry was lost; or a
        // targeted repair patch if it went stale out-of-band.
        ReplyContext::WarmInStep => matches!(
            reply,
            Frame::CallReply { .. }
                | Frame::CacheMiss
                | Frame::CacheStale { .. }
                | Frame::CallError { .. }
        ),
        // Serving a stale or unknown session would be state corruption;
        // the only sound answer is a miss.
        ReplyContext::StaleGeneration | ReplyContext::UnknownCache => {
            matches!(reply, Frame::CacheMiss)
        }
        // Garbage must surface as a typed error (or a miss if the
        // session was already gone) — never a successful reply.
        ReplyContext::GarbagePayload => {
            matches!(reply, Frame::CallError { .. } | Frame::CacheMiss)
        }
    };
    if legal {
        None
    } else {
        Some(
            Diagnostic::error(
                "NRMI-P004",
                format!("illegal protocol transition: {ctx:?} answered with {reply:?}"),
            )
            .with("context", format!("{ctx:?}"))
            .with("reply", format!("{reply:?}")),
        )
    }
}

// ---------------------------------------------------------------------------
// The dispatch transport: client and server joined without threads
// ---------------------------------------------------------------------------

/// A transport that swallows frames and never produces one; stands in
/// for the (unused) callback channel when the checker invokes the server
/// handler directly.
struct NullTransport;

impl Transport for NullTransport {
    fn send(&mut self, _frame: &Frame) -> nrmi_transport::Result<()> {
        Ok(())
    }
    fn recv(&mut self) -> nrmi_transport::Result<Frame> {
        Err(TransportError::Disconnected)
    }
    fn recv_timeout(&mut self, _timeout: Duration) -> nrmi_transport::Result<Frame> {
        Err(TransportError::Disconnected)
    }
}

/// The server side of the model: a real [`ServerNode`] plus its warm
/// caches, exposed to the client as a [`Transport`]. `send` dispatches
/// the frame to [`server_handle_warm_call`] synchronously and queues the
/// reply; `recv` drains the queue. A recv on an empty queue means the
/// server produced no reply — the threaded deployment would deadlock —
/// and surfaces as [`TransportError::Disconnected`], which the checker
/// reports as `NRMI-P004`.
struct ServerSide {
    server: ServerNode,
    caches: WarmCaches,
    replies: VecDeque<Frame>,
    faults: FaultFlags,
}

/// Single-shot fault counters the reliability alphabet arms; each is
/// consumed by the next frame it applies to.
#[derive(Default)]
struct FaultFlags {
    drop_requests: u32,
    drop_replies: u32,
    duplicate_requests: u32,
    disconnects: u32,
}

impl ServerSide {
    /// Dispatches one frame to the server, returning its reply (if the
    /// frame warrants one).
    fn dispatch(&mut self, frame: &Frame) -> Option<Frame> {
        match frame {
            // The at-most-once envelope: consult the node's reply cache
            // before executing, exactly as the real serve loop does.
            Frame::Tagged { nonce, seq, frame } => {
                use nrmi_core::ReplyDecision;
                match self.server.replies.decision(*nonce, *seq) {
                    ReplyDecision::Replay(cached) => Some(Frame::ReplyCached {
                        nonce: *nonce,
                        seq: *seq,
                        frame: Box::new(cached),
                    }),
                    ReplyDecision::Evicted => Some(Frame::ReplyCached {
                        nonce: *nonce,
                        seq: *seq,
                        frame: Box::new(nrmi_core::reliable::evicted_reply()),
                    }),
                    // The model dispatches each frame to completion before
                    // the next, so the cross-connection executing marker
                    // (set only by `begin`) is never observed here; the
                    // real serve loop drops such duplicates unanswered.
                    ReplyDecision::InProgress => None,
                    ReplyDecision::Fresh => {
                        let reply = self.dispatch(frame)?;
                        self.server.replies.store(*nonce, *seq, &reply);
                        Some(Frame::Tagged {
                            nonce: *nonce,
                            seq: *seq,
                            frame: Box::new(reply),
                        })
                    }
                }
            }
            Frame::CallRequestWarm {
                service,
                method,
                mode,
                cache_id,
                generation,
                payload,
            } => Some(server_handle_warm_call(
                &mut self.server,
                &mut self.caches,
                &mut NullTransport,
                service,
                method,
                *mode,
                *cache_id,
                *generation,
                payload,
            )),
            Frame::CacheEvict { cache_id } => {
                self.caches.evict(&mut self.server.state.heap, *cache_id);
                None
            }
            // Plain (cold) calls: the pipelined model issues copy-restore
            // `CallRequest`s through the split-phase client API; dispatch
            // through the serve loop's real step function.
            Frame::CallRequest { .. } => Some(nrmi_core::dispatch_tagged(
                &mut self.server,
                &mut self.caches,
                &mut NullTransport,
                frame.clone(),
            )),
            // The model's graphs never contain stubs, so the client never
            // legitimately falls back to a cold call; anything else here
            // is itself a protocol violation and is answered with an
            // error the checker will surface.
            other => Some(Frame::CallError {
                message: format!("checker: unmodeled frame {other:?}"),
            }),
        }
    }
}

impl Transport for ServerSide {
    fn send(&mut self, frame: &Frame) -> nrmi_transport::Result<()> {
        if let Some(reply) = self.dispatch(frame) {
            self.replies.push_back(reply);
        }
        Ok(())
    }

    fn recv(&mut self) -> nrmi_transport::Result<Frame> {
        // An empty queue is the no-reply deadlock, made finite.
        self.replies.pop_front().ok_or(TransportError::Disconnected)
    }

    fn recv_timeout(&mut self, _timeout: Duration) -> nrmi_transport::Result<Frame> {
        self.recv()
    }
}

// ---------------------------------------------------------------------------
// The world: real client + real server + local oracle twin
// ---------------------------------------------------------------------------

const SVC: &str = "svc";
const METHOD: &str = "run";

/// The deterministic service body, shared verbatim between the remote
/// service and the local oracle twin: DFS from the root, rewrite each
/// `data` to `3*data + 1`, return the sum of the *old* values.
fn service_logic(heap: &mut dyn HeapAccess, root: ObjId) -> Result<Value, NrmiError> {
    let mut stack = vec![root];
    let mut sum: i64 = 0;
    while let Some(id) = stack.pop() {
        let d = heap
            .get_field(id, "data")?
            .as_int()
            .ok_or_else(|| NrmiError::app("data is not an int"))?;
        sum += i64::from(d);
        heap.set_field(id, "data", Value::Int(d.wrapping_mul(3).wrapping_add(1)))?;
        if let Some(l) = heap.get_ref(id, "left")? {
            stack.push(l);
        }
        if let Some(r) = heap.get_ref(id, "right")? {
            stack.push(r);
        }
    }
    Ok(Value::Long(sum))
}

/// One fresh client/server/twin triple, re-created per enumerated
/// sequence.
struct World {
    client: ClientNode,
    link: ServerSide,
    root: ObjId,
    /// The oracle: a plain local heap holding the same graph, touched by
    /// the same logic with no middleware in between.
    twin: Heap,
    twin_root: ObjId,
    /// The server-side root of the cached session graph, leaked by the
    /// service body so `MutateServer` can poke it out-of-band.
    server_root: Arc<Mutex<Option<ObjId>>>,
    /// True when the client has written the root object since its last
    /// completed call. The coherence merge rule keys off this: a
    /// server-side poke of the root is only *visible* to the next call
    /// when the client's own request delta does not rewrite the root
    /// (client wins at object granularity when it does).
    client_wrote_root: bool,
    /// Counter for grafted nodes (also mirrored into the twin).
    next_data: i32,
}

impl World {
    fn new() -> Self {
        let mut reg = ClassRegistry::new();
        reg.define("Node")
            .field_int("data")
            .field_ref("left")
            .field_ref("right")
            .restorable()
            .register();
        let registry = reg.snapshot();

        let mut client = ClientNode::new(registry.clone(), MachineSpec::fast());
        let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
        let server_root: Arc<Mutex<Option<ObjId>>> = Arc::new(Mutex::new(None));
        let leaked = Arc::clone(&server_root);
        server.bind(
            SVC,
            Box::new(FnService::new(move |_method, args, heap| {
                let root = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("want a root reference"))?;
                *leaked.lock().expect("poisoned") = Some(root);
                service_logic(heap, root)
            })),
        );

        let root = build_tree(&mut client.state.heap, &registry);
        let mut twin = Heap::new(registry.clone());
        let twin_root = build_tree(&mut twin, &registry);

        World {
            client,
            link: ServerSide {
                server,
                caches: WarmCaches::new(),
                replies: VecDeque::new(),
                faults: FaultFlags::default(),
            },
            root,
            twin,
            twin_root,
            server_root,
            client_wrote_root: false,
            next_data: 100,
        }
    }

    /// Applies one action to the world, reporting violations into
    /// `report`.
    fn step(&mut self, action: Action, report: &mut Report) {
        match action {
            Action::Call => self.do_call(report),
            Action::MutateClient => self.do_mutate_client(report),
            Action::Graft => self.do_graft(report),
            Action::Prune => self.do_prune(report),
            Action::MutateServer => self.do_mutate_server(),
            Action::Evict => self.do_evict(report),
            Action::StaleGeneration => self.inject(ReplyContext::StaleGeneration, report),
            Action::UnknownCache => self.inject(ReplyContext::UnknownCache, report),
            Action::GarbagePayload => self.inject(ReplyContext::GarbagePayload, report),
        }
        self.check_heaps(report);
        self.check_lockstep(report);
    }

    /// Mirrors the coherence merge rule into the twin: a `MutateServer`
    /// poke of the root becomes visible to the next call exactly when
    /// the warm session is live on both sides **and** the client has not
    /// written the root itself since its last call (otherwise the
    /// client's in-flight slots win and the poke is erased). When
    /// visible, the server's current root `data` is what the call will
    /// compute with, so the twin adopts it. When the server was never
    /// poked this is a no-op: between calls only pokes can make the
    /// server's root diverge from the twin's.
    fn sync_twin_with_visible_pokes(&mut self) {
        if self.client_wrote_root {
            return;
        }
        let Some(server_root) = *self.server_root.lock().expect("poisoned") else {
            return;
        };
        let (Some(cache_id), Some(client_gen)) = (
            self.client.warm.cache_id(SVC),
            self.client.warm.generation(SVC),
        ) else {
            return; // no client session: the next call reseeds wholesale
        };
        if self.link.caches.generation_of(cache_id) != Some(client_gen) {
            return; // server entry gone or out of step: reseed, not repair
        }
        if let Ok(Value::Int(d)) = self.link.server.state.heap.get_field(server_root, "data") {
            let _ = self.twin.set_field(self.twin_root, "data", Value::Int(d));
        }
    }

    fn do_call(&mut self, report: &mut Report) {
        self.sync_twin_with_visible_pokes();
        self.client_wrote_root = false;
        let warm = client_invoke_warm_with_stats(
            &mut self.client,
            &mut self.link,
            SVC,
            METHOD,
            &[Value::Ref(self.root)],
        );
        let oracle = service_logic(&mut self.twin, self.twin_root);
        match (warm, oracle) {
            (Ok((got, _stats)), Ok(want)) => {
                if got != want {
                    report.push(
                        Diagnostic::error(
                            "NRMI-P003",
                            format!(
                                "warm call diverged from the local oracle: warm returned \
                                 {got:?}, direct execution returned {want:?}"
                            ),
                        )
                        .with("warm", format!("{got:?}"))
                        .with("oracle", format!("{want:?}")),
                    );
                }
                match graph::isomorphic(
                    &self.client.state.heap,
                    self.root,
                    &self.twin,
                    self.twin_root,
                ) {
                    Ok(true) => {}
                    Ok(false) => report.push(Diagnostic::error(
                        "NRMI-P003",
                        "restored client graph is not isomorphic to the local oracle graph",
                    )),
                    Err(e) => report.push(Diagnostic::error(
                        "NRMI-P003",
                        format!("isomorphism comparison failed: {e}"),
                    )),
                }
            }
            (Err(e), Ok(_)) => report.push(
                Diagnostic::error(
                    "NRMI-P004",
                    format!("warm call failed where the oracle succeeded: {e}"),
                )
                .with("error", e.to_string()),
            ),
            (_, Err(e)) => report.push(Diagnostic::error(
                "NRMI-P004",
                format!("local oracle itself failed (checker bug): {e}"),
            )),
        }
    }

    fn do_mutate_client(&mut self, report: &mut Report) {
        for (heap, root) in [
            (&mut self.client.state.heap, self.root),
            (&mut self.twin, self.twin_root),
        ] {
            let r = (|| -> Result<(), NrmiError> {
                let d = heap
                    .get_field(root, "data")?
                    .as_int()
                    .ok_or_else(|| NrmiError::app("data is not an int"))?;
                heap.set_field(root, "data", Value::Int(d.wrapping_add(10)))?;
                Ok(())
            })();
            if let Err(e) = r {
                report.push(Diagnostic::error(
                    "NRMI-P001",
                    format!("client mutation failed: {e}"),
                ));
            }
        }
        self.client_wrote_root = true;
    }

    fn do_graft(&mut self, report: &mut Report) {
        let data = self.next_data;
        self.next_data += 1;
        self.client_wrote_root = true; // root.left is rewritten below
        for (heap, root) in [
            (&mut self.client.state.heap, self.root),
            (&mut self.twin, self.twin_root),
        ] {
            let r = (|| -> Result<(), NrmiError> {
                let class = heap.registry().by_name("Node").expect("registered");
                let old_left = heap.get_field(root, "left")?;
                let fresh = heap.alloc(class, vec![Value::Int(data), old_left, Value::Null])?;
                heap.set_field(root, "left", Value::Ref(fresh))?;
                Ok(())
            })();
            if let Err(e) = r {
                report.push(Diagnostic::error(
                    "NRMI-P001",
                    format!("client graft failed: {e}"),
                ));
            }
        }
    }

    fn do_prune(&mut self, report: &mut Report) {
        // A prune only writes the root when there is something to cut;
        // both heaps agree on that by lockstep construction.
        if matches!(self.client.state.heap.get_ref(self.root, "left"), Ok(Some(_))) {
            self.client_wrote_root = true;
        }
        for (heap, root) in [
            (&mut self.client.state.heap, self.root),
            (&mut self.twin, self.twin_root),
        ] {
            let r = (|| -> Result<(), NrmiError> {
                let Some(left) = heap.get_ref(root, "left")? else {
                    return Ok(()); // nothing to prune
                };
                heap.set_field(root, "left", Value::Null)?;
                // The graph is a tree by construction, so the whole left
                // subtree is garbage once unlinked.
                for id in reachable_from(heap, left) {
                    heap.free(id)?;
                }
                Ok(())
            })();
            if let Err(e) = r {
                report.push(Diagnostic::error(
                    "NRMI-P001",
                    format!("client prune failed: {e}"),
                ));
            }
        }
    }

    fn do_mutate_server(&mut self) {
        // An out-of-band server-side write: another connection or a local
        // caller touching the cached graph. The version vector must keep
        // the next warm call from reading stale state — either a
        // `CacheStale` patch repairs the client's copy, or the client's
        // own in-flight write to the same object wins the merge.
        let root = *self.server_root.lock().expect("poisoned");
        if let Some(root) = root {
            let heap = &mut self.link.server.state.heap;
            if let Ok(Value::Int(d)) = heap.get_field(root, "data") {
                let _ = heap.set_field(root, "data", Value::Int(d.wrapping_add(1000)));
            }
        }
    }

    fn do_evict(&mut self, report: &mut Report) {
        if let Err(e) = client_evict_warm(&mut self.client, &mut self.link, SVC) {
            report.push(Diagnostic::error(
                "NRMI-P004",
                format!("eviction failed: {e}"),
            ));
        }
        // The eviction freed the server's session graph; the leaked root
        // no longer names anything MutateServer may touch.
        *self.server_root.lock().expect("poisoned") = None;
    }

    /// Builds and injects one hostile frame, judging the reply against
    /// the state machine.
    fn inject(&mut self, ctx: ReplyContext, report: &mut Report) {
        let mode = CallOptions::copy_restore_delta().to_wire();
        let frame = match ctx {
            ReplyContext::StaleGeneration => {
                let (Some(cache_id), Some(generation)) = (
                    self.client.warm.cache_id(SVC),
                    self.client.warm.generation(SVC),
                ) else {
                    return; // no session to be stale against
                };
                Frame::CallRequestWarm {
                    service: SVC.to_owned(),
                    method: METHOD.to_owned(),
                    mode,
                    cache_id,
                    generation: generation + 7,
                    payload: Vec::new(),
                }
            }
            ReplyContext::UnknownCache => Frame::CallRequestWarm {
                service: SVC.to_owned(),
                method: METHOD.to_owned(),
                mode,
                cache_id: u64::MAX,
                generation: 3,
                payload: Vec::new(),
            },
            ReplyContext::GarbagePayload => {
                let (Some(cache_id), Some(generation)) = (
                    self.client.warm.cache_id(SVC),
                    self.client.warm.generation(SVC),
                ) else {
                    return; // garbage against a live session or nothing
                };
                Frame::CallRequestWarm {
                    service: SVC.to_owned(),
                    method: METHOD.to_owned(),
                    mode,
                    cache_id,
                    generation,
                    payload: vec![0xFF, 0x00, 0x01],
                }
            }
            _ => unreachable!("inject only models adversarial contexts"),
        };
        match self.link.dispatch(&frame) {
            Some(reply) => {
                if let Some(diag) = judge_reply(ctx, &reply) {
                    report.push(diag);
                }
            }
            None => report.push(Diagnostic::error(
                "NRMI-P004",
                format!("server produced no reply to {ctx:?} (deadlock)"),
            )),
        }
        // The injected frame consumed the server-side entry (dropped on
        // mismatch/garbage): the honest client is now out of sync by
        // design and recovers through CacheMiss → reseed on its next
        // call. That recovery is part of what the enumeration covers.
    }

    fn check_heaps(&mut self, report: &mut Report) {
        for (label, code, heap) in [
            ("client", "NRMI-P001", &self.client.state.heap),
            ("server", "NRMI-P002", &self.link.server.state.heap),
            ("oracle", "NRMI-P001", &self.twin),
        ] {
            for v in validate(heap) {
                report.push(
                    Diagnostic::error(code, format!("{label} heap corrupted: {v}"))
                        .with("heap", label),
                );
            }
        }
    }

    fn check_lockstep(&mut self, report: &mut Report) {
        let (Some(cache_id), Some(client_gen)) = (
            self.client.warm.cache_id(SVC),
            self.client.warm.generation(SVC),
        ) else {
            return;
        };
        // The server may legitimately have dropped the entry (coherence,
        // injection); lockstep only binds while both sides are live.
        if let Some(server_gen) = self.link.caches.generation_of(cache_id) {
            if server_gen != client_gen {
                report.push(
                    Diagnostic::error(
                        "NRMI-P005",
                        format!(
                            "generation lockstep broken: client will send {client_gen}, \
                             server expects {server_gen}"
                        ),
                    )
                    .with("cache_id", cache_id),
                );
            }
        }
    }
}

/// Allocates the initial three-node tree `root(1, left(2), right(3))`.
fn build_tree(heap: &mut Heap, registry: &nrmi_heap::SharedRegistry) -> ObjId {
    let class = registry.by_name("Node").expect("registered");
    let left = heap
        .alloc(class, vec![Value::Int(2), Value::Null, Value::Null])
        .expect("alloc");
    let right = heap
        .alloc(class, vec![Value::Int(3), Value::Null, Value::Null])
        .expect("alloc");
    heap.alloc(
        class,
        vec![Value::Int(1), Value::Ref(left), Value::Ref(right)],
    )
    .expect("alloc")
}

/// Every object reachable from `root` (inclusive), via raw slot walks.
fn reachable_from(heap: &Heap, root: ObjId) -> Vec<ObjId> {
    let mut seen: HashSet<ObjId> = HashSet::new();
    let mut stack = vec![root];
    let mut order = Vec::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        order.push(id);
        if let Ok(obj) = heap.get(id) {
            for v in obj.body().slots() {
                if let Value::Ref(target) = v {
                    stack.push(*target);
                }
            }
        }
    }
    order
}

// ---------------------------------------------------------------------------
// The reliability model: the real retry client against a lossy link
// ---------------------------------------------------------------------------

/// One action of the reliability alphabet, driving the real
/// [`ReliableTransport`](nrmi_core::ReliableTransport) client over a
/// lossy in-process link against the real server-side reply cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReliabilityAction {
    /// A warm call through the reliable transport (checked against the
    /// oracle twin and the execution counter).
    Call,
    /// Mutate the client graph (varies the deltas between calls).
    MutateClient,
    /// Arm: the next tagged request vanishes in flight (client must
    /// retransmit; the server never saw it, so it executes once).
    DropRequest,
    /// Arm: the next reply vanishes in flight (the call executed; the
    /// retransmission must be answered from the reply cache, not re-run).
    DropReply,
    /// Arm: the next tagged request is delivered twice (the second copy
    /// must replay from the reply cache, not re-execute).
    DuplicateRequest,
    /// Arm: the next receive fails as a broken connection; the client
    /// reconnects (per-connection warm caches die, the reply cache
    /// survives) and retransmits.
    Disconnect,
}

/// Every transition of the retry/duplicate-suppression state machine.
pub const RELIABILITY_ALPHABET: [ReliabilityAction; 6] = [
    ReliabilityAction::Call,
    ReliabilityAction::MutateClient,
    ReliabilityAction::DropRequest,
    ReliabilityAction::DropReply,
    ReliabilityAction::DuplicateRequest,
    ReliabilityAction::Disconnect,
];

/// The lossy link: a handle on the shared [`ServerSide`] that consumes
/// the armed fault flags. Unlike the bare `ServerSide` transport (where
/// an empty queue is a deadlock), an empty queue here is a `Timeout` —
/// the client's retry loop, not the checker, decides what that means.
struct LossyLink(Arc<Mutex<ServerSide>>);

impl Transport for LossyLink {
    fn send(&mut self, frame: &Frame) -> nrmi_transport::Result<()> {
        let mut side = self.0.lock().expect("poisoned");
        let tagged = matches!(frame, Frame::Tagged { .. });
        if tagged && side.faults.drop_requests > 0 {
            side.faults.drop_requests -= 1;
            return Ok(()); // the request is lost in flight
        }
        let copies = if tagged && side.faults.duplicate_requests > 0 {
            side.faults.duplicate_requests -= 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            if let Some(reply) = side.dispatch(frame) {
                if side.faults.drop_replies > 0 {
                    side.faults.drop_replies -= 1; // the reply is lost
                } else {
                    side.replies.push_back(reply);
                }
            }
        }
        Ok(())
    }

    fn recv(&mut self) -> nrmi_transport::Result<Frame> {
        let mut side = self.0.lock().expect("poisoned");
        if side.faults.disconnects > 0 {
            side.faults.disconnects -= 1;
            return Err(TransportError::Disconnected);
        }
        side.replies.pop_front().ok_or(TransportError::Timeout)
    }

    fn recv_timeout(&mut self, _timeout: Duration) -> nrmi_transport::Result<Frame> {
        self.recv()
    }

    fn reconnect(&mut self) -> nrmi_transport::Result<bool> {
        let mut side = self.0.lock().expect("poisoned");
        // A fresh connection: per-connection warm session graphs are
        // released (as serve_connection's teardown does) and queued
        // replies die with the old socket. The reply cache lives on the
        // node and survives — that is the property under test.
        let ServerSide { server, caches, .. } = &mut *side;
        caches.release_all(&mut server.state.heap);
        side.replies.clear();
        Ok(true)
    }
}

/// Fresh world per reliability sequence: the real warm client behind a
/// real [`ReliableTransport`](nrmi_core::ReliableTransport), the real
/// server + reply cache behind a [`LossyLink`], and the local oracle
/// twin. The service counts its executions so duplicate execution is
/// observable directly, not only through graph divergence.
struct ReliableWorld {
    client: ClientNode,
    transport: nrmi_core::ReliableTransport<LossyLink>,
    side: Arc<Mutex<ServerSide>>,
    root: ObjId,
    twin: Heap,
    twin_root: ObjId,
    executions: Arc<std::sync::atomic::AtomicUsize>,
    expected_executions: usize,
}

impl ReliableWorld {
    fn new() -> Self {
        let mut reg = ClassRegistry::new();
        reg.define("Node")
            .field_int("data")
            .field_ref("left")
            .field_ref("right")
            .restorable()
            .register();
        let registry = reg.snapshot();

        let mut client = ClientNode::new(registry.clone(), MachineSpec::fast());
        let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
        let executions = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let counter = Arc::clone(&executions);
        server.bind(
            SVC,
            Box::new(FnService::new(move |_method, args, heap| {
                let root = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("want a root reference"))?;
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                service_logic(heap, root)
            })),
        );

        let root = build_tree(&mut client.state.heap, &registry);
        let mut twin = Heap::new(registry.clone());
        let twin_root = build_tree(&mut twin, &registry);

        let side = Arc::new(Mutex::new(ServerSide {
            server,
            caches: WarmCaches::new(),
            replies: VecDeque::new(),
            faults: FaultFlags::default(),
        }));
        // Instant virtual time: the lossy link never blocks, so retries
        // are bounded by attempts, not wall clock.
        let policy = nrmi_core::RetryPolicy {
            deadline: Duration::from_secs(30),
            attempt_timeout: Duration::from_millis(1),
            max_attempts: 16,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: false,
        };
        let transport = nrmi_core::ReliableTransport::with_nonce(
            LossyLink(Arc::clone(&side)),
            policy,
            0xC4_11_1D,
        );

        ReliableWorld {
            client,
            transport,
            side,
            root,
            twin,
            twin_root,
            executions,
            expected_executions: 0,
        }
    }

    fn step(&mut self, action: ReliabilityAction, report: &mut Report) {
        match action {
            ReliabilityAction::Call => self.do_call(report),
            ReliabilityAction::MutateClient => self.do_mutate_client(report),
            ReliabilityAction::DropRequest => {
                self.side.lock().expect("poisoned").faults.drop_requests += 1;
            }
            ReliabilityAction::DropReply => {
                self.side.lock().expect("poisoned").faults.drop_replies += 1;
            }
            ReliabilityAction::DuplicateRequest => {
                self.side
                    .lock()
                    .expect("poisoned")
                    .faults
                    .duplicate_requests += 1;
            }
            ReliabilityAction::Disconnect => {
                self.side.lock().expect("poisoned").faults.disconnects += 1;
            }
        }
        self.check_heaps(report);
        self.check_at_most_once(report);
    }

    fn do_call(&mut self, report: &mut Report) {
        let warm = client_invoke_warm_with_stats(
            &mut self.client,
            &mut self.transport,
            SVC,
            METHOD,
            &[Value::Ref(self.root)],
        );
        let oracle = service_logic(&mut self.twin, self.twin_root);
        self.expected_executions += 1;
        match (warm, oracle) {
            (Ok((got, _stats)), Ok(want)) => {
                if got != want {
                    report.push(Diagnostic::error(
                        "NRMI-P003",
                        format!(
                            "reliable warm call diverged from the oracle: got {got:?}, \
                             want {want:?}"
                        ),
                    ));
                }
                match graph::isomorphic(
                    &self.client.state.heap,
                    self.root,
                    &self.twin,
                    self.twin_root,
                ) {
                    Ok(true) => {}
                    Ok(false) => report.push(Diagnostic::error(
                        "NRMI-P003",
                        "restored graph diverged from the oracle under faults \
                         (a retransmission re-applied the mutation?)",
                    )),
                    Err(e) => report.push(Diagnostic::error(
                        "NRMI-P003",
                        format!("isomorphism comparison failed: {e}"),
                    )),
                }
            }
            (Err(e), Ok(_)) => report.push(
                Diagnostic::error(
                    "NRMI-P004",
                    format!(
                        "reliable call failed where the oracle succeeded \
                         (the retry loop must mask single-shot faults): {e}"
                    ),
                )
                .with("error", e.to_string()),
            ),
            (_, Err(e)) => report.push(Diagnostic::error(
                "NRMI-P004",
                format!("local oracle itself failed (checker bug): {e}"),
            )),
        }
    }

    fn do_mutate_client(&mut self, report: &mut Report) {
        for (heap, root) in [
            (&mut self.client.state.heap, self.root),
            (&mut self.twin, self.twin_root),
        ] {
            let r = (|| -> Result<(), NrmiError> {
                let d = heap
                    .get_field(root, "data")?
                    .as_int()
                    .ok_or_else(|| NrmiError::app("data is not an int"))?;
                heap.set_field(root, "data", Value::Int(d.wrapping_add(10)))?;
                Ok(())
            })();
            if let Err(e) = r {
                report.push(Diagnostic::error(
                    "NRMI-P001",
                    format!("client mutation failed: {e}"),
                ));
            }
        }
    }

    fn check_heaps(&mut self, report: &mut Report) {
        let side = self.side.lock().expect("poisoned");
        for (label, code, heap) in [
            ("client", "NRMI-P001", &self.client.state.heap),
            ("server", "NRMI-P002", &side.server.state.heap),
            ("oracle", "NRMI-P001", &self.twin),
        ] {
            for v in validate(heap) {
                report.push(
                    Diagnostic::error(code, format!("{label} heap corrupted: {v}"))
                        .with("heap", label),
                );
            }
        }
    }

    /// The tentpole invariant: under any drop/duplicate/disconnect
    /// schedule, the service body runs exactly once per completed call —
    /// never twice (`NRMI-P007`).
    fn check_at_most_once(&mut self, report: &mut Report) {
        let ran = self.executions.load(std::sync::atomic::Ordering::SeqCst);
        if ran != self.expected_executions {
            report.push(
                Diagnostic::error(
                    "NRMI-P007",
                    format!(
                        "at-most-once violated: {ran} service execution(s) for \
                         {} completed call(s)",
                        self.expected_executions
                    ),
                )
                .with("executions", ran)
                .with("calls", self.expected_executions),
            );
        }
    }
}

/// Runs one reliability action sequence against a fresh world, returning
/// all violations (panics become `NRMI-P006`, as in [`check_sequence`]).
pub fn check_reliability_sequence(actions: &[ReliabilityAction]) -> Report {
    let trace = actions
        .iter()
        .map(|a| format!("{a:?}"))
        .collect::<Vec<_>>()
        .join(" → ");
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut world = ReliableWorld::new();
        let mut report = Report::new();
        for (i, &action) in actions.iter().enumerate() {
            world.step(action, &mut report);
            if report.has_errors() {
                return (report, Some(i));
            }
        }
        (report, None)
    }));
    match outcome {
        Ok((mut report, failed_at)) => {
            if let Some(i) = failed_at {
                report = report
                    .diagnostics()
                    .iter()
                    .cloned()
                    .map(|d| d.with("trace", &trace).with("failed_at_step", i))
                    .collect();
            }
            report
        }
        Err(payload) => {
            let msg = panic_message(&payload);
            let mut report = Report::new();
            report.push(
                Diagnostic::error("NRMI-P006", format!("sequence panicked: {msg}"))
                    .with("trace", &trace),
            );
            report
        }
    }
}

// ---------------------------------------------------------------------------
// The shared world: two connections against one lock-split server
// ---------------------------------------------------------------------------

/// One action in the two-connection shared-server model. Actions are
/// addressed to connection A or B; each connection has its own session
/// tree, its own oracle twin, and its own nonce stream, while the reply
/// cache and service bindings are the [`SharedServer`]'s — exactly the
/// state the pooled serve loop shares between connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SharedAction {
    /// A warm call on connection A (seeds on first use).
    CallA,
    /// A warm call on connection B.
    CallB,
    /// Mutate connection A's root (a dirty position in A's next delta).
    MutateA,
    /// Mutate connection B's root.
    MutateB,
    /// Orderly eviction of connection A's warm session.
    EvictA,
    /// Orderly eviction of connection B's warm session.
    EvictB,
}

/// Every transition of the two-connection interleaving model.
pub const SHARED_ALPHABET: [SharedAction; 6] = [
    SharedAction::CallA,
    SharedAction::CallB,
    SharedAction::MutateA,
    SharedAction::MutateB,
    SharedAction::EvictA,
    SharedAction::EvictB,
];

/// One modeled connection's server half: a per-connection node minted by
/// [`SharedServer::connection_node`], per-connection warm caches, and the
/// *shared* reply cache consulted with the same begin/store discipline as
/// `serve_connection_pooled`. Implements [`Transport`] for the client the
/// same way [`ServerSide`] does: `send` dispatches synchronously, `recv`
/// drains the reply queue.
struct SharedLink {
    shared: Arc<nrmi_core::SharedServer>,
    conn: ServerNode,
    caches: WarmCaches,
    replies: VecDeque<Frame>,
}

impl SharedLink {
    fn dispatch(&mut self, frame: &Frame) -> Option<Frame> {
        use nrmi_core::ReplyDecision;
        match frame {
            Frame::Tagged { nonce, seq, frame } => {
                // The shared sharded cache, with the decide-mark-executing
                // discipline of the pooled loop.
                match self.shared.replies.begin(*nonce, *seq) {
                    ReplyDecision::Replay(cached) => Some(Frame::ReplyCached {
                        nonce: *nonce,
                        seq: *seq,
                        frame: Box::new(cached),
                    }),
                    ReplyDecision::Evicted => Some(Frame::ReplyCached {
                        nonce: *nonce,
                        seq: *seq,
                        frame: Box::new(nrmi_core::reliable::evicted_reply()),
                    }),
                    // Another "connection" is executing this nonce: the
                    // pooled loop drops the duplicate unanswered.
                    ReplyDecision::InProgress => None,
                    ReplyDecision::Fresh => {
                        let reply = self.dispatch(frame)?;
                        self.shared.replies.store(*nonce, *seq, &reply);
                        Some(Frame::Tagged {
                            nonce: *nonce,
                            seq: *seq,
                            frame: Box::new(reply),
                        })
                    }
                }
            }
            Frame::CallRequestWarm {
                service,
                method,
                mode,
                cache_id,
                generation,
                payload,
            } => Some(server_handle_warm_call(
                &mut self.conn,
                &mut self.caches,
                &mut NullTransport,
                service,
                method,
                *mode,
                *cache_id,
                *generation,
                payload,
            )),
            Frame::CacheEvict { cache_id } => {
                self.caches.evict(&mut self.conn.state.heap, *cache_id);
                None
            }
            other => Some(Frame::CallError {
                message: format!("checker: unmodeled frame {other:?}"),
            }),
        }
    }
}

impl Transport for SharedLink {
    fn send(&mut self, frame: &Frame) -> nrmi_transport::Result<()> {
        if let Some(reply) = self.dispatch(frame) {
            self.replies.push_back(reply);
        }
        Ok(())
    }

    fn recv(&mut self) -> nrmi_transport::Result<Frame> {
        self.replies.pop_front().ok_or(TransportError::Disconnected)
    }

    fn recv_timeout(&mut self, _timeout: Duration) -> nrmi_transport::Result<Frame> {
        self.recv()
    }
}

/// One client endpoint of the shared world: the real warm client behind
/// a real [`ReliableTransport`](nrmi_core::ReliableTransport) (so every
/// request crosses the shared reply cache), plus its private oracle twin.
struct SharedEndpoint {
    client: ClientNode,
    transport: nrmi_core::ReliableTransport<SharedLink>,
    root: ObjId,
    twin: Heap,
    twin_root: ObjId,
    completed_calls: usize,
}

/// Fresh two-connection world per enumerated sequence: one
/// [`SharedServer`] (shared bindings + sharded reply cache), two
/// per-connection endpoints, and a shared execution counter for the
/// exactly-once audit.
struct SharedWorld {
    a: SharedEndpoint,
    b: SharedEndpoint,
    executions: Arc<std::sync::atomic::AtomicUsize>,
}

impl SharedWorld {
    fn new() -> Self {
        let mut reg = ClassRegistry::new();
        reg.define("Node")
            .field_int("data")
            .field_ref("left")
            .field_ref("right")
            .restorable()
            .register();
        let registry = reg.snapshot();

        let executions = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let counter = Arc::clone(&executions);
        let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
        server.bind(
            SVC,
            Box::new(FnService::new(move |_method, args, heap| {
                let root = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("want a root reference"))?;
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                service_logic(heap, root)
            })),
        );
        let shared = Arc::new(nrmi_core::SharedServer::from_node(server));

        let endpoint = |nonce_seed: u64| -> SharedEndpoint {
            let mut client = ClientNode::new(registry.clone(), MachineSpec::fast());
            let root = build_tree(&mut client.state.heap, &registry);
            let mut twin = Heap::new(registry.clone());
            let twin_root = build_tree(&mut twin, &registry);
            let link = SharedLink {
                shared: Arc::clone(&shared),
                conn: shared.connection_node(),
                caches: WarmCaches::new(),
                replies: VecDeque::new(),
            };
            // Instant virtual time, as in the reliability model.
            let policy = nrmi_core::RetryPolicy {
                deadline: Duration::from_secs(30),
                attempt_timeout: Duration::from_millis(1),
                max_attempts: 16,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                jitter: false,
            };
            SharedEndpoint {
                client,
                transport: nrmi_core::ReliableTransport::with_nonce(link, policy, nonce_seed),
                root,
                twin,
                twin_root,
                completed_calls: 0,
            }
        };

        SharedWorld {
            // Distinct nonce streams, as two real connections would draw
            // from `fresh_nonce`.
            a: endpoint(0xAAAA_1111),
            b: endpoint(0xBBBB_2222),
            executions,
        }
    }

    fn step(&mut self, action: SharedAction, report: &mut Report) {
        match action {
            SharedAction::CallA => Self::do_call(&mut self.a, "A", report),
            SharedAction::CallB => Self::do_call(&mut self.b, "B", report),
            SharedAction::MutateA => Self::do_mutate(&mut self.a, report),
            SharedAction::MutateB => Self::do_mutate(&mut self.b, report),
            SharedAction::EvictA => Self::do_evict(&mut self.a, "A", report),
            SharedAction::EvictB => Self::do_evict(&mut self.b, "B", report),
        }
        // The concurrency invariant, checked after EVERY action: no
        // endpoint ever observes a torn heap — both restored client
        // graphs stay isomorphic to their private oracles no matter how
        // the other connection's calls interleave (NRMI-P008), all four
        // server/client heaps stay structurally valid, and the service
        // ran exactly once per completed call across both connections.
        self.check_isolation(report);
        self.check_heaps(report);
        self.check_exactly_once(report);
    }

    fn do_call(ep: &mut SharedEndpoint, who: &str, report: &mut Report) {
        let warm = client_invoke_warm_with_stats(
            &mut ep.client,
            &mut ep.transport,
            SVC,
            METHOD,
            &[Value::Ref(ep.root)],
        );
        let oracle = service_logic(&mut ep.twin, ep.twin_root);
        ep.completed_calls += 1;
        match (warm, oracle) {
            (Ok((got, _stats)), Ok(want)) => {
                if got != want {
                    report.push(Diagnostic::error(
                        "NRMI-P003",
                        format!(
                            "connection {who}: warm call diverged from its oracle: \
                             got {got:?}, want {want:?}"
                        ),
                    ));
                }
            }
            (Err(e), Ok(_)) => report.push(Diagnostic::error(
                "NRMI-P004",
                format!("connection {who}: warm call failed where the oracle succeeded: {e}"),
            )),
            (_, Err(e)) => report.push(Diagnostic::error(
                "NRMI-P004",
                format!("local oracle itself failed (checker bug): {e}"),
            )),
        }
    }

    fn do_mutate(ep: &mut SharedEndpoint, report: &mut Report) {
        for (heap, root) in [
            (&mut ep.client.state.heap, ep.root),
            (&mut ep.twin, ep.twin_root),
        ] {
            let r = (|| -> Result<(), NrmiError> {
                let d = heap
                    .get_field(root, "data")?
                    .as_int()
                    .ok_or_else(|| NrmiError::app("data is not an int"))?;
                heap.set_field(root, "data", Value::Int(d.wrapping_add(10)))?;
                Ok(())
            })();
            if let Err(e) = r {
                report.push(Diagnostic::error(
                    "NRMI-P001",
                    format!("client mutation failed: {e}"),
                ));
            }
        }
    }

    fn do_evict(ep: &mut SharedEndpoint, who: &str, report: &mut Report) {
        if let Err(e) = client_evict_warm(&mut ep.client, &mut ep.transport, SVC) {
            report.push(Diagnostic::error(
                "NRMI-P004",
                format!("connection {who}: eviction failed: {e}"),
            ));
        }
    }

    /// `NRMI-P008`: the lock-split server must keep each connection's
    /// view atomic per call — after any interleaving, each client graph
    /// equals what its own private oracle computed, untouched by the
    /// other connection.
    fn check_isolation(&mut self, report: &mut Report) {
        for (who, ep) in [("A", &self.a), ("B", &self.b)] {
            match graph::isomorphic(&ep.client.state.heap, ep.root, &ep.twin, ep.twin_root) {
                Ok(true) => {}
                Ok(false) => report.push(Diagnostic::error(
                    "NRMI-P008",
                    format!(
                        "connection {who}: client graph diverged from its private oracle — \
                         a reply observed state torn by the other connection"
                    ),
                )),
                Err(e) => report.push(Diagnostic::error(
                    "NRMI-P008",
                    format!("connection {who}: isomorphism comparison failed: {e}"),
                )),
            }
        }
    }

    fn check_heaps(&mut self, report: &mut Report) {
        for (label, code, heap) in [
            ("client A", "NRMI-P001", &self.a.client.state.heap),
            ("client B", "NRMI-P001", &self.b.client.state.heap),
            (
                "connection A",
                "NRMI-P002",
                &self.a.transport.inner().conn.state.heap,
            ),
            (
                "connection B",
                "NRMI-P002",
                &self.b.transport.inner().conn.state.heap,
            ),
            ("oracle A", "NRMI-P001", &self.a.twin),
            ("oracle B", "NRMI-P001", &self.b.twin),
        ] {
            for v in validate(heap) {
                report.push(
                    Diagnostic::error(code, format!("{label} heap corrupted: {v}"))
                        .with("heap", label),
                );
            }
        }
    }

    fn check_exactly_once(&mut self, report: &mut Report) {
        let ran = self.executions.load(std::sync::atomic::Ordering::SeqCst);
        let expected = self.a.completed_calls + self.b.completed_calls;
        if ran != expected {
            report.push(Diagnostic::error(
                "NRMI-P007",
                format!(
                    "shared reply cache broke exactly-once across connections: \
                     {ran} execution(s) for {expected} completed call(s)"
                ),
            ));
        }
    }
}

/// Runs one two-connection action sequence against a fresh shared world,
/// returning all violations (panics become `NRMI-P006`).
pub fn check_shared_sequence(actions: &[SharedAction]) -> Report {
    let trace = actions
        .iter()
        .map(|a| format!("{a:?}"))
        .collect::<Vec<_>>()
        .join(" → ");
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut world = SharedWorld::new();
        let mut report = Report::new();
        for (i, &action) in actions.iter().enumerate() {
            world.step(action, &mut report);
            if report.has_errors() {
                return (report, Some(i));
            }
        }
        (report, None)
    }));
    match outcome {
        Ok((mut report, failed_at)) => {
            if let Some(i) = failed_at {
                report = report
                    .diagnostics()
                    .iter()
                    .cloned()
                    .map(|d| d.with("trace", &trace).with("failed_at_step", i))
                    .collect();
            }
            report
        }
        Err(payload) => {
            let msg = panic_message(&payload);
            let mut report = Report::new();
            report.push(
                Diagnostic::error("NRMI-P006", format!("sequence panicked: {msg}"))
                    .with("trace", &trace),
            );
            report
        }
    }
}

// ---------------------------------------------------------------------------
// The shared-graph world: two warm clients leased onto one server heap
// ---------------------------------------------------------------------------

/// One action in the two-client shared-graph model (`NRMI-P011`). Unlike
/// the [`SharedAction`] world — two connections with *disjoint* session
/// graphs behind one reply cache — this model shares the coherence
/// surface itself: both endpoints hold warm sessions against ONE
/// [`ServerNode`] heap, their [`WarmCaches`] built with
/// [`WarmCaches::with_leases`] on the node's lease table exactly as
/// `serve_connection_shared` builds them, and every call writes the
/// *other* endpoint's server-side root out-of-band. Each step drives the
/// real coherence machinery: version-vector staleness classification,
/// `CacheStale` repair patches, the client-wins positional merge, and
/// lease-guarded eviction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SharedGraphAction {
    /// A warm call on endpoint A; its service body pokes B's registered
    /// server root (an out-of-band write from B's point of view).
    CallA,
    /// A warm call on endpoint B; pokes A's registered server root.
    CallB,
    /// Mutate endpoint A's root client-side (an unshipped local write
    /// the merge rule must not clobber).
    MutateA,
    /// Mutate endpoint B's root client-side.
    MutateB,
    /// Orderly client-driven eviction of A's warm session.
    EvictA,
    /// Orderly client-driven eviction of B's warm session.
    EvictB,
    /// Tear down A's server-side connection state (`release_all` + fresh
    /// caches), as `serve_connection_shared` does when a client vanishes.
    /// B's leased session must survive with every synchronized object
    /// still alive; A reconnects through the `CacheMiss` reseed path.
    DropA,
}

/// Every transition of the two-client shared-graph coherence model.
pub const SHARED_GRAPH_ALPHABET: [SharedGraphAction; 7] = [
    SharedGraphAction::CallA,
    SharedGraphAction::CallB,
    SharedGraphAction::MutateA,
    SharedGraphAction::MutateB,
    SharedGraphAction::EvictA,
    SharedGraphAction::EvictB,
    SharedGraphAction::DropA,
];

/// Name → server-side root of each endpoint's *live* session graph, as
/// the services see it. The MODEL maintains hygiene — entries leave at
/// eviction and teardown — because a freed root id can be recycled into
/// another session's graph, and poking a recycled id would be a checker
/// artifact, not a middleware bug (real out-of-band writers reach the
/// shared graph through live references, not saved ids).
type SgRegistry = Arc<Mutex<Vec<(&'static str, ObjId)>>>;

/// One endpoint's connection half: the shared [`ServerNode`] behind a
/// mutex (the model is sequential; the lock only shares ownership), this
/// connection's own lease-registered [`WarmCaches`], and a reply queue.
/// `send` dispatches synchronously like [`ServerSide`].
struct SgLink {
    server: Arc<Mutex<ServerNode>>,
    caches: WarmCaches,
    replies: VecDeque<Frame>,
}

impl SgLink {
    fn dispatch(&mut self, frame: &Frame) -> Option<Frame> {
        match frame {
            Frame::CallRequestWarm {
                service,
                method,
                mode,
                cache_id,
                generation,
                payload,
            } => {
                let mut server = self.server.lock().expect("poisoned");
                Some(server_handle_warm_call(
                    &mut server,
                    &mut self.caches,
                    &mut NullTransport,
                    service,
                    method,
                    *mode,
                    *cache_id,
                    *generation,
                    payload,
                ))
            }
            Frame::CacheEvict { cache_id } => {
                let mut server = self.server.lock().expect("poisoned");
                self.caches.evict(&mut server.state.heap, *cache_id);
                None
            }
            other => Some(Frame::CallError {
                message: format!("checker: unmodeled frame {other:?}"),
            }),
        }
    }
}

impl Transport for SgLink {
    fn send(&mut self, frame: &Frame) -> nrmi_transport::Result<()> {
        if let Some(reply) = self.dispatch(frame) {
            self.replies.push_back(reply);
        }
        Ok(())
    }

    fn recv(&mut self) -> nrmi_transport::Result<Frame> {
        self.replies.pop_front().ok_or(TransportError::Disconnected)
    }

    fn recv_timeout(&mut self, _timeout: Duration) -> nrmi_transport::Result<Frame> {
        self.recv()
    }
}

/// One client endpoint of the shared-graph world: the real warm client,
/// its connection link, and a private oracle twin with the
/// visible-pokes bookkeeping of the single-client [`World`].
struct SgEndpoint {
    /// The service this endpoint calls; its body knows the endpoint's
    /// name and pokes every OTHER registered root.
    svc: &'static str,
    name: &'static str,
    client: ClientNode,
    link: SgLink,
    root: ObjId,
    twin: Heap,
    twin_root: ObjId,
    /// True if this endpoint wrote its root since its last call: its
    /// next request delta carries the position, so the positional merge
    /// lets the client win and the peer's poke is erased (the twin must
    /// NOT adopt it).
    wrote_root: bool,
}

/// Fresh two-client shared-graph world per enumerated sequence: one
/// server heap, one lease table, two leased connections, one root
/// registry the services poke through.
struct SharedGraphWorld {
    server: Arc<Mutex<ServerNode>>,
    registry: SgRegistry,
    a: SgEndpoint,
    b: SgEndpoint,
}

/// How much a service call perturbs the OTHER endpoint's root `data` —
/// distinctive so a stale read stands out from the ×3+1 service values.
const SG_POKE: i32 = 100;

impl SharedGraphWorld {
    fn new() -> Self {
        let mut reg = ClassRegistry::new();
        reg.define("Node")
            .field_int("data")
            .field_ref("left")
            .field_ref("right")
            .restorable()
            .register();
        let registry = reg.snapshot();

        let roots: SgRegistry = Arc::new(Mutex::new(Vec::new()));
        let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
        for (svc, name) in [("svc.a", "A"), ("svc.b", "B")] {
            let roots = Arc::clone(&roots);
            server.bind(
                svc,
                Box::new(FnService::new(move |_method, args, heap| {
                    let root = args[0]
                        .as_ref_id()
                        .ok_or_else(|| NrmiError::app("want a root reference"))?;
                    let mut reg = roots.lock().expect("poisoned");
                    // (Re-)register this endpoint's live root — a reseed
                    // materializes the graph at fresh ids.
                    match reg.iter_mut().find(|(n, _)| *n == name) {
                        Some(slot) => slot.1 = root,
                        None => reg.push((name, root)),
                    }
                    // The out-of-band write: perturb every OTHER live
                    // root. From the peer session's point of view this
                    // is exactly the coherence hazard — its server-side
                    // graph changed underneath its warm cache.
                    for &(other, id) in reg.iter().filter(|(n, _)| *n != name) {
                        let d = heap
                            .get_field(id, "data")?
                            .as_int()
                            .ok_or_else(|| NrmiError::app(format!("{other}: data not int")))?;
                        heap.set_field(id, "data", Value::Int(d.wrapping_add(SG_POKE)))?;
                    }
                    drop(reg);
                    service_logic(heap, root)
                })),
            );
        }
        let leases = Arc::clone(&server.leases);
        let server = Arc::new(Mutex::new(server));

        let endpoint = |svc: &'static str, name: &'static str| -> SgEndpoint {
            let mut client = ClientNode::new(registry.clone(), MachineSpec::fast());
            let root = build_tree(&mut client.state.heap, &registry);
            let mut twin = Heap::new(registry.clone());
            let twin_root = build_tree(&mut twin, &registry);
            SgEndpoint {
                svc,
                name,
                client,
                link: SgLink {
                    server: Arc::clone(&server),
                    caches: WarmCaches::with_leases(Arc::clone(&leases)),
                    replies: VecDeque::new(),
                },
                root,
                twin,
                twin_root,
                wrote_root: false,
            }
        };

        SharedGraphWorld {
            a: endpoint("svc.a", "A"),
            b: endpoint("svc.b", "B"),
            server,
            registry: roots,
        }
    }

    fn step(&mut self, action: SharedGraphAction, report: &mut Report) {
        match action {
            SharedGraphAction::CallA => self.do_call(true, report),
            SharedGraphAction::CallB => self.do_call(false, report),
            SharedGraphAction::MutateA => Self::do_mutate(&mut self.a, report),
            SharedGraphAction::MutateB => Self::do_mutate(&mut self.b, report),
            SharedGraphAction::EvictA => self.do_evict(true, report),
            SharedGraphAction::EvictB => self.do_evict(false, report),
            SharedGraphAction::DropA => self.do_drop_a(report),
        }
        // Checked after EVERY action: neither client ever reads stale
        // state or loses a write (graph ≡ its private oracle), every
        // live session's leased objects are still alive, and all heaps
        // stay structurally valid.
        self.check_coherence(report);
        self.check_lease_liveness(report);
        self.check_heaps(report);
    }

    /// The oracle's visibility rule, as in the single-client [`World`]:
    /// a peer's poke becomes visible to this endpoint's next call iff
    /// its warm session is live in generation lockstep (the repair path
    /// reaches it) AND it has not written the root itself since its last
    /// call (else its delta wins positionally and the poke is erased).
    /// When visible, the twin adopts the server root's current data.
    fn sync_twin_with_visible_pokes(&mut self, a_side: bool) {
        let ep = if a_side { &mut self.a } else { &mut self.b };
        if ep.wrote_root {
            return;
        }
        let (Some(cache_id), Some(client_gen)) = (
            ep.client.warm.cache_id(ep.svc),
            ep.client.warm.generation(ep.svc),
        ) else {
            return;
        };
        if ep.link.caches.generation_of(cache_id) != Some(client_gen) {
            return;
        }
        let Some(server_root) = self
            .registry
            .lock()
            .expect("poisoned")
            .iter()
            .find(|(n, _)| *n == ep.name)
            .map(|&(_, id)| id)
        else {
            return;
        };
        let mut server = self.server.lock().expect("poisoned");
        if let Ok(Value::Int(d)) = server.state.heap.get_field(server_root, "data") {
            let _ = ep.twin.set_field(ep.twin_root, "data", Value::Int(d));
        }
    }

    fn do_call(&mut self, a_side: bool, report: &mut Report) {
        self.sync_twin_with_visible_pokes(a_side);
        let ep = if a_side { &mut self.a } else { &mut self.b };
        ep.wrote_root = false;
        let warm = client_invoke_warm_with_stats(
            &mut ep.client,
            &mut ep.link,
            ep.svc,
            METHOD,
            &[Value::Ref(ep.root)],
        );
        let oracle = service_logic(&mut ep.twin, ep.twin_root);
        let who = ep.name;
        match (warm, oracle) {
            (Ok((got, _stats)), Ok(want)) => {
                if got != want {
                    report.push(Diagnostic::error(
                        "NRMI-P003",
                        format!(
                            "endpoint {who}: warm call diverged from its oracle: \
                             got {got:?}, want {want:?}"
                        ),
                    ));
                }
            }
            (Err(e), Ok(_)) => report.push(Diagnostic::error(
                "NRMI-P004",
                format!("endpoint {who}: warm call failed where the oracle succeeded: {e}"),
            )),
            (_, Err(e)) => report.push(Diagnostic::error(
                "NRMI-P004",
                format!("local oracle itself failed (checker bug): {e}"),
            )),
        }
    }

    fn do_mutate(ep: &mut SgEndpoint, report: &mut Report) {
        for (heap, root) in [
            (&mut ep.client.state.heap, ep.root),
            (&mut ep.twin, ep.twin_root),
        ] {
            let r = (|| -> Result<(), NrmiError> {
                let d = heap
                    .get_field(root, "data")?
                    .as_int()
                    .ok_or_else(|| NrmiError::app("data is not an int"))?;
                heap.set_field(root, "data", Value::Int(d.wrapping_add(10)))?;
                Ok(())
            })();
            if let Err(e) = r {
                report.push(Diagnostic::error(
                    "NRMI-P001",
                    format!("client mutation failed: {e}"),
                ));
            }
        }
        ep.wrote_root = true;
    }

    fn do_evict(&mut self, a_side: bool, report: &mut Report) {
        let ep = if a_side { &mut self.a } else { &mut self.b };
        // The session graph is leaving the server (or leaking, if a
        // peer's poke made it incoherent); either way its root id stops
        // being a live out-of-band target.
        self.registry
            .lock()
            .expect("poisoned")
            .retain(|(n, _)| *n != ep.name);
        if let Err(e) = client_evict_warm(&mut ep.client, &mut ep.link, ep.svc) {
            report.push(Diagnostic::error(
                "NRMI-P004",
                format!("endpoint {}: eviction failed: {e}", ep.name),
            ));
        }
    }

    /// Connection teardown for A, exactly as `serve_connection_shared`
    /// runs it: `release_all` on THIS connection's caches, then the
    /// connection state is gone. A's client keeps its (now dangling)
    /// warm session and must recover through `CacheMiss`; B's leased
    /// session must be untouched.
    fn do_drop_a(&mut self, _report: &mut Report) {
        self.registry
            .lock()
            .expect("poisoned")
            .retain(|(n, _)| *n != self.a.name);
        {
            let mut server = self.server.lock().expect("poisoned");
            self.a.link.caches.release_all(&mut server.state.heap);
            let leases = Arc::clone(&server.leases);
            self.a.link.caches = WarmCaches::with_leases(leases);
        }
        self.a.link.replies.clear();
    }

    /// `NRMI-P011` (stale read / lost write): after any interleaving,
    /// each client graph equals its private oracle under the
    /// visible-pokes rule — a divergence means a repair patch clobbered
    /// an unshipped client write, or a call read the shared graph stale.
    fn check_coherence(&mut self, report: &mut Report) {
        for ep in [&self.a, &self.b] {
            match graph::isomorphic(&ep.client.state.heap, ep.root, &ep.twin, ep.twin_root) {
                Ok(true) => {}
                Ok(false) => report.push(Diagnostic::error(
                    "NRMI-P011",
                    format!(
                        "endpoint {}: client graph diverged from its oracle — \
                         a stale read or a clobbered local write on the shared graph",
                        ep.name
                    ),
                )),
                Err(e) => report.push(Diagnostic::error(
                    "NRMI-P011",
                    format!("endpoint {}: isomorphism comparison failed: {e}", ep.name),
                )),
            }
        }
    }

    /// `NRMI-P011` (lease safety): every object a live warm session
    /// synchronizes is still alive on the shared heap — no teardown or
    /// eviction by the OTHER connection freed it out from under us.
    fn check_lease_liveness(&mut self, report: &mut Report) {
        let server = self.server.lock().expect("poisoned");
        for ep in [&self.a, &self.b] {
            let Some(cache_id) = ep.client.warm.cache_id(ep.svc) else {
                continue;
            };
            let Some(sync) = ep.link.caches.sync_ids_of(cache_id) else {
                continue;
            };
            for &id in sync {
                if server.state.heap.class_if_live(id).is_none() {
                    report.push(Diagnostic::error(
                        "NRMI-P011",
                        format!(
                            "endpoint {}: leased object {id:?} of live session \
                             {cache_id} was freed by another connection",
                            ep.name
                        ),
                    ));
                }
            }
        }
    }

    fn check_heaps(&mut self, report: &mut Report) {
        let server = self.server.lock().expect("poisoned");
        for (label, code, heap) in [
            ("client A", "NRMI-P001", &self.a.client.state.heap),
            ("client B", "NRMI-P001", &self.b.client.state.heap),
            ("shared server", "NRMI-P002", &server.state.heap),
            ("oracle A", "NRMI-P001", &self.a.twin),
            ("oracle B", "NRMI-P001", &self.b.twin),
        ] {
            for v in validate(heap) {
                report.push(
                    Diagnostic::error(code, format!("{label} heap corrupted: {v}"))
                        .with("heap", label),
                );
            }
        }
    }
}

/// Runs one two-client shared-graph action sequence against a fresh
/// world, returning all violations (panics become `NRMI-P006`).
pub fn check_shared_graph_sequence(actions: &[SharedGraphAction]) -> Report {
    let trace = actions
        .iter()
        .map(|a| format!("{a:?}"))
        .collect::<Vec<_>>()
        .join(" → ");
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut world = SharedGraphWorld::new();
        let mut report = Report::new();
        for (i, &action) in actions.iter().enumerate() {
            world.step(action, &mut report);
            if report.has_errors() {
                return (report, Some(i));
            }
        }
        (report, None)
    }));
    match outcome {
        Ok((mut report, failed_at)) => {
            if let Some(i) = failed_at {
                report = report
                    .diagnostics()
                    .iter()
                    .cloned()
                    .map(|d| d.with("trace", &trace).with("failed_at_step", i))
                    .collect();
            }
            report
        }
        Err(payload) => {
            let msg = panic_message(&payload);
            let mut report = Report::new();
            report.push(
                Diagnostic::error("NRMI-P006", format!("sequence panicked: {msg}"))
                    .with("trace", &trace),
            );
            report
        }
    }
}

// ---------------------------------------------------------------------------
// The pipelined world: two calls in flight on one multiplexed link
// ---------------------------------------------------------------------------

/// One action in the pipelined single-connection model: two call slots
/// (A and B, each owning a private graph) share one
/// [`ReliableTransport`](nrmi_core::ReliableTransport), and both may be
/// in flight at once through the split-phase client API
/// ([`client_marshal_call`] + `send_call`, collected later with
/// `recv_reply` + [`client_apply_reply`]). The adversary reorders and
/// drops queued replies; the request map must still route every reply to
/// the call that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelinedAction {
    /// Issue a copy-restore call on slot A without collecting it (a
    /// no-op if A is already in flight).
    IssueA,
    /// Issue a call on slot B.
    IssueB,
    /// Swap the two oldest queued replies (out-of-order delivery).
    SwapReplies,
    /// Discard the oldest queued reply: the collect must retransmit and
    /// be answered from the reply cache, never re-executed.
    DropReply,
    /// Collect slot A's reply and restore its graph. With nothing in
    /// flight, instead verifies that collecting an already-consumed call
    /// id yields the typed `NoPendingCall` error — never a panic, never
    /// a ghost reply.
    CollectA,
    /// Collect slot B.
    CollectB,
}

/// Every transition of the pipelined reply-routing state machine.
pub const PIPELINED_ALPHABET: [PipelinedAction; 6] = [
    PipelinedAction::IssueA,
    PipelinedAction::IssueB,
    PipelinedAction::SwapReplies,
    PipelinedAction::DropReply,
    PipelinedAction::CollectA,
    PipelinedAction::CollectB,
];

/// The reorderable link: synchronous dispatch as in [`ServerSide`], but
/// an empty queue is a [`TransportError::Timeout`] (the retry loop's
/// concern, not a deadlock), and the checker permutes or drops queued
/// replies between actions.
struct PipeLink(Arc<Mutex<ServerSide>>);

impl Transport for PipeLink {
    fn send(&mut self, frame: &Frame) -> nrmi_transport::Result<()> {
        let mut side = self.0.lock().expect("poisoned");
        if let Some(reply) = side.dispatch(frame) {
            side.replies.push_back(reply);
        }
        Ok(())
    }

    fn recv(&mut self) -> nrmi_transport::Result<Frame> {
        self.0
            .lock()
            .expect("poisoned")
            .replies
            .pop_front()
            .ok_or(TransportError::Timeout)
    }

    fn recv_timeout(&mut self, _timeout: Duration) -> nrmi_transport::Result<Frame> {
        self.recv()
    }
}

/// One call slot of the pipelined world: a private three-node tree, its
/// oracle twin root, and the in-flight state of its current call.
struct PipeSlot {
    root: ObjId,
    twin_root: ObjId,
    pending: Option<(u64, PendingCall)>,
    consumed_seq: Option<u64>,
}

/// Fresh world per pipelined sequence: one client with two disjoint
/// graphs, the real request-map client over a reorderable link, the real
/// server + reply cache, and a per-slot oracle twin. Each slot's values
/// depend on its own history (`data` starts 100 vs 200 and evolves as
/// `3d+1`), so a reply routed to the wrong call is observable both in
/// the returned sum and in the restored graph.
struct PipelinedWorld {
    client: ClientNode,
    transport: nrmi_core::ReliableTransport<PipeLink>,
    side: Arc<Mutex<ServerSide>>,
    twin: Heap,
    slots: [PipeSlot; 2],
    executions: Arc<std::sync::atomic::AtomicUsize>,
    issued: usize,
}

impl PipelinedWorld {
    fn new() -> Self {
        let mut reg = ClassRegistry::new();
        reg.define("Node")
            .field_int("data")
            .field_ref("left")
            .field_ref("right")
            .restorable()
            .register();
        let registry = reg.snapshot();

        let mut client = ClientNode::new(registry.clone(), MachineSpec::fast());
        let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
        let executions = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let counter = Arc::clone(&executions);
        server.bind(
            SVC,
            Box::new(FnService::new(move |_method, args, heap| {
                let root = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("want a root reference"))?;
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                service_logic(heap, root)
            })),
        );

        let mut twin = Heap::new(registry.clone());
        let slot = |client: &mut ClientNode, twin: &mut Heap, seed: i32| -> PipeSlot {
            let root = build_tree(&mut client.state.heap, &registry);
            let twin_root = build_tree(twin, &registry);
            client
                .state
                .heap
                .set_field(root, "data", Value::Int(seed))
                .expect("seed slot");
            twin.set_field(twin_root, "data", Value::Int(seed))
                .expect("seed twin");
            PipeSlot {
                root,
                twin_root,
                pending: None,
                consumed_seq: None,
            }
        };
        let slot_a = slot(&mut client, &mut twin, 100);
        let slot_b = slot(&mut client, &mut twin, 200);

        let side = Arc::new(Mutex::new(ServerSide {
            server,
            caches: WarmCaches::new(),
            replies: VecDeque::new(),
            faults: FaultFlags::default(),
        }));
        // Instant virtual time, as in the reliability model: retries are
        // bounded by attempts, not wall clock.
        let policy = nrmi_core::RetryPolicy {
            deadline: Duration::from_secs(30),
            attempt_timeout: Duration::from_millis(1),
            max_attempts: 16,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: false,
        };
        let transport =
            nrmi_core::ReliableTransport::with_nonce(PipeLink(Arc::clone(&side)), policy, 0xF1F0);

        PipelinedWorld {
            client,
            transport,
            side,
            twin,
            slots: [slot_a, slot_b],
            executions,
            issued: 0,
        }
    }

    fn step(&mut self, action: PipelinedAction, report: &mut Report) {
        match action {
            PipelinedAction::IssueA => self.do_issue(0, "A", report),
            PipelinedAction::IssueB => self.do_issue(1, "B", report),
            PipelinedAction::SwapReplies => {
                let mut side = self.side.lock().expect("poisoned");
                if side.replies.len() >= 2 {
                    side.replies.swap(0, 1);
                }
            }
            PipelinedAction::DropReply => {
                self.side.lock().expect("poisoned").replies.pop_front();
            }
            PipelinedAction::CollectA => self.do_collect(0, "A", report),
            PipelinedAction::CollectB => self.do_collect(1, "B", report),
        }
        self.check_heaps(report);
        self.check_exactly_once(report);
    }

    fn do_issue(&mut self, which: usize, who: &str, report: &mut Report) {
        if self.slots[which].pending.is_some() {
            return;
        }
        let root = self.slots[which].root;
        let marshalled = client_marshal_call(
            &mut self.client,
            SVC,
            METHOD,
            &[Value::Ref(root)],
            CallOptions::forced(PassMode::CopyRestore),
        );
        let (frame, pending) = match marshalled {
            Ok(split) => split,
            Err(e) => {
                report.push(Diagnostic::error(
                    "NRMI-P004",
                    format!("slot {who}: marshal failed: {e}"),
                ));
                return;
            }
        };
        match self.transport.send_call(&frame) {
            Ok(Some(seq)) => {
                self.issued += 1;
                self.slots[which].pending = Some((seq, pending));
            }
            Ok(None) => report.push(Diagnostic::error(
                "NRMI-P009",
                format!("slot {who}: call frame passed through untagged — its reply can never be demultiplexed"),
            )),
            Err(e) => report.push(Diagnostic::error(
                "NRMI-P004",
                format!("slot {who}: pipelined issue failed: {e}"),
            )),
        }
    }

    fn do_collect(&mut self, which: usize, who: &str, report: &mut Report) {
        let Some((seq, pending)) = self.slots[which].pending.take() else {
            // Nothing in flight: collecting the already-consumed call id
            // must yield the typed error. (The `expect()` this replaced
            // panicked here; a ghost reply would mean a neighbor's reply
            // leaked out of the request map.)
            if let Some(stale) = self.slots[which].consumed_seq {
                match self.transport.recv_reply(stale) {
                    Err(TransportError::NoPendingCall { .. }) => {}
                    Ok(frame) => report.push(Diagnostic::error(
                        "NRMI-P009",
                        format!(
                            "slot {who}: consumed call {stale} produced a ghost reply {frame:?}"
                        ),
                    )),
                    Err(e) => report.push(Diagnostic::error(
                        "NRMI-P009",
                        format!(
                            "slot {who}: collecting consumed call {stale}: expected the typed \
                             NoPendingCall error, got {e}"
                        ),
                    )),
                }
            }
            return;
        };
        let reply = self.transport.recv_reply(seq);
        self.slots[which].consumed_seq = Some(seq);
        let payload = match reply {
            Ok(Frame::CallReply { payload }) => payload,
            Ok(other) => {
                report.push(Diagnostic::error(
                    "NRMI-P009",
                    format!("slot {who}: call {seq} answered with {other:?}"),
                ));
                return;
            }
            Err(e) => {
                report.push(Diagnostic::error(
                    "NRMI-P004",
                    format!("slot {who}: collect of call {seq} failed: {e}"),
                ));
                return;
            }
        };
        let twin_root = self.slots[which].twin_root;
        let got = client_apply_reply(&mut self.client, pending, &payload);
        let want = service_logic(&mut self.twin, twin_root);
        match (got, want) {
            (Ok((got, _stats)), Ok(want)) => {
                if got != want {
                    report.push(Diagnostic::error(
                        "NRMI-P009",
                        format!(
                            "slot {who}: reply routed to the wrong call: got {got:?}, \
                             want {want:?}"
                        ),
                    ));
                }
                match graph::isomorphic(
                    &self.client.state.heap,
                    self.slots[which].root,
                    &self.twin,
                    twin_root,
                ) {
                    Ok(true) => {}
                    Ok(false) => report.push(Diagnostic::error(
                        "NRMI-P008",
                        format!(
                            "slot {who}: restored graph diverged from its oracle — a \
                             neighboring in-flight call tore the restore"
                        ),
                    )),
                    Err(e) => report.push(Diagnostic::error(
                        "NRMI-P008",
                        format!("slot {who}: isomorphism comparison failed: {e}"),
                    )),
                }
            }
            (Err(e), _) => report.push(Diagnostic::error(
                "NRMI-P004",
                format!("slot {who}: restore failed: {e}"),
            )),
            (_, Err(e)) => report.push(Diagnostic::error(
                "NRMI-P004",
                format!("local oracle itself failed (checker bug): {e}"),
            )),
        }
    }

    fn check_heaps(&mut self, report: &mut Report) {
        let side = self.side.lock().expect("poisoned");
        for (label, code, heap) in [
            ("client", "NRMI-P001", &self.client.state.heap),
            ("server", "NRMI-P002", &side.server.state.heap),
            ("oracle", "NRMI-P001", &self.twin),
        ] {
            for v in validate(heap) {
                report.push(
                    Diagnostic::error(code, format!("{label} heap corrupted: {v}"))
                        .with("heap", label),
                );
            }
        }
    }

    /// Every issued call executes exactly once, at dispatch; replays
    /// (after a dropped reply's retransmission) never re-execute.
    fn check_exactly_once(&mut self, report: &mut Report) {
        let ran = self.executions.load(std::sync::atomic::Ordering::SeqCst);
        if ran != self.issued {
            report.push(Diagnostic::error(
                "NRMI-P007",
                format!(
                    "pipelined at-most-once broken: {ran} execution(s) for {} issued call(s)",
                    self.issued
                ),
            ));
        }
    }
}

/// Runs one pipelined action sequence against a fresh world, returning
/// all violations (panics become `NRMI-P006`).
pub fn check_pipelined_sequence(actions: &[PipelinedAction]) -> Report {
    let trace = actions
        .iter()
        .map(|a| format!("{a:?}"))
        .collect::<Vec<_>>()
        .join(" → ");
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut world = PipelinedWorld::new();
        let mut report = Report::new();
        for (i, &action) in actions.iter().enumerate() {
            world.step(action, &mut report);
            if report.has_errors() {
                return (report, Some(i));
            }
        }
        (report, None)
    }));
    match outcome {
        Ok((mut report, failed_at)) => {
            if let Some(i) = failed_at {
                report = report
                    .diagnostics()
                    .iter()
                    .cloned()
                    .map(|d| d.with("trace", &trace).with("failed_at_step", i))
                    .collect();
            }
            report
        }
        Err(payload) => {
            let msg = panic_message(&payload);
            let mut report = Report::new();
            report.push(
                Diagnostic::error("NRMI-P006", format!("sequence panicked: {msg}"))
                    .with("trace", &trace),
            );
            report
        }
    }
}

// ---------------------------------------------------------------------------
// The reactor dispatch model: NRMI-P010
// ---------------------------------------------------------------------------

/// One action of the reactor dispatch model: two client connections
/// multiplexed through the **real** reactor step function
/// ([`reactor_classify`]) onto a shared job queue drained by two
/// worker nodes, with the checker in full control of execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReactorAction {
    /// Issue a copy-restore call on connection A: marshal with the real
    /// client, wrap in the tagged envelope, classify. A fresh
    /// pipelineable call must classify as `Offload` — anything else is
    /// a `P010` violation.
    IssueA,
    /// Issue a call on connection B.
    IssueB,
    /// Pop the oldest queued job and dispatch it on the next worker
    /// node (workers alternate, as the real pool's threads do), store
    /// the reply in the shared cache, and route the tagged reply to the
    /// owning connection's inbox.
    RunJob,
    /// Re-classify connection A's last tagged call frame, byte for
    /// byte, as a retransmission would arrive. Legal outcomes are
    /// `Ignore` (still executing) or a cached `Reply`; a second
    /// `Offload` is a double execution.
    RetransmitA,
    /// Collect connection A's reply from its inbox (a no-op while the
    /// job is still queued) and restore against A's private oracle.
    CollectA,
    /// Collect connection B.
    CollectB,
}

/// The reactor model's alphabet.
pub const REACTOR_ALPHABET: [ReactorAction; 6] = [
    ReactorAction::IssueA,
    ReactorAction::IssueB,
    ReactorAction::RunJob,
    ReactorAction::RetransmitA,
    ReactorAction::CollectA,
    ReactorAction::CollectB,
];

/// One client connection of the reactor model: its own real
/// [`ClientNode`] and private oracle twin (the reactor's workers share
/// heaps *across* calls of different connections, so a torn restore
/// shows up as client-vs-twin divergence), plus the in-flight state the
/// reactor tracks per connection.
struct ReactorConn {
    client: ClientNode,
    twin: Heap,
    root: ObjId,
    twin_root: ObjId,
    nonce: u64,
    next_seq: u64,
    pending: Option<(u64, PendingCall)>,
    /// The exact tagged frame last sent, for retransmission.
    last_tagged: Option<Frame>,
    /// Tagged replies routed back to this connection (the reactor's
    /// completion channel keyed by connection token).
    inbox: VecDeque<Frame>,
}

/// Fresh world per reactor sequence: one [`SharedServer`], two
/// connections with distinct session nonces, the shared job queue, and
/// two worker nodes built with [`SharedServer::connection_node`]
/// exactly as the reactor's pool builds them.
struct ReactorWorld {
    shared: Arc<nrmi_core::SharedServer>,
    conns: [ReactorConn; 2],
    /// Queued jobs: (connection index, nonce, seq, inner call frame).
    jobs: VecDeque<(usize, u64, u64, Frame)>,
    workers: Vec<(ServerNode, WarmCaches)>,
    next_worker: usize,
    executions: Arc<std::sync::atomic::AtomicUsize>,
    dispatched: usize,
}

impl ReactorWorld {
    fn new() -> Self {
        let mut reg = ClassRegistry::new();
        reg.define("Node")
            .field_int("data")
            .field_ref("left")
            .field_ref("right")
            .restorable()
            .register();
        let registry = reg.snapshot();

        let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
        let executions = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let counter = Arc::clone(&executions);
        server.bind(
            SVC,
            Box::new(FnService::new(move |_method, args, heap| {
                let root = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("want a root reference"))?;
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                service_logic(heap, root)
            })),
        );
        let shared = Arc::new(nrmi_core::SharedServer::from_node(server));

        let conn = |nonce: u64, seed: i32| -> ReactorConn {
            let mut client = ClientNode::new(registry.clone(), MachineSpec::fast());
            let mut twin = Heap::new(registry.clone());
            let root = build_tree(&mut client.state.heap, &registry);
            let twin_root = build_tree(&mut twin, &registry);
            client
                .state
                .heap
                .set_field(root, "data", Value::Int(seed))
                .expect("seed conn");
            twin.set_field(twin_root, "data", Value::Int(seed))
                .expect("seed twin");
            ReactorConn {
                client,
                twin,
                root,
                twin_root,
                nonce,
                next_seq: 1,
                pending: None,
                last_tagged: None,
                inbox: VecDeque::new(),
            }
        };
        // Distinct nonces and histories: connection A's values evolve
        // from 100, B's from 200, so a reply executed on the wrong
        // state or routed to the wrong connection is observable.
        let conn_a = conn(0xAAAA_1111, 100);
        let conn_b = conn(0xBBBB_2222, 200);

        let workers = (0..2)
            .map(|_| (shared.connection_node(), WarmCaches::new()))
            .collect();

        ReactorWorld {
            shared,
            conns: [conn_a, conn_b],
            jobs: VecDeque::new(),
            workers,
            next_worker: 0,
            executions,
            dispatched: 0,
        }
    }

    fn step(&mut self, action: ReactorAction, report: &mut Report) {
        match action {
            ReactorAction::IssueA => self.do_issue(0, "A", report),
            ReactorAction::IssueB => self.do_issue(1, "B", report),
            ReactorAction::RunJob => self.do_run_job(report),
            ReactorAction::RetransmitA => self.do_retransmit(0, "A", report),
            ReactorAction::CollectA => self.do_collect(0, "A", report),
            ReactorAction::CollectB => self.do_collect(1, "B", report),
        }
        self.check_heaps(report);
        self.check_exactly_once(report);
    }

    fn do_issue(&mut self, which: usize, who: &str, report: &mut Report) {
        if self.conns[which].pending.is_some() {
            return;
        }
        let root = self.conns[which].root;
        let marshalled = client_marshal_call(
            &mut self.conns[which].client,
            SVC,
            METHOD,
            &[Value::Ref(root)],
            CallOptions::forced(PassMode::CopyRestore),
        );
        let (frame, pending) = match marshalled {
            Ok(split) => split,
            Err(e) => {
                report.push(Diagnostic::error(
                    "NRMI-P004",
                    format!("conn {who}: marshal failed: {e}"),
                ));
                return;
            }
        };
        let seq = self.conns[which].next_seq;
        self.conns[which].next_seq += 1;
        let tagged = Frame::Tagged {
            nonce: self.conns[which].nonce,
            seq,
            frame: Box::new(frame),
        };
        self.conns[which].last_tagged = Some(tagged.clone());
        match nrmi_core::reactor_classify(&self.shared, true, tagged) {
            nrmi_core::ReactorStep::Offload {
                nonce,
                seq: got_seq,
                call,
            } => {
                if nonce != self.conns[which].nonce || got_seq != seq {
                    report.push(Diagnostic::error(
                        "NRMI-P010",
                        format!(
                            "conn {who}: classify mangled the call id: sent \
                             ({:#x}, {seq}), offloaded ({nonce:#x}, {got_seq})",
                            self.conns[which].nonce
                        ),
                    ));
                    return;
                }
                self.jobs.push_back((which, nonce, got_seq, call));
                self.conns[which].pending = Some((seq, pending));
            }
            other => report.push(Diagnostic::error(
                "NRMI-P010",
                format!(
                    "conn {who}: a fresh pipelineable call must offload to the \
                     worker pool; the reactor answered {other:?}"
                ),
            )),
        }
    }

    fn do_run_job(&mut self, _report: &mut Report) {
        let Some((which, nonce, seq, call)) = self.jobs.pop_front() else {
            return;
        };
        // Workers alternate, as the real pool's threads race: the same
        // connection's consecutive calls may execute on different
        // worker heaps.
        let slot = self.next_worker % self.workers.len();
        self.next_worker += 1;
        let (node, warm) = &mut self.workers[slot];
        let reply = nrmi_core::dispatch_tagged(node, warm, &mut NullTransport, call);
        self.dispatched += 1;
        self.shared.replies.store(nonce, seq, &reply);
        self.conns[which].inbox.push_back(Frame::Tagged {
            nonce,
            seq,
            frame: Box::new(reply),
        });
    }

    fn do_retransmit(&mut self, which: usize, who: &str, report: &mut Report) {
        let Some(tagged) = self.conns[which].last_tagged.clone() else {
            return;
        };
        match nrmi_core::reactor_classify(&self.shared, true, tagged) {
            // Still queued or executing: the duplicate is dropped
            // unanswered and the client's next retransmission replays
            // the stored reply.
            nrmi_core::ReactorStep::Ignore => {}
            // Executed: answered from the cache. Route it to the
            // connection like any reply; a stale duplicate for an
            // already-collected call just sits in the inbox, exactly as
            // the client's demultiplexer discards unsolicited frames.
            nrmi_core::ReactorStep::Reply(reply) => self.conns[which].inbox.push_back(reply),
            other => report.push(Diagnostic::error(
                "NRMI-P010",
                format!(
                    "conn {who}: a retransmitted call id must be ignored or \
                     answered from the reply cache, never {other:?} — that is a \
                     double execution"
                ),
            )),
        }
    }

    fn do_collect(&mut self, which: usize, who: &str, report: &mut Report) {
        let Some(&(seq, _)) = self.conns[which].pending.as_ref() else {
            return;
        };
        let want_nonce = self.conns[which].nonce;
        // The reply may not have been produced yet (job still queued):
        // leave the call pending, as the blocked client would.
        let Some(pos) = self.conns[which].inbox.iter().position(|f| {
            matches!(
                f,
                Frame::Tagged { seq: s, .. } | Frame::ReplyCached { seq: s, .. } if *s == seq
            )
        }) else {
            return;
        };
        let frame = self.conns[which].inbox.remove(pos).expect("indexed");
        let (nonce, inner) = match frame {
            Frame::Tagged { nonce, frame, .. } | Frame::ReplyCached { nonce, frame, .. } => {
                (nonce, *frame)
            }
            other => unreachable!("matched above: {other:?}"),
        };
        if nonce != want_nonce {
            report.push(Diagnostic::error(
                "NRMI-P010",
                format!(
                    "conn {who}: reply crossed connections: call id nonce \
                     {nonce:#x}, connection nonce {want_nonce:#x}"
                ),
            ));
            return;
        }
        let payload = match inner {
            Frame::CallReply { payload } => payload,
            other => {
                report.push(Diagnostic::error(
                    "NRMI-P010",
                    format!("conn {who}: call {seq} answered with {other:?}"),
                ));
                return;
            }
        };
        let (_, pending) = self.conns[which].pending.take().expect("checked above");
        let twin_root = self.conns[which].twin_root;
        let got = client_apply_reply(&mut self.conns[which].client, pending, &payload);
        let want = service_logic(&mut self.conns[which].twin, twin_root);
        match (got, want) {
            (Ok((got, _stats)), Ok(want)) => {
                if got != want {
                    report.push(Diagnostic::error(
                        "NRMI-P010",
                        format!(
                            "conn {who}: reply routed to the wrong call or executed \
                             on torn state: got {got:?}, want {want:?}"
                        ),
                    ));
                }
                match graph::isomorphic(
                    &self.conns[which].client.state.heap,
                    self.conns[which].root,
                    &self.conns[which].twin,
                    twin_root,
                ) {
                    Ok(true) => {}
                    Ok(false) => report.push(Diagnostic::error(
                        "NRMI-P010",
                        format!(
                            "conn {who}: restored graph diverged from its oracle — \
                             another connection's call tore this worker dispatch"
                        ),
                    )),
                    Err(e) => report.push(Diagnostic::error(
                        "NRMI-P010",
                        format!("conn {who}: isomorphism comparison failed: {e}"),
                    )),
                }
            }
            (Err(e), _) => report.push(Diagnostic::error(
                "NRMI-P004",
                format!("conn {who}: restore failed: {e}"),
            )),
            (_, Err(e)) => report.push(Diagnostic::error(
                "NRMI-P004",
                format!("local oracle itself failed (checker bug): {e}"),
            )),
        }
    }

    fn check_heaps(&mut self, report: &mut Report) {
        for (which, who) in [(0usize, "A"), (1, "B")] {
            for (label, code, heap) in [
                ("client", "NRMI-P001", &self.conns[which].client.state.heap),
                ("oracle", "NRMI-P001", &self.conns[which].twin),
            ] {
                for v in validate(heap) {
                    report.push(
                        Diagnostic::error(code, format!("conn {who} {label} heap corrupted: {v}"))
                            .with("heap", label),
                    );
                }
            }
        }
        for (i, (node, _)) in self.workers.iter().enumerate() {
            for v in validate(&node.state.heap) {
                report.push(
                    Diagnostic::error("NRMI-P002", format!("worker {i} heap corrupted: {v}"))
                        .with("heap", "worker"),
                );
            }
        }
    }

    /// Every offloaded job executes exactly once, when a `RunJob` pops
    /// it — retransmissions must never enqueue a second execution.
    fn check_exactly_once(&mut self, report: &mut Report) {
        let ran = self.executions.load(std::sync::atomic::Ordering::SeqCst);
        if ran != self.dispatched {
            report.push(Diagnostic::error(
                "NRMI-P007",
                format!(
                    "reactor at-most-once broken: {ran} service execution(s) for \
                     {} dispatched job(s)",
                    self.dispatched
                ),
            ));
        }
    }
}

/// Runs one reactor action sequence against a fresh world, returning
/// all violations (panics become `NRMI-P006`).
pub fn check_reactor_sequence(actions: &[ReactorAction]) -> Report {
    let trace = actions
        .iter()
        .map(|a| format!("{a:?}"))
        .collect::<Vec<_>>()
        .join(" → ");
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut world = ReactorWorld::new();
        let mut report = Report::new();
        for (i, &action) in actions.iter().enumerate() {
            world.step(action, &mut report);
            if report.has_errors() {
                return (report, Some(i));
            }
        }
        (report, None)
    }));
    match outcome {
        Ok((mut report, failed_at)) => {
            if let Some(i) = failed_at {
                report = report
                    .diagnostics()
                    .iter()
                    .cloned()
                    .map(|d| d.with("trace", &trace).with("failed_at_step", i))
                    .collect();
            }
            report
        }
        Err(payload) => {
            let msg = panic_message(&payload);
            let mut report = Report::new();
            report.push(
                Diagnostic::error("NRMI-P006", format!("sequence panicked: {msg}"))
                    .with("trace", &trace),
            );
            report
        }
    }
}

// ---------------------------------------------------------------------------
// Enumeration
// ---------------------------------------------------------------------------

/// Bounds and alphabet for one [`model_check`] run.
#[derive(Clone, Debug)]
pub struct ModelCheckConfig {
    /// Exhaustive depth over [`CORE_ALPHABET`].
    pub core_depth: usize,
    /// Exhaustive depth over [`ADVERSARIAL_ALPHABET`].
    pub adversarial_depth: usize,
    /// Exhaustive depth over [`RELIABILITY_ALPHABET`] (the retry /
    /// duplicate-suppression / reconnect state machine).
    pub reliability_depth: usize,
    /// Exhaustive depth over [`SHARED_ALPHABET`] (two connections
    /// interleaved on one lock-split server).
    pub shared_depth: usize,
    /// Exhaustive depth over [`SHARED_GRAPH_ALPHABET`] (two warm clients
    /// leased onto ONE server heap, each call writing the other's graph
    /// out-of-band — the coherence/lease model).
    pub shared_graph_depth: usize,
    /// Exhaustive depth over [`PIPELINED_ALPHABET`] (two calls in flight
    /// on one multiplexed connection, replies reordered and dropped).
    pub pipelined_depth: usize,
    /// Exhaustive depth over [`REACTOR_ALPHABET`] (two connections
    /// multiplexed through the reactor's classify/offload/complete step
    /// function onto alternating worker nodes).
    pub reactor_depth: usize,
    /// Stop after this many error diagnostics (a broken invariant tends
    /// to fail thousands of sequences identically).
    pub max_errors: usize,
}

impl Default for ModelCheckConfig {
    fn default() -> Self {
        // Depth 6 over the 6-action core alphabet: 46_656 sequences,
        // ~280k protocol actions; plus 9^4 = 6_561 adversarial sequences,
        // 6^4 = 1_296 reliability sequences, 6^5 = 7_776 two-connection
        // shared-server sequences, 7^4 = 2_401 shared-graph coherence
        // sequences, 6^4 = 1_296 pipelined reply-routing sequences, and
        // 6^4 = 1_296 reactor dispatch sequences.
        ModelCheckConfig {
            core_depth: 6,
            adversarial_depth: 4,
            reliability_depth: 4,
            shared_depth: 5,
            shared_graph_depth: 4,
            pipelined_depth: 4,
            reactor_depth: 4,
            max_errors: 25,
        }
    }
}

/// Runs one action sequence against a fresh world, returning all
/// violations. Panics inside the sequence are caught and reported as
/// `NRMI-P006` with the action trace.
pub fn check_sequence(actions: &[Action]) -> Report {
    let trace = trace_of(actions);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut world = World::new();
        let mut report = Report::new();
        for (i, &action) in actions.iter().enumerate() {
            world.step(action, &mut report);
            if report.has_errors() {
                // Tag findings with how far in the failure appeared.
                return (report, Some(i));
            }
        }
        (report, None)
    }));
    match outcome {
        Ok((mut report, failed_at)) => {
            if let Some(i) = failed_at {
                report = report
                    .diagnostics()
                    .iter()
                    .cloned()
                    .map(|d| d.with("trace", &trace).with("failed_at_step", i))
                    .collect();
            }
            report
        }
        Err(payload) => {
            let msg = panic_message(&payload);
            let mut report = Report::new();
            report.push(
                Diagnostic::error("NRMI-P006", format!("sequence panicked: {msg}"))
                    .with("trace", &trace),
            );
            report
        }
    }
}

fn trace_of(actions: &[Action]) -> String {
    actions
        .iter()
        .map(|a| format!("{a:?}"))
        .collect::<Vec<_>>()
        .join(" → ")
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Exhaustively enumerates every action sequence of exactly
/// `cfg.core_depth` over the core alphabet and `cfg.adversarial_depth`
/// over the adversarial alphabet, running each against a fresh
/// client/server pair. Checking full-depth sequences covers every
/// shorter prefix, since each sequence re-executes (and re-checks) its
/// prefix from scratch.
pub fn model_check(cfg: &ModelCheckConfig) -> Report {
    let mut report = Report::new();
    let mut sequences = 0usize;

    // Panics are expected to be absent; silence the default hook so a
    // genuine finding doesn't spray 46k backtraces, and restore it after.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut inner = Report::new();
        let mut count = 0usize;
        for (alphabet, depth) in [
            (&CORE_ALPHABET[..], cfg.core_depth),
            (&ADVERSARIAL_ALPHABET[..], cfg.adversarial_depth),
        ] {
            enumerate(
                alphabet,
                depth,
                cfg.max_errors,
                &mut inner,
                &mut count,
                check_sequence,
            );
        }
        enumerate(
            &RELIABILITY_ALPHABET[..],
            cfg.reliability_depth,
            cfg.max_errors,
            &mut inner,
            &mut count,
            check_reliability_sequence,
        );
        enumerate(
            &SHARED_ALPHABET[..],
            cfg.shared_depth,
            cfg.max_errors,
            &mut inner,
            &mut count,
            check_shared_sequence,
        );
        enumerate(
            &SHARED_GRAPH_ALPHABET[..],
            cfg.shared_graph_depth,
            cfg.max_errors,
            &mut inner,
            &mut count,
            check_shared_graph_sequence,
        );
        enumerate(
            &PIPELINED_ALPHABET[..],
            cfg.pipelined_depth,
            cfg.max_errors,
            &mut inner,
            &mut count,
            check_pipelined_sequence,
        );
        enumerate(
            &REACTOR_ALPHABET[..],
            cfg.reactor_depth,
            cfg.max_errors,
            &mut inner,
            &mut count,
            check_reactor_sequence,
        );
        (inner, count)
    }));
    std::panic::set_hook(prev_hook);

    match result {
        Ok((inner, count)) => {
            report.merge(inner);
            sequences = count;
        }
        Err(_) => report.push(Diagnostic::error(
            "NRMI-P006",
            "the enumerator itself panicked (checker bug)",
        )),
    }

    let (errors, _, _) = report.counts();
    report.push(
        Diagnostic::info(
            "NRMI-P000",
            format!(
                "protocol enumeration explored {sequences} sequences \
                 (core depth {}, adversarial depth {}, reliability depth {}, \
                 shared depth {}, shared-graph depth {}, pipelined depth {}, \
                 reactor depth {}): {errors} violation(s)",
                cfg.core_depth,
                cfg.adversarial_depth,
                cfg.reliability_depth,
                cfg.shared_depth,
                cfg.shared_graph_depth,
                cfg.pipelined_depth,
                cfg.reactor_depth
            ),
        )
        .with("sequences", sequences),
    );
    report
}

/// Odometer-style enumeration of all `|alphabet|^depth` sequences,
/// running each through `run` (one of the per-sequence checkers).
fn enumerate<A: Copy>(
    alphabet: &[A],
    depth: usize,
    max_errors: usize,
    report: &mut Report,
    sequences: &mut usize,
    run: impl Fn(&[A]) -> Report,
) {
    if depth == 0 {
        return;
    }
    let mut digits = vec![0usize; depth];
    loop {
        let actions: Vec<A> = digits.iter().map(|&d| alphabet[d]).collect();
        report.merge(run(&actions));
        *sequences += 1;
        if report.counts().0 >= max_errors {
            report.push(Diagnostic::warning(
                "NRMI-P000",
                format!("stopped after {max_errors} errors; enumeration incomplete"),
            ));
            return;
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            digits[i] += 1;
            if digits[i] < alphabet.len() {
                break;
            }
            digits[i] = 0;
            i += 1;
            if i == depth {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_call_round_trips() {
        let report = check_sequence(&[Action::Call, Action::Call, Action::Call]);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn coherence_and_recovery_sequences_are_clean() {
        for seq in [
            vec![Action::Call, Action::MutateServer, Action::Call],
            vec![Action::Call, Action::Evict, Action::Call],
            vec![
                Action::Call,
                Action::Prune,
                Action::Call,
                Action::Graft,
                Action::Call,
            ],
            vec![
                Action::Graft,
                Action::Call,
                Action::StaleGeneration,
                Action::Call,
            ],
            vec![Action::Call, Action::GarbagePayload, Action::Call],
            vec![Action::UnknownCache, Action::Call, Action::UnknownCache],
        ] {
            let report = check_sequence(&seq);
            assert!(
                !report.has_errors(),
                "sequence {seq:?} failed:\n{}",
                report.render()
            );
        }
    }

    #[test]
    fn shallow_exhaustive_core_enumeration_is_clean() {
        // Depth 3 over both alphabets runs fast enough for debug builds;
        // CI's `tables -- check` job runs the full depth-6 configuration
        // in release.
        let report = model_check(&ModelCheckConfig {
            core_depth: 3,
            adversarial_depth: 2,
            reliability_depth: 2,
            shared_depth: 3,
            shared_graph_depth: 3,
            pipelined_depth: 3,
            reactor_depth: 3,
            max_errors: 25,
        });
        assert!(!report.has_errors(), "{}", report.render());
        assert!(report.has_code("NRMI-P000"), "coverage note present");
    }

    #[test]
    fn reliability_fault_sequences_are_clean() {
        use ReliabilityAction as R;
        for seq in [
            vec![R::Call, R::Call],
            vec![R::DropReply, R::Call, R::Call],
            vec![R::DropRequest, R::Call, R::MutateClient, R::Call],
            vec![R::DuplicateRequest, R::Call, R::Call],
            vec![R::Disconnect, R::Call, R::Call],
            // Reply lost, then the connection too: the retransmission
            // crosses a reconnect and must be served from the cache.
            vec![R::Call, R::DropReply, R::Disconnect, R::Call],
            // Everything at once against a single call.
            vec![
                R::DropRequest,
                R::DropReply,
                R::DuplicateRequest,
                R::Disconnect,
                R::Call,
                R::Call,
            ],
        ] {
            let report = check_reliability_sequence(&seq);
            assert!(
                !report.has_errors(),
                "sequence {seq:?} failed:\n{}",
                report.render()
            );
        }
    }

    #[test]
    fn shared_two_connection_sequences_are_clean() {
        use SharedAction as S;
        for seq in [
            // Interleaved seeding: both connections seed against the
            // same shared server and stay independent.
            vec![S::CallA, S::CallB, S::CallA, S::CallB],
            // Dirty deltas cross the shared reply cache interleaved.
            vec![
                S::CallA,
                S::CallB,
                S::MutateA,
                S::MutateB,
                S::CallA,
                S::CallB,
            ],
            // One connection evicts mid-stream; the other must not care.
            vec![S::CallA, S::CallB, S::EvictA, S::CallB, S::CallA],
            // Eviction of a never-seeded session, then cross traffic.
            vec![S::EvictB, S::CallA, S::CallB],
        ] {
            let report = check_shared_sequence(&seq);
            assert!(
                !report.has_errors(),
                "sequence {seq:?} failed:\n{}",
                report.render()
            );
        }
    }

    #[test]
    fn shared_graph_coherence_sequences_are_clean() {
        use SharedGraphAction as G;
        for seq in [
            // Alternating calls: every call dirties the peer's leased
            // graph; every next call must see the CacheStale repair.
            vec![G::CallA, G::CallB, G::CallA, G::CallB],
            // An unshipped local write races the peer's out-of-band
            // poke: the positional merge must let the client win.
            vec![G::CallA, G::CallB, G::MutateA, G::CallA, G::CallB],
            // Both sides write locally, then both call: client-wins on
            // both roots, no repair patch may clobber either.
            vec![G::CallA, G::CallB, G::MutateA, G::MutateB, G::CallA, G::CallB],
            // A's teardown while B holds a leased session on the same
            // heap: B's objects must survive, A reconnects via miss.
            vec![G::CallA, G::CallB, G::DropA, G::CallB, G::CallA],
            // Teardown of a dirtied (incoherent) session, then reuse.
            vec![G::CallA, G::CallB, G::MutateA, G::DropA, G::CallA],
            // Eviction after the peer poked the evicted graph: the
            // incoherent entry must leak, not free, and B stays intact.
            vec![G::CallA, G::CallB, G::EvictA, G::CallB, G::CallA],
            // Teardown and eviction against never-seeded sessions.
            vec![G::DropA, G::EvictB, G::CallA, G::CallB],
        ] {
            let report = check_shared_graph_sequence(&seq);
            assert!(
                !report.has_errors(),
                "sequence {seq:?} failed:\n{}",
                report.render()
            );
        }
    }

    #[test]
    fn pipelined_reply_routing_sequences_are_clean() {
        use PipelinedAction as P;
        for seq in [
            // Plain pipelining: two in flight, collected in issue order.
            vec![P::IssueA, P::IssueB, P::CollectA, P::CollectB],
            // Collected in reverse: the demux resolves B first and
            // parks A's reply for its later collect.
            vec![P::IssueA, P::IssueB, P::CollectB, P::CollectA],
            // Replies cross on the wire: routing must follow call ids,
            // not arrival order.
            vec![
                P::IssueA,
                P::IssueB,
                P::SwapReplies,
                P::CollectA,
                P::CollectB,
            ],
            // A's reply is lost: its collect retransmits and replays
            // from the cache while B's reply sits queued behind it.
            vec![P::IssueA, P::IssueB, P::DropReply, P::CollectA, P::CollectB],
            // Collect with nothing in flight: the typed NoPendingCall
            // error, not a panic (the regression the satellite fixed).
            vec![P::IssueA, P::CollectA, P::CollectA],
            // Back-to-back rounds reuse the slots with evolved values.
            vec![
                P::IssueA,
                P::CollectA,
                P::IssueB,
                P::IssueA,
                P::SwapReplies,
                P::CollectA,
                P::CollectB,
            ],
        ] {
            let report = check_pipelined_sequence(&seq);
            assert!(
                !report.has_errors(),
                "sequence {seq:?} failed:\n{}",
                report.render()
            );
        }
    }

    #[test]
    fn reactor_dispatch_sequences_are_clean() {
        use ReactorAction as R;
        for seq in [
            // One call through the whole offload path.
            vec![R::IssueA, R::RunJob, R::CollectA],
            // Both connections in flight; jobs drain in either order
            // relative to collects, replies route by connection.
            vec![
                R::IssueA,
                R::IssueB,
                R::RunJob,
                R::RunJob,
                R::CollectB,
                R::CollectA,
            ],
            // Collect before the job ran: a no-op, then the real thing.
            vec![R::IssueA, R::CollectA, R::RunJob, R::CollectA],
            // Retransmission of a queued call: ignored (in progress),
            // executed once, collected once.
            vec![R::IssueA, R::RetransmitA, R::RunJob, R::CollectA],
            // Retransmission of an executed call: answered from the
            // cache, and the cached reply satisfies the collect.
            vec![R::IssueA, R::RunJob, R::RetransmitA, R::CollectA],
            // Back-to-back rounds on one connection interleaved with
            // the other: consecutive calls land on different worker
            // heaps.
            vec![
                R::IssueA,
                R::RunJob,
                R::CollectA,
                R::IssueB,
                R::IssueA,
                R::RunJob,
                R::RunJob,
                R::CollectA,
                R::CollectB,
            ],
        ] {
            let report = check_reactor_sequence(&seq);
            assert!(
                !report.has_errors(),
                "sequence {seq:?} failed:\n{}",
                report.render()
            );
        }
    }

    #[test]
    fn reactor_world_replays_retransmissions_from_the_cache() {
        use ReactorAction as R;
        let mut world = ReactorWorld::new();
        let mut report = Report::new();
        for action in [
            R::IssueA,
            R::RetransmitA,
            R::RunJob,
            R::RetransmitA,
            R::CollectA,
        ] {
            world.step(action, &mut report);
        }
        assert!(!report.has_errors(), "{}", report.render());
        assert_eq!(
            world.executions.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "two retransmissions around one execution must not re-execute"
        );
    }

    #[test]
    fn pipelined_world_counts_one_execution_per_issued_call() {
        use PipelinedAction as P;
        let mut world = PipelinedWorld::new();
        let mut report = Report::new();
        for action in [P::IssueA, P::IssueB, P::DropReply, P::CollectA, P::CollectB] {
            world.step(action, &mut report);
        }
        assert!(!report.has_errors(), "{}", report.render());
        assert_eq!(
            world.executions.load(std::sync::atomic::Ordering::SeqCst),
            2,
            "the dropped reply's retransmission must replay, not re-execute"
        );
    }

    #[test]
    fn shared_world_counts_executions_across_connections() {
        let mut world = SharedWorld::new();
        let mut report = Report::new();
        world.step(SharedAction::CallA, &mut report);
        world.step(SharedAction::CallB, &mut report);
        world.step(SharedAction::CallA, &mut report);
        assert!(!report.has_errors(), "{}", report.render());
        assert_eq!(
            world.executions.load(std::sync::atomic::Ordering::SeqCst),
            3,
            "each connection's calls execute exactly once on the shared server"
        );
    }

    #[test]
    fn duplicate_without_reply_cache_would_be_caught() {
        // Sanity that the at-most-once counter is live: dispatching the
        // same tagged request twice directly at a fresh server must
        // execute once and replay once.
        let mut world = ReliableWorld::new();
        let mut report = Report::new();
        world.step(ReliabilityAction::DuplicateRequest, &mut report);
        world.step(ReliabilityAction::Call, &mut report);
        assert!(!report.has_errors(), "{}", report.render());
        assert_eq!(
            world.executions.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "the duplicated request must execute exactly once"
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "full-depth enumeration; run in release (CI check job)"
    )]
    fn full_depth_enumeration_is_clean() {
        let report = model_check(&ModelCheckConfig::default());
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn judge_rejects_stale_service() {
        // A reply to a stale generation is the canonical state-corruption
        // bug; the judge must flag it.
        let diag = judge_reply(
            ReplyContext::StaleGeneration,
            &Frame::CallReply { payload: vec![] },
        )
        .expect("must be flagged");
        assert_eq!(diag.code, "NRMI-P004");
        assert!(judge_reply(ReplyContext::StaleGeneration, &Frame::CacheMiss).is_none());
        assert!(judge_reply(
            ReplyContext::GarbagePayload,
            &Frame::CallReply { payload: vec![] }
        )
        .is_some());
        assert!(judge_reply(ReplyContext::SeedCall, &Frame::CacheMiss).is_some());
        assert!(
            judge_reply(ReplyContext::WarmInStep, &Frame::CacheMiss).is_none(),
            "in-step miss is legal (invalidation)"
        );
    }
}
