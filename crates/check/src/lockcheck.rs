//! Lock-discipline analysis over the `nrmi-core` witness (`NRMI-L00x`,
//! DESIGN.md §3i).
//!
//! `nrmi-core`'s tracked locks record *what happened* — acquisition
//! order edges between [`LockClass`]es, blocking-transport entries with
//! locks held, same-class re-entry, hold-time watermarks. This module
//! is the judgement: [`check_lock_witness`] turns a
//! [`WitnessSnapshot`] into [`Diagnostic`]s the same way the schema
//! analyzer judges a registry.
//!
//! The codes:
//!
//! * **`NRMI-L000`** (info) — audit summary: classes observed, order
//!   edges, accepted blocking holds. Emitted whenever the witness saw
//!   anything, so a "clean" report still proves the auditor ran.
//! * **`NRMI-L001`** (error) — a cycle in the class acquisition-order
//!   graph. Two code paths took the same pair of lock domains in
//!   opposite orders; under the right interleaving they deadlock, even
//!   if no run ever has. This is the lockdep argument: the *order
//!   violation* is the bug, not the hang.
//! * **`NRMI-L002`** (error, or info when covered by
//!   [`allow_blocking`](nrmi_core::allow_blocking)) — a tracked lock
//!   was held while entering a blocking transport operation
//!   (`tcp.recv`, `framed.write_frame`, `poller.wait`, …). Holding a
//!   lock across peer-controlled I/O lets one stalled client convoy
//!   every thread that needs the class — the PR 5 head-of-line bug
//!   class. Designed-in holds carry a reason string and report at info
//!   severity.
//! * **`NRMI-L003`** (error) — same-class re-entry: a thread acquired a
//!   class it already held exclusively. On the same instance this is an
//!   instant self-deadlock with non-reentrant locks; across instances
//!   it is an unordered same-class pair (the AB/BA hazard inside one
//!   class).
//! * **`NRMI-L004`** (warning) — a hot-path class
//!   ([`LockClass::hot_path`]) was held longer than
//!   [`HOT_HOLD_WATERMARK`]. Not a proof of a bug (the scheduler can
//!   stall any thread), which is why it warns instead of erroring; a
//!   watermark this high on a microsecond-scale class deserves a look.
//!
//! Analysis is pure over the snapshot, so these functions (and their
//! tests) work without the `lockcheck` feature — the snapshot is just
//! empty, and the report with it.

use nrmi_core::lockcheck::{snapshot, EdgeRecord, LockClass, WitnessSnapshot, HOT_HOLD_WATERMARK};

use crate::diag::{Diagnostic, Report};

/// Analyzes the live process-global witness: takes a snapshot and runs
/// [`check_lock_witness`] over it. Without the `lockcheck` feature the
/// snapshot is empty and the report is too.
pub fn check_locks() -> Report {
    check_lock_witness(&snapshot())
}

/// Panics with the rendered report if the live witness shows any
/// error-severity discipline violation. Integration suites call this
/// after driving the real server under `--features lockcheck`, turning
/// every existing scenario into a lock-discipline test.
///
/// # Panics
/// On any `NRMI-L001`/`L002`/`L003` error in the current witness.
pub fn assert_discipline_clean(context: &str) {
    let report = check_locks();
    assert!(
        !report.has_errors(),
        "lock-discipline audit failed after {context}:\n{}",
        report.render()
    );
}

/// Judges a witness snapshot, returning one diagnostic per distinct
/// finding (cycles and records are deduplicated by the witness itself).
pub fn check_lock_witness(snap: &WitnessSnapshot) -> Report {
    let mut report = Report::new();

    if !snap.is_empty() {
        let accepted = snap.blocking.iter().filter(|b| b.allowed.is_some()).count();
        report.push(
            Diagnostic::info("NRMI-L000", "lock-discipline audit ran")
                .with("classes_observed", snap.holds.len())
                .with("order_edges", snap.edges.len())
                .with("accepted_blocking_holds", accepted),
        );
    }

    for cycle in find_cycles(&snap.edges) {
        let mut names: Vec<&str> = cycle.iter().map(|c| c.name()).collect();
        names.push(cycle[0].name()); // close the loop for display
        let mut diag = Diagnostic::error(
            "NRMI-L001",
            "lock-order cycle: these classes are acquired in conflicting orders",
        )
        .with("cycle", names.join(" -> "));
        for window in cycle.windows(2) {
            if let Some(edge) = find_edge(&snap.edges, window[0], window[1]) {
                diag = diag.with(
                    format!("edge {} -> {}", window[0].name(), window[1].name()),
                    &edge.witness,
                );
            }
        }
        if let Some(edge) = find_edge(&snap.edges, cycle[cycle.len() - 1], cycle[0]) {
            diag = diag.with(
                format!(
                    "edge {} -> {}",
                    cycle[cycle.len() - 1].name(),
                    cycle[0].name()
                ),
                &edge.witness,
            );
        }
        report.push(diag);
    }

    for b in &snap.blocking {
        let held: Vec<&str> = b.held.iter().map(|c| c.name()).collect();
        let held = held.join(", ");
        match b.allowed {
            None => report.push(
                Diagnostic::error(
                    "NRMI-L002",
                    "lock held while entering a blocking transport operation",
                )
                .with("region", b.region)
                .with("held", held)
                .with("count", b.count)
                .with("witness", &b.witness),
            ),
            Some(reason) => report.push(
                Diagnostic::info(
                    "NRMI-L002",
                    "accepted: lock held across a blocking transport operation by design",
                )
                .with("region", b.region)
                .with("held", held)
                .with("reason", reason)
                .with("count", b.count),
            ),
        }
    }

    for r in &snap.reentrant {
        report.push(
            Diagnostic::error(
                "NRMI-L003",
                "same-class re-entry: thread acquired a lock class it already held",
            )
            .with("class", r.class.name())
            .with("count", r.count)
            .with("witness", &r.witness),
        );
    }

    for h in &snap.holds {
        if h.class.hot_path() && h.max_held > HOT_HOLD_WATERMARK {
            report.push(
                Diagnostic::warning(
                    "NRMI-L004",
                    "hot-path lock class held past the hold-time watermark",
                )
                .with("class", h.class.name())
                .with("max_held_ms", h.max_held.as_millis())
                .with("watermark_ms", HOT_HOLD_WATERMARK.as_millis())
                .with("acquisitions", h.acquisitions),
            );
        }
    }

    report
}

fn find_edge(edges: &[EdgeRecord], from: LockClass, to: LockClass) -> Option<&EdgeRecord> {
    edges.iter().find(|e| e.from == from && e.to == to)
}

/// Finds every distinct simple cycle in the class order graph,
/// canonicalized (rotated so the smallest class leads) and
/// deduplicated. With seven nodes exhaustive search is trivial: for
/// each edge `a -> b`, a shortest path `b ~> a` closes a cycle.
fn find_cycles(edges: &[EdgeRecord]) -> Vec<Vec<LockClass>> {
    let mut cycles: Vec<Vec<LockClass>> = Vec::new();
    for e in edges {
        if let Some(path) = shortest_path(edges, e.to, e.from) {
            // path = [e.to, ..., e.from]; prepending nothing and noting
            // the closing edge e.from -> e.to gives the cycle.
            let mut cycle = path;
            canonicalize(&mut cycle);
            if !cycles.contains(&cycle) {
                cycles.push(cycle);
            }
        }
    }
    cycles.sort();
    cycles
}

/// Breadth-first shortest path `from ~> to` over the edge list;
/// `Some(vec![from])` when `from == to` (a self-edge cycle cannot occur
/// — same-class nesting is recorded as re-entry, not as an edge).
fn shortest_path(edges: &[EdgeRecord], from: LockClass, to: LockClass) -> Option<Vec<LockClass>> {
    let mut prev: Vec<Option<LockClass>> = vec![None; LockClass::ALL.len()];
    let index = |c: LockClass| LockClass::ALL.iter().position(|&x| x == c).expect("class");
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen = vec![false; LockClass::ALL.len()];
    seen[index(from)] = true;
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![node];
            let mut cur = node;
            while let Some(p) = prev[index(cur)] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for e in edges.iter().filter(|e| e.from == node) {
            if !seen[index(e.to)] {
                seen[index(e.to)] = true;
                prev[index(e.to)] = Some(node);
                queue.push_back(e.to);
            }
        }
    }
    None
}

/// Rotates a cycle so its smallest class comes first, making rotations
/// of the same cycle compare equal.
fn canonicalize(cycle: &mut [LockClass]) {
    let min_ix = cycle
        .iter()
        .enumerate()
        .min_by_key(|&(_, c)| *c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    cycle.rotate_left(min_ix);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrmi_core::lockcheck::{BlockingRecord, HoldRecord, ReentrantRecord};
    use std::time::Duration;

    fn edge(from: LockClass, to: LockClass) -> EdgeRecord {
        EdgeRecord {
            from,
            to,
            count: 1,
            witness: format!("test thread holding [{}]", from.name()),
        }
    }

    #[test]
    fn empty_snapshot_is_clean_and_silent() {
        let report = check_lock_witness(&WitnessSnapshot::default());
        assert!(report.is_empty(), "{}", report.render());
    }

    #[test]
    fn acyclic_order_graph_is_clean() {
        let snap = WitnessSnapshot {
            edges: vec![
                edge(LockClass::Bindings, LockClass::Service),
                edge(LockClass::Service, LockClass::ReplyCacheShard),
                edge(LockClass::Bindings, LockClass::ReplyCacheShard),
            ],
            ..Default::default()
        };
        let report = check_lock_witness(&snap);
        assert!(!report.has_errors(), "{}", report.render());
        assert!(report.has_code("NRMI-L000"));
    }

    #[test]
    fn two_cycle_is_l001() {
        let snap = WitnessSnapshot {
            edges: vec![
                edge(LockClass::Service, LockClass::NodeHeap),
                edge(LockClass::NodeHeap, LockClass::Service),
            ],
            ..Default::default()
        };
        let report = check_lock_witness(&snap);
        assert!(report.has_code("NRMI-L001"), "{}", report.render());
        // One cycle, reported once despite two contributing edges.
        let (errors, _, _) = report.counts();
        assert_eq!(errors, 1, "{}", report.render());
    }

    #[test]
    fn three_cycle_through_intermediate_is_l001() {
        let snap = WitnessSnapshot {
            edges: vec![
                edge(LockClass::Bindings, LockClass::Service),
                edge(LockClass::Service, LockClass::SendQueue),
                edge(LockClass::SendQueue, LockClass::Bindings),
            ],
            ..Default::default()
        };
        let report = check_lock_witness(&snap);
        assert!(report.has_code("NRMI-L001"), "{}", report.render());
    }

    #[test]
    fn unallowed_blocking_hold_is_l002_error() {
        let snap = WitnessSnapshot {
            blocking: vec![BlockingRecord {
                region: "tcp.recv",
                held: vec![LockClass::ReplyCacheShard],
                allowed: None,
                count: 3,
                witness: "worker-1".into(),
            }],
            ..Default::default()
        };
        let report = check_lock_witness(&snap);
        assert!(report.has_errors());
        assert!(report.has_code("NRMI-L002"));
    }

    #[test]
    fn allowed_blocking_hold_is_l002_info() {
        let snap = WitnessSnapshot {
            blocking: vec![BlockingRecord {
                region: "framed.write_frame",
                held: vec![LockClass::Service],
                allowed: Some("service mutex held across mid-call callbacks by design"),
                count: 12,
                witness: "conn-3".into(),
            }],
            ..Default::default()
        };
        let report = check_lock_witness(&snap);
        assert!(!report.has_errors(), "{}", report.render());
        assert!(report.has_code("NRMI-L002"));
    }

    #[test]
    fn reentry_is_l003() {
        let snap = WitnessSnapshot {
            reentrant: vec![ReentrantRecord {
                class: LockClass::NodeHeap,
                count: 1,
                witness: "main".into(),
            }],
            ..Default::default()
        };
        let report = check_lock_witness(&snap);
        assert!(report.has_errors());
        assert!(report.has_code("NRMI-L003"));
    }

    #[test]
    fn hot_hold_past_watermark_is_l004_warning_only() {
        let snap = WitnessSnapshot {
            holds: vec![
                HoldRecord {
                    class: LockClass::ReplyCacheShard,
                    acquisitions: 100,
                    max_held: HOT_HOLD_WATERMARK + Duration::from_millis(1),
                },
                // Non-hot classes may idle holding their lock freely.
                HoldRecord {
                    class: LockClass::ReactorQueue,
                    acquisitions: 5,
                    max_held: Duration::from_secs(30),
                },
            ],
            ..Default::default()
        };
        let report = check_lock_witness(&snap);
        assert!(report.has_code("NRMI-L004"), "{}", report.render());
        assert!(!report.has_errors(), "L004 must warn, not error");
        let (_, warnings, _) = report.counts();
        assert_eq!(warnings, 1, "{}", report.render());
    }

    #[test]
    fn live_check_without_feature_or_activity_is_clean() {
        // Under the default build the witness never records; under
        // lockcheck this still holds only errors from *this* test
        // binary, which drives no server code.
        let report = check_locks();
        assert!(!report.has_errors(), "{}", report.render());
    }
}
