//! Seeded-fault self-test: every analyzer must catch every fault class
//! it claims to catch, with the exact diagnostic code.
//!
//! Each test plants one deliberate corruption — a wire-unsound
//! descriptor, a drifted registry pair, a dangling heap reference, an
//! illegal protocol reply — and asserts the analyzer reports it under
//! the right `NRMI-*` code. This is the analyzer's own regression net:
//! if a refactor silently stops detecting a fault class, one of these
//! goes red.

use nrmi_check::{analyze_registry, check_heap, diff_registries, judge_reply, ReplyContext};
use nrmi_heap::{ClassDescriptor, ClassFlags, ClassRegistry, FieldDescriptor, FieldType, Value};
use nrmi_transport::Frame;

/// A descriptor with `install`-level validity only; the analyzer is the
/// one that must complain.
fn desc(
    name: &str,
    fields: Vec<FieldDescriptor>,
    flags: ClassFlags,
    element: Option<FieldType>,
) -> ClassDescriptor {
    ClassDescriptor::new(name, fields, flags, element)
}

fn serializable() -> ClassFlags {
    ClassFlags {
        serializable: true,
        ..ClassFlags::default()
    }
}

#[test]
fn s001_duplicate_field_names() {
    let mut reg = ClassRegistry::new();
    reg.install(desc(
        "Shadowed",
        vec![
            FieldDescriptor::new("x", FieldType::Int),
            FieldDescriptor::new("x", FieldType::Long),
        ],
        serializable(),
        None,
    ))
    .unwrap();
    let report = analyze_registry(&reg);
    assert!(report.has_code("NRMI-S001"), "{}", report.render());
}

#[test]
fn s002_array_without_element_type() {
    let mut reg = ClassRegistry::new();
    reg.install(desc(
        "Int[]",
        vec![],
        ClassFlags {
            serializable: true,
            array: true,
            ..ClassFlags::default()
        },
        None,
    ))
    .unwrap();
    let report = analyze_registry(&reg);
    assert!(report.has_code("NRMI-S002"), "{}", report.render());
}

#[test]
fn s002_element_type_on_non_array() {
    let mut reg = ClassRegistry::new();
    reg.install(desc(
        "NotAnArray",
        vec![FieldDescriptor::new("x", FieldType::Int)],
        serializable(),
        Some(FieldType::Int),
    ))
    .unwrap();
    let report = analyze_registry(&reg);
    assert!(report.has_code("NRMI-S002"), "{}", report.render());
}

#[test]
fn s002_array_with_named_fields() {
    let mut reg = ClassRegistry::new();
    reg.install(desc(
        "Weird[]",
        vec![FieldDescriptor::new("len", FieldType::Int)],
        ClassFlags {
            serializable: true,
            array: true,
            ..ClassFlags::default()
        },
        Some(FieldType::Int),
    ))
    .unwrap();
    let report = analyze_registry(&reg);
    assert!(report.has_code("NRMI-S002"), "{}", report.render());
}

#[test]
fn s003_restorable_without_serializable() {
    let mut reg = ClassRegistry::new();
    reg.install(desc(
        "HalfMarked",
        vec![FieldDescriptor::new("x", FieldType::Int)],
        ClassFlags {
            restorable: true,
            ..ClassFlags::default()
        },
        None,
    ))
    .unwrap();
    let report = analyze_registry(&reg);
    assert!(report.has_code("NRMI-S003"), "{}", report.render());
}

#[test]
fn s003_stub_flag_on_user_class() {
    let mut reg = ClassRegistry::new();
    reg.install(desc(
        "Impostor",
        vec![FieldDescriptor::new("key", FieldType::Long)],
        ClassFlags {
            stub: true,
            ..ClassFlags::default()
        },
        None,
    ))
    .unwrap();
    let report = analyze_registry(&reg);
    assert!(report.has_code("NRMI-S003"), "{}", report.render());
}

#[test]
fn s003_stub_marked_for_copying() {
    // A registry whose (correctly named, correctly shaped) stub class is
    // additionally marked serializable: shape passes S004, the copying
    // contradiction is S003.
    let mut reg = ClassRegistry::default();
    reg.install(desc(
        "@RemoteStub",
        vec![FieldDescriptor::new("key", FieldType::Long)],
        ClassFlags {
            stub: true,
            serializable: true,
            ..ClassFlags::default()
        },
        None,
    ))
    .unwrap();
    let report = analyze_registry(&reg);
    assert!(report.has_code("NRMI-S003"), "{}", report.render());
    assert!(!report.has_code("NRMI-S004"), "{}", report.render());
}

#[test]
fn s004_missing_stub_class() {
    // `default()` skips the stub auto-registration `new()` performs.
    let reg = ClassRegistry::default();
    let report = analyze_registry(&reg);
    assert!(report.has_code("NRMI-S004"), "{}", report.render());
}

#[test]
fn s004_malformed_stub_class() {
    let mut reg = ClassRegistry::default();
    reg.install(desc(
        "@RemoteStub",
        vec![
            FieldDescriptor::new("key", FieldType::Int),
            FieldDescriptor::new("extra", FieldType::Int),
        ],
        ClassFlags {
            stub: true,
            ..ClassFlags::default()
        },
        None,
    ))
    .unwrap();
    let report = analyze_registry(&reg);
    assert!(report.has_code("NRMI-S004"), "{}", report.render());
}

#[test]
fn s005_unmarked_class_is_a_warning_not_an_error() {
    let mut reg = ClassRegistry::new();
    reg.define("Local").field_int("x").register();
    let report = analyze_registry(&reg);
    assert!(report.has_code("NRMI-S005"), "{}", report.render());
    assert!(!report.has_errors(), "S005 must not fail the build");
}

// ---------------------------------------------------------------------------
// Drift (two registries)
// ---------------------------------------------------------------------------

fn base_registry() -> ClassRegistry {
    let mut reg = ClassRegistry::new();
    reg.define("Tree")
        .field_int("data")
        .field_ref("left")
        .field_ref("right")
        .restorable()
        .register();
    reg
}

#[test]
fn s010_one_sided_class() {
    let client = base_registry();
    let mut server = base_registry();
    server
        .define("Extra")
        .field_int("x")
        .serializable()
        .register();
    let report = diff_registries("client", &client, "server", &server);
    assert!(report.has_code("NRMI-S010"), "{}", report.render());
}

#[test]
fn s011_field_layout_drift() {
    let client = base_registry();
    let mut server = ClassRegistry::new();
    server
        .define("Tree")
        .field_long("data") // retyped: Int on the client
        .field_ref("left")
        .field_ref("right")
        .restorable()
        .register();
    let report = diff_registries("client", &client, "server", &server);
    assert!(report.has_code("NRMI-S011"), "{}", report.render());
}

#[test]
fn s012_flag_drift() {
    let client = base_registry();
    let mut server = ClassRegistry::new();
    server
        .define("Tree")
        .field_int("data")
        .field_ref("left")
        .field_ref("right")
        .serializable() // copy-only: restore semantics dropped
        .register();
    let report = diff_registries("client", &client, "server", &server);
    assert!(report.has_code("NRMI-S012"), "{}", report.render());
}

#[test]
fn s013_registration_order_drift() {
    // Same classes, same shapes — but registered in a different order.
    // Class ids travel by index, so this corrupts every payload.
    let mut client = ClassRegistry::new();
    client.define("A").field_int("x").serializable().register();
    client.define("B").field_int("x").serializable().register();
    let mut server = ClassRegistry::new();
    server.define("B").field_int("x").serializable().register();
    server.define("A").field_int("x").serializable().register();
    let report = diff_registries("client", &client, "server", &server);
    assert!(report.has_code("NRMI-S013"), "{}", report.render());
}

// ---------------------------------------------------------------------------
// Heap corruption
// ---------------------------------------------------------------------------

#[test]
fn h001_dangling_reference() {
    let mut reg = ClassRegistry::new();
    let node = reg
        .define("Node")
        .field_ref("next")
        .serializable()
        .register();
    let mut heap = nrmi_heap::Heap::new(reg.snapshot());
    let child = heap.alloc(node, vec![Value::Null]).unwrap();
    let _parent = heap.alloc(node, vec![Value::Ref(child)]).unwrap();
    // Free the child without unlinking it: the parent now dangles.
    heap.free(child).unwrap();
    let report = check_heap("seeded", &heap);
    assert!(report.has_code("NRMI-H001"), "{}", report.render());
}

#[test]
fn clean_heap_reports_nothing() {
    let mut reg = ClassRegistry::new();
    let node = reg
        .define("Node")
        .field_ref("next")
        .serializable()
        .register();
    let mut heap = nrmi_heap::Heap::new(reg.snapshot());
    let child = heap.alloc(node, vec![Value::Null]).unwrap();
    heap.alloc(node, vec![Value::Ref(child)]).unwrap();
    assert!(check_heap("clean", &heap).is_empty());
}

// ---------------------------------------------------------------------------
// Protocol transitions
// ---------------------------------------------------------------------------

#[test]
fn p004_serving_a_stale_generation() {
    // A server that answers a stale-generation request with a CallReply
    // has executed against the wrong cached graph.
    let verdict = judge_reply(
        ReplyContext::StaleGeneration,
        &Frame::CallReply { payload: vec![] },
    );
    let diag = verdict.expect("stale service must be flagged");
    assert_eq!(diag.code, "NRMI-P004");
}

#[test]
fn p004_garbage_answered_with_success() {
    let verdict = judge_reply(
        ReplyContext::GarbagePayload,
        &Frame::CallReply { payload: vec![] },
    );
    assert_eq!(verdict.expect("must be flagged").code, "NRMI-P004");
    // The legal answers pass.
    assert!(judge_reply(
        ReplyContext::GarbagePayload,
        &Frame::CallError {
            message: "malformed".into()
        }
    )
    .is_none());
    assert!(judge_reply(ReplyContext::UnknownCache, &Frame::CacheMiss).is_none());
}
