//! Seeded lock-discipline faults: the witness must catch every
//! violation class it claims to catch, with the exact `NRMI-L` code —
//! and stay silent on disciplined code. The lock-order companion to
//! `seeded_faults.rs`.
//!
//! The witness is process-global, so these tests serialize on one mutex
//! and reset the witness at the top of each; no other test shares this
//! binary. Violations are seeded with real [`TrackedMutex`]es on real
//! threads driving real transport blocking paths — not with hand-built
//! snapshots (the analyzer's own unit tests cover those).

#![cfg(feature = "lockcheck")]

use std::time::Duration;

use nrmi_check::check_locks;
use nrmi_core::lockcheck::{allow_blocking, reset, LockClass, TrackedMutex};
use nrmi_transport::{channel_pair, LinkSpec, Transport};

/// Serializes the tests in this binary (the harness runs them on
/// concurrent threads by default) so each sees only its own seeds.
fn witness_guard() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
    reset();
    guard
}

#[test]
fn l001_opposite_order_acquisition_on_two_threads() {
    let _gate = witness_guard();

    let a = std::sync::Arc::new(TrackedMutex::new(LockClass::Bindings, ()));
    let b = std::sync::Arc::new(TrackedMutex::new(LockClass::SendQueue, ()));

    // Thread 1 takes bindings -> send-queue, thread 2 the reverse.
    // Sequenced by the join, so the run cannot actually deadlock — the
    // witness must flag the *order* conflict anyway: that is the
    // lockdep property this auditor exists for.
    {
        let (a, b) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
        std::thread::spawn(move || {
            let _ga = a.lock();
            let _gb = b.lock();
        })
        .join()
        .unwrap();
    }
    {
        let (a, b) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
        std::thread::spawn(move || {
            let _gb = b.lock();
            let _ga = a.lock();
        })
        .join()
        .unwrap();
    }

    let report = check_locks();
    assert!(report.has_code("NRMI-L001"), "{}", report.render());
    assert!(report.has_errors());
}

#[test]
fn l002_lock_held_across_blocking_transport_recv() {
    let _gate = witness_guard();

    let (mut transport, _peer) = channel_pair(None, LinkSpec::free());
    let shard = TrackedMutex::new(LockClass::ReplyCacheShard, ());
    {
        let _guard = shard.lock();
        // Blocks until timeout with the shard lock held: the convoy
        // pattern the fine-grained server must never exhibit.
        let _ = transport.recv_timeout(Duration::from_millis(5));
    }

    let report = check_locks();
    assert!(report.has_code("NRMI-L002"), "{}", report.render());
    assert!(report.has_errors(), "unallowed hold must be an error");
}

#[test]
fn l002_allowed_hold_reports_info_with_reason() {
    let _gate = witness_guard();

    let (mut transport, _peer) = channel_pair(None, LinkSpec::free());
    let service = TrackedMutex::new(LockClass::Service, ());
    {
        let _allow = allow_blocking("seeded: designed-in hold under test");
        let _guard = service.lock();
        let _ = transport.recv_timeout(Duration::from_millis(5));
    }

    let report = check_locks();
    assert!(report.has_code("NRMI-L002"), "{}", report.render());
    assert!(
        !report.has_errors(),
        "allowed hold must downgrade to info:\n{}",
        report.render()
    );
}

#[test]
fn l003_reentrant_same_class_acquisition() {
    let _gate = witness_guard();

    // Two *instances* of one class: safe from self-deadlock here, but
    // an unordered same-class pair — exactly what L003 exists to stop
    // before someone does it on one instance.
    let outer = TrackedMutex::new(LockClass::NodeHeap, ());
    let inner = TrackedMutex::new(LockClass::NodeHeap, ());
    {
        let _go = outer.lock();
        let _gi = inner.lock();
    }

    let report = check_locks();
    assert!(report.has_code("NRMI-L003"), "{}", report.render());
    assert!(report.has_errors());
}

#[test]
fn disciplined_paths_report_no_violations() {
    let _gate = witness_guard();

    // Consistent nesting order, no holds across transport waits, no
    // re-entry: the audit must stay quiet (the L000 summary and hold
    // stats are expected; violations are not).
    let bindings = TrackedMutex::new(LockClass::Bindings, ());
    let service = TrackedMutex::new(LockClass::Service, ());
    for _ in 0..3 {
        let _gb = bindings.lock();
        let _gs = service.lock();
    }
    let (mut transport, _peer) = channel_pair(None, LinkSpec::free());
    let _ = transport.recv_timeout(Duration::from_millis(1)); // no locks held

    let report = check_locks();
    assert!(!report.has_errors(), "{}", report.render());
    assert!(!report.has_code("NRMI-L001"));
    assert!(!report.has_code("NRMI-L002"));
    assert!(!report.has_code("NRMI-L003"));
}
