//! A collaborative document edited through a remote service, built on
//! the heap-resident collections (`ArrayList`/`HashMap` — the paper's
//! `RestorableHashMap` pattern, §5.1).
//!
//! The document is a restorable list of paragraph objects; an index maps
//! section names to the same paragraph objects (aliases). A remote
//! editing service appends, rewrites, and annotates paragraphs; one
//! copy-restore call per operation keeps the caller's document AND its
//! index coherent, with no client-side merge code.
//!
//! ```text
//! cargo run --example shared_document
//! ```

use nrmi::core::{FnService, NrmiError, Session};
use nrmi::heap::collections::{collection_classes, register_collections, HList, HMap};
use nrmi::heap::{ClassRegistry, HeapAccess, Value};

fn main() -> Result<(), NrmiError> {
    let mut registry = ClassRegistry::new();
    let _ = register_collections(&mut registry);
    // class Paragraph implements Serializable { String text; int revision; }
    let paragraph = registry
        .define("Paragraph")
        .field_str("text")
        .field_int("revision")
        .serializable()
        .register();
    // class Document implements java.rmi.Restorable { ArrayList paragraphs; HashMap index; }
    let document = registry
        .define("Document")
        .field_ref("paragraphs")
        .field_ref("index")
        .restorable()
        .register();
    let registry = registry.snapshot();

    // --- The remote editing service ---------------------------------------
    let mut session = Session::builder(registry)
        .serve(
            "editor",
            Box::new(FnService::new(move |method, args, heap| {
                let classes = collection_classes(heap.registry());
                let doc = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("document"))?;
                let paragraphs = HList::from_id(
                    heap.get_ref(doc, "paragraphs")?
                        .ok_or_else(|| NrmiError::app("list"))?,
                    classes,
                );
                let index = HMap::from_id(
                    heap.get_ref(doc, "index")?
                        .ok_or_else(|| NrmiError::app("index"))?,
                    classes,
                );
                match method {
                    // Append a named section; index it under its name.
                    "append_section" => {
                        let name = args[1].as_str().ok_or_else(|| NrmiError::app("name"))?;
                        let text = args[2].as_str().ok_or_else(|| NrmiError::app("text"))?;
                        let para_class = heap.registry().by_name("Paragraph").unwrap();
                        let para = heap.alloc_raw(
                            para_class,
                            vec![Value::Str(text.to_owned()), Value::Int(1)],
                        )?;
                        paragraphs.push(heap, Value::Ref(para))?;
                        index.put(heap, name, Value::Ref(para))?;
                        Ok(Value::Int(paragraphs.len(heap)? as i32))
                    }
                    // Rewrite a section found via the index; bump its
                    // revision. The list sees the change through the
                    // alias automatically.
                    "rewrite" => {
                        let name = args[1].as_str().ok_or_else(|| NrmiError::app("name"))?;
                        let text = args[2].as_str().ok_or_else(|| NrmiError::app("text"))?;
                        let para = index
                            .get(heap, name)?
                            .and_then(|v| v.as_ref_id())
                            .ok_or_else(|| NrmiError::app(format!("no section {name}")))?;
                        let rev = heap.get_field(para, "revision")?.as_int().unwrap_or(0);
                        heap.set_field(para, "text", Value::Str(text.to_owned()))?;
                        heap.set_field(para, "revision", Value::Int(rev + 1))?;
                        Ok(Value::Int(rev + 1))
                    }
                    other => Err(NrmiError::app(format!("no method {other}"))),
                }
            })),
        )
        .build();

    // --- Build the client document ----------------------------------------
    let classes = collection_classes(session.heap().registry_handle());
    let paragraphs = HList::new(session.heap(), classes)?;
    let index = HMap::new(session.heap(), classes)?;
    let doc = session.heap().alloc(
        document,
        vec![Value::Ref(paragraphs.id()), Value::Ref(index.id())],
    )?;
    let _ = paragraph;

    // --- Edit remotely ------------------------------------------------------
    for (name, text) in [
        ("intro", "NRMI makes remote calls behave like local calls."),
        ("algorithm", "Six steps, one linear map."),
        ("results", "About twenty percent over plain RMI."),
    ] {
        let count = session.call(
            "editor",
            "append_section",
            &[
                Value::Ref(doc),
                Value::Str(name.into()),
                Value::Str(text.into()),
            ],
        )?;
        println!("appended {name:12} → {count} paragraphs");
    }

    let rev = session.call(
        "editor",
        "rewrite",
        &[
            Value::Ref(doc),
            Value::Str("results".into()),
            Value::Str("Optimized NRMI is ~20% over RMI — and faster on benchmark III.".into()),
        ],
    )?;
    println!("rewrote results    → revision {rev}\n");

    // --- Read the document locally: everything restored in place -----------
    println!("document as the CLIENT sees it (no merge code ran):");
    let heap = session.heap();
    for i in 0..paragraphs.len(heap)? {
        let para = paragraphs.get(heap, i)?.as_ref_id().unwrap();
        let text = heap.get_field(para, "text")?;
        let rev = heap.get_field(para, "revision")?;
        println!("  [{i}] (rev {rev}) {text}");
    }

    // The index aliases the same paragraph objects the list holds:
    let heap = session.heap();
    let via_index = index
        .get(heap, "results")?
        .and_then(|v| v.as_ref_id())
        .unwrap();
    let via_list = paragraphs.get(heap, 2)?.as_ref_id().unwrap();
    assert_eq!(
        via_index, via_list,
        "index and list alias one paragraph object"
    );
    assert_eq!(heap.get_field(via_index, "revision")?, Value::Int(2));
    println!("\nindex['results'] and paragraphs[2] are the same object — aliasing restored");
    Ok(())
}
