//! Warm-call sessions over real TCP: seed once, then ship request deltas.
//!
//! The first `call_warm` marshals the whole argument graph (byte-identical
//! to a cold call) and seeds a server-side session cache. Every later
//! call ships only what the client changed since — watch the request
//! byte counts collapse. Eviction frees the server's cached graph and
//! the next call transparently reseeds.
//!
//! ```text
//! cargo run --example warm_session
//! ```

use nrmi::core::{FnService, NrmiError, ServerNode, ServerPool, Session};
use nrmi::heap::tree::{self, TreeClasses};
use nrmi::heap::{ClassRegistry, HeapAccess, Value};
use nrmi::transport::{MachineSpec, TcpListenerTransport};

fn main() -> Result<(), NrmiError> {
    let mut reg = ClassRegistry::new();
    let classes: TreeClasses = tree::register_tree_classes(&mut reg);
    let registry = reg.snapshot();

    // --- Server: sums the tree it is handed --------------------------------
    let listener = TcpListenerTransport::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
    server.bind(
        "treesvc",
        Box::new(FnService::new(|_method, args, heap| {
            let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
            let mut total = 0i64;
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                total += i64::from(heap.get_field(node, "data")?.as_int().unwrap_or(0));
                for side in ["left", "right"] {
                    if let Some(child) = heap.get_ref(node, side)? {
                        stack.push(child);
                    }
                }
            }
            Ok(Value::Long(total))
        })),
    );
    let handle = ServerPool::new().serve(server, listener);

    // --- Client: one big tree, many calls ----------------------------------
    let mut client = Session::connect_tcp(registry, addr)?;
    let root = tree::build_random_tree(client.heap(), &classes, 1024, 7)?;

    let (sum, seed) = client.call_warm_with_stats("treesvc", "sum", &[Value::Ref(root)])?;
    println!(
        "call 1 (seed):   sum={sum}  request={} bytes",
        seed.request_bytes
    );

    let (sum, warm) = client.call_warm_with_stats("treesvc", "sum", &[Value::Ref(root)])?;
    println!(
        "call 2 (clean):  sum={sum}  request={} bytes",
        warm.request_bytes
    );

    // Touch one node out of 1024: the delta carries just that slot.
    client.heap().set_field(root, "data", Value::Int(500_000))?;
    let (sum, dirty) = client.call_warm_with_stats("treesvc", "sum", &[Value::Ref(root)])?;
    println!(
        "call 3 (1 dirty): sum={sum}  request={} bytes",
        dirty.request_bytes
    );

    assert!(warm.request_bytes * 20 < seed.request_bytes);
    assert!(dirty.request_bytes * 20 < seed.request_bytes);
    println!(
        "warm session generation: {:?}",
        client.warm_generation("treesvc")
    );

    // Orderly teardown: free the server's cached graph, then reseed.
    client.evict_warm("treesvc")?;
    let (_, reseed) = client.call_warm_with_stats("treesvc", "sum", &[Value::Ref(root)])?;
    println!(
        "call 4 (post-evict reseed): request={} bytes",
        reseed.request_bytes
    );
    // A full marshal again (the graph changed since call 1, so the exact
    // byte count can differ by a varint width — but it is no delta).
    assert!(reseed.request_bytes > seed.request_bytes / 2);

    client.close()?;
    let _server = handle.shutdown()?;
    Ok(())
}
