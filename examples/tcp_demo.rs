//! Genuine distribution: the same protocol over real TCP sockets.
//!
//! Serves the NRMI server through a [`ServerPool`] (its own accept
//! thread, per-connection state — a separate "machine" as far as the
//! protocol is concerned) and connects a client over a real socket.
//! Copy-restore works unchanged, and `shutdown()` tears the pool down
//! without needing to predict the connection count.
//!
//! Run the two halves in one process:
//! ```text
//! cargo run --example tcp_demo
//! ```

use nrmi::core::{FnService, NrmiError, ServerNode, ServerPool, Session};
use nrmi::heap::tree::{self, TreeClasses};
use nrmi::heap::{ClassRegistry, HeapAccess, Value};
use nrmi::transport::{MachineSpec, TcpListenerTransport};

fn main() -> Result<(), NrmiError> {
    let mut reg = ClassRegistry::new();
    let classes: TreeClasses = tree::register_tree_classes(&mut reg);
    let registry = reg.snapshot();

    // --- Server process (its own accept thread, its own state) -----------
    let listener = TcpListenerTransport::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
    server.bind(
        "treesvc",
        Box::new(FnService::new(|method, args, heap| match method {
            "foo" => {
                let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                tree::run_foo(heap, root)?;
                Ok(Value::Null)
            }
            "sum" => {
                let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                let mut total = 0i64;
                let mut stack = vec![root];
                while let Some(node) = stack.pop() {
                    total += i64::from(heap.get_field(node, "data")?.as_int().unwrap_or(0));
                    for side in ["left", "right"] {
                        if let Some(child) = heap.get_ref(node, side)? {
                            stack.push(child);
                        }
                    }
                }
                Ok(Value::Long(total))
            }
            other => Err(NrmiError::app(format!("no method {other}"))),
        })),
    );
    let handle = ServerPool::new().serve(server, listener);

    // --- Client process ----------------------------------------------------
    let mut client = Session::connect_tcp(registry, addr)?;
    let ex = tree::build_running_example(client.heap(), &classes)?;

    let sum_before = client.call("treesvc", "sum", &[Value::Ref(ex.root)])?;
    println!("sum over the wire before foo: {sum_before}");

    client.call("treesvc", "foo", &[Value::Ref(ex.root)])?;
    let violations = tree::figure2_violations(client.heap(), &ex)?;
    assert!(
        violations.is_empty(),
        "copy-restore over TCP diverged: {violations:?}"
    );
    println!("after remote foo over TCP: all Figure-2 expectations hold");
    println!(
        "  alias1.data = {}",
        client.heap().get_field(ex.alias1_target, "data")?
    );
    println!(
        "  alias2.data = {}",
        client.heap().get_field(ex.alias2_target, "data")?
    );

    let sum_after = client.call("treesvc", "sum", &[Value::Ref(ex.root)])?;
    println!("sum over the wire after foo:  {sum_after}");

    client.close()?;
    let _server = handle.shutdown()?;
    println!("server shut down cleanly");
    Ok(())
}
