//! Observability tour: call tracing, wire-payload dumps, heap
//! snapshots/diffs, and the integrity validator.
//!
//! Middleware hides mechanism by design; these tools put it back in
//! view when debugging. The example traces three calls of different
//! semantics, dumps an actual reply payload (showing the old-index
//! annotations the restore algorithm matches on), and diffs the heap
//! around a call.
//!
//! ```text
//! cargo run --example introspection
//! ```

use nrmi::core::{CallOptions, FnService, NrmiError, PassMode, Session};
use nrmi::heap::snapshot::HeapSnapshot;
use nrmi::heap::tree::{self, TreeClasses};
use nrmi::heap::{ClassRegistry, LinearMap, Value};
use nrmi::wire::dump_graph;

fn main() -> Result<(), NrmiError> {
    let mut reg = ClassRegistry::new();
    let classes: TreeClasses = tree::register_tree_classes(&mut reg);
    let registry = reg.snapshot();

    let mut session = Session::builder(registry.clone())
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                tree::run_foo(heap, root)?;
                Ok(Value::Null)
            })),
        )
        .build();
    session.enable_tracing();

    // --- Three traced calls under different semantics --------------------
    for opts in [
        CallOptions::forced(PassMode::Copy),
        CallOptions::forced(PassMode::CopyRestore),
        CallOptions::copy_restore_delta(),
    ] {
        let ex = tree::build_running_example(session.heap(), &classes)?;
        session.call_with("svc", "foo", &[Value::Ref(ex.root)], opts)?;
    }
    println!("call trace:\n{}\n", session.tracer().render());
    let (calls, errors, req, reply, _) = session.tracer().totals();
    println!("totals: {calls} calls, {errors} errors, {req}B sent, {reply}B received\n");

    // --- What a reply payload actually contains --------------------------
    // Recreate the server's reply marshalling by hand: serialize the
    // post-foo linear map with old-index annotations, then dump it.
    let mut heap = nrmi::heap::Heap::new(registry.clone());
    let ex = tree::build_running_example(&mut heap, &classes)?;
    let map = LinearMap::build(&heap, &[ex.root])?;
    tree::run_foo(&mut heap, ex.root)?;
    let reply_roots: Vec<Value> = map.order().iter().map(|&id| Value::Ref(id)).collect();
    let enc =
        nrmi::wire::serialize_graph_with(&heap, &reply_roots, Some(map.position_map()), None)?;
    let dump = dump_graph(&enc.bytes, &registry)?;
    println!("reply payload dump (the restore's raw material):");
    print!("{}", dump.text);
    println!(
        "payload stats: {} objects ({} annotated with old indices), {} back-references\n",
        dump.stats.objects, dump.stats.annotated, dump.stats.backrefs
    );

    // --- Heap diff around a call ------------------------------------------
    let ex = tree::build_running_example(session.heap(), &classes)?;
    let before = HeapSnapshot::capture(session.heap());
    session.call("svc", "foo", &[Value::Ref(ex.root)])?;
    let after = HeapSnapshot::capture(session.heap());
    let diff = before.diff(&after);
    println!(
        "heap diff across one copy-restore call: {} (added={:?}, changed={} objects)",
        diff.summary(),
        diff.added,
        diff.changed.len()
    );

    // --- And the heap is provably sound afterwards -------------------------
    nrmi::heap::validate::assert_valid(session.heap());
    println!("heap integrity validated: no dangling references, all types consistent");
    Ok(())
}
