//! Quickstart: call-by-copy-restore in five minutes.
//!
//! Builds the paper's running example — a binary tree with two aliases
//! into its interior — and calls the mutating routine `foo` remotely,
//! first with plain RMI semantics (call-by-copy: changes lost), then
//! with NRMI semantics (call-by-copy-restore: every change restored in
//! place, visible through both aliases).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nrmi::core::{CallOptions, FnService, NrmiError, PassMode, Session};
use nrmi::heap::graph::render_ascii;
use nrmi::heap::tree::{self, TreeClasses};
use nrmi::heap::{ClassRegistry, HeapAccess, Value};

fn main() -> Result<(), NrmiError> {
    // 1. Both sides share a class registry — the "classpath".
    //    `Tree` is declared restorable: the `java.rmi.Restorable` marker.
    let mut registry = ClassRegistry::new();
    let classes: TreeClasses = tree::register_tree_classes(&mut registry);
    let registry = registry.snapshot();

    // 2. Start a server exposing `foo` (the paper's Section 2 routine).
    let mut session = Session::builder(registry)
        .serve(
            "example",
            Box::new(FnService::new(|method, args, heap| match method {
                "foo" => {
                    let root = args[0]
                        .as_ref_id()
                        .ok_or_else(|| NrmiError::app("foo expects a tree"))?;
                    tree::run_foo(heap, root)?;
                    Ok(Value::Null)
                }
                other => Err(NrmiError::app(format!("no method {other}"))),
            })),
        )
        .build();

    // 3. Build the client-side graph: the Figure 1 tree plus aliases.
    let ex = tree::build_running_example(session.heap(), &classes)?;
    let roots = vec![
        ("t".to_owned(), ex.root),
        ("alias1".to_owned(), ex.alias1_target),
        ("alias2".to_owned(), ex.alias2_target),
    ];
    println!("before the call (Figure 1):\n");
    println!("{}", render_ascii(session.heap(), &roots)?);

    // 4a. Plain call-by-copy: the server mutates a copy; nothing comes back.
    session.call_with(
        "example",
        "foo",
        &[Value::Ref(ex.root)],
        CallOptions::forced(PassMode::Copy),
    )?;
    let untouched = session.heap().get_field(ex.alias1_target, "data")?;
    println!("after call-by-copy: alias1.data = {untouched}  (changes were LOST)\n");

    // 4b. Call-by-copy-restore: the default for restorable classes.
    session.call("example", "foo", &[Value::Ref(ex.root)])?;
    println!("after call-by-copy-restore (Figure 2):\n");
    println!("{}", render_ascii(session.heap(), &roots)?);

    // 5. Every mutation — including to subtrees foo unlinked from t — is
    //    visible through the caller's aliases, exactly as in a local call.
    let violations = tree::figure2_violations(session.heap(), &ex)?;
    assert!(
        violations.is_empty(),
        "unexpected divergence: {violations:?}"
    );
    println!("all Figure-2 expectations hold: remote call ≡ local call");
    Ok(())
}
