//! The paper's multiple-indexing application (§4.3, second bullet).
//!
//! "Most applications in imperative programming languages create some
//! multiple indexing scheme for their data. ... Every customer may be
//! retrievable from a data structure ordered by zip code, and from a
//! second data structure ordered by name. All of these references are
//! aliases to the same data. NRMI allows such references to be updated
//! correctly as a result of a remote call (e.g., an update of purchase
//! records from a different location, or a retrieval of a customer's
//! address from a central database)."
//!
//! This example keeps customers in two indexes (by-name list, by-zip
//! list) and transactions in both a global log and per-customer
//! histories. A remote billing service applies a price adjustment and
//! appends transactions (reallocating the fixed-size arrays, Java
//! `ArrayList`-style); every index sees the update after one
//! copy-restore call.
//!
//! ```text
//! cargo run --example business_indexing
//! ```

use nrmi::core::{FnService, NrmiError, Session};
use nrmi::heap::{ClassRegistry, FieldType, Heap, HeapAccess, ObjId, Value};

/// Appends `value` to the array stored in `owner.field`, Java-style:
/// allocate a one-larger array, copy, and reseat the field. Runs against
/// any [`HeapAccess`], so the same code works over remote pointers too.
fn append(
    heap: &mut dyn HeapAccess,
    owner: ObjId,
    field: &str,
    value: Value,
) -> Result<(), NrmiError> {
    let old = heap
        .get_field(owner, field)?
        .as_ref_id()
        .ok_or_else(|| NrmiError::app(format!("{field} is not a list")))?;
    let len = heap.slot_count(old)?;
    let mut elems = Vec::with_capacity(len + 1);
    for i in 0..len {
        elems.push(heap.get_element(old, i)?);
    }
    elems.push(value);
    let class = heap.class_of(old)?;
    let grown = heap.alloc_array_raw(class, elems)?;
    heap.set_field(owner, field, Value::Ref(grown))?;
    Ok(())
}

fn main() -> Result<(), NrmiError> {
    // --- Schema -----------------------------------------------------------
    let mut registry = ClassRegistry::new();
    // class Customer implements Serializable { String name; int zip; long balanceCents; Object[] history; }
    let customer = registry
        .define("Customer")
        .field_str("name")
        .field_int("zip")
        .field_long("balance_cents")
        .field_ref("history")
        .serializable()
        .register();
    // class Transaction implements Serializable { String memo; long amountCents; Customer customer; }
    let transaction = registry
        .define("Transaction")
        .field_str("memo")
        .field_long("amount_cents")
        .field_ref("customer")
        .serializable()
        .register();
    let list = registry.define_array("Object[]", FieldType::Ref);
    // class Ledger implements java.rmi.Restorable — the root passed to
    // the billing service; everything reachable from it is restored.
    let ledger = registry
        .define("Ledger")
        .field_ref("by_name")
        .field_ref("by_zip")
        .field_ref("recent_holder")
        .restorable()
        .register();
    // One level of indirection so `recent` can be reseated on append.
    let holder = registry
        .define("ListHolder")
        .field_ref("items")
        .serializable()
        .register();
    let registry = registry.snapshot();

    // --- The remote billing service ----------------------------------------
    let _ = transaction;
    let mut session = Session::builder(registry)
        .serve(
            "billing",
            Box::new(FnService::new(move |method, args, heap| match method {
                // Apply a surcharge to every customer in a zip code and
                // log one transaction per affected customer.
                "surcharge_zip" => {
                    let ledger = args[0]
                        .as_ref_id()
                        .ok_or_else(|| NrmiError::app("ledger"))?;
                    let zip = args[1].as_int().ok_or_else(|| NrmiError::app("zip"))?;
                    let cents = args[2].as_long().ok_or_else(|| NrmiError::app("cents"))?;
                    let by_zip = heap.get_ref(ledger, "by_zip")?.expect("index");
                    let recent_holder = heap.get_ref(ledger, "recent_holder")?.expect("log");
                    let tx_class = heap.registry().by_name("Transaction").expect("class");
                    let mut touched = 0;
                    for i in 0..heap.slot_count(by_zip)? {
                        let Some(cust) = heap.get_element(by_zip, i)?.as_ref_id() else {
                            continue;
                        };
                        if heap.get_field(cust, "zip")?.as_int() != Some(zip) {
                            continue;
                        }
                        let balance = heap
                            .get_field(cust, "balance_cents")?
                            .as_long()
                            .unwrap_or(0);
                        heap.set_field(cust, "balance_cents", Value::Long(balance + cents))?;
                        // One new transaction, linked from BOTH the
                        // global log and the customer's own history —
                        // fresh aliasing created on the server.
                        let tx = heap.alloc_raw(
                            tx_class,
                            vec![
                                Value::Str(format!("zip-{zip} surcharge")),
                                Value::Long(cents),
                                Value::Ref(cust),
                            ],
                        )?;
                        append(heap, recent_holder, "items", Value::Ref(tx))?;
                        append(heap, cust, "history", Value::Ref(tx))?;
                        touched += 1;
                    }
                    Ok(Value::Int(touched))
                }
                other => Err(NrmiError::app(format!("no method {other}"))),
            })),
        )
        .build();

    // --- Client data, indexed two ways -------------------------------------
    let heap = session.heap();
    let mut customers = Vec::new();
    for (name, zip, balance) in [
        ("Ada Lovelace", 30332, 12_000_i64),
        ("Charles Babbage", 30332, 7_550),
        ("Alan Turing", 10001, 20_000),
    ] {
        let history = heap.alloc_array(list, Vec::new())?;
        customers.push(heap.alloc(
            customer,
            vec![
                Value::Str(name.to_owned()),
                Value::Int(zip),
                Value::Long(balance),
                Value::Ref(history),
            ],
        )?);
    }
    // Two orderings, SAME customer objects (aliases):
    let by_name = heap.alloc_array(
        list,
        vec![
            Value::Ref(customers[1]),
            Value::Ref(customers[0]),
            Value::Ref(customers[2]),
        ],
    )?;
    let by_zip = heap.alloc_array(
        list,
        vec![
            Value::Ref(customers[2]),
            Value::Ref(customers[0]),
            Value::Ref(customers[1]),
        ],
    )?;
    let empty_log = heap.alloc_array(list, Vec::new())?;
    let recent_holder = heap.alloc(holder, vec![Value::Ref(empty_log)])?;
    let ledger_obj = heap.alloc(
        ledger,
        vec![
            Value::Ref(by_name),
            Value::Ref(by_zip),
            Value::Ref(recent_holder),
        ],
    )?;

    print_balances(heap, &customers, "before");

    // --- One copy-restore call updates every index --------------------------
    let touched = session.call(
        "billing",
        "surcharge_zip",
        &[Value::Ref(ledger_obj), Value::Int(30332), Value::Long(999)],
    )?;
    println!("\nsurcharged {touched} customers in zip 30332 via one remote call\n");

    let heap = session.heap();
    print_balances(heap, &customers, "after");

    // The by-name index (never mentioned in the call) sees the update,
    // because the customer OBJECTS were restored in place:
    let ada_via_name = heap.get_element(by_name, 1)?.as_ref_id().unwrap();
    assert_eq!(
        ada_via_name, customers[0],
        "index still aliases the original object"
    );
    assert_eq!(
        heap.get_field(ada_via_name, "balance_cents")?,
        Value::Long(12_000 + 999)
    );

    // The global log and Ada's history share ONE transaction object —
    // server-created aliasing, replicated on the client:
    let log = heap.get_ref(recent_holder, "items")?.unwrap();
    assert_eq!(heap.slot_count(log)?, 2, "two surcharges logged");
    let global_tx = heap.get_element(log, 0)?.as_ref_id().unwrap();
    let ada_history = heap.get_ref(customers[0], "history")?.unwrap();
    let ada_tx = heap.get_element(ada_history, 0)?.as_ref_id().unwrap();
    assert_eq!(global_tx, ada_tx, "one transaction object, two indexes");
    // The transaction's back-reference lands on the caller's ORIGINAL
    // customer object (restore step 6: new objects' pointers converted):
    assert_eq!(heap.get_ref(global_tx, "customer")?, Some(customers[0]));
    // Turing (zip 10001) untouched:
    assert_eq!(
        heap.get_field(customers[2], "balance_cents")?,
        Value::Long(20_000)
    );
    let memo = heap.get_field(global_tx, "memo")?;
    println!(
        "\nshared transaction: {memo} for {} cents",
        heap.get_field(global_tx, "amount_cents")?
    );
    println!("back-references land on the caller's original customers — no fix-up code");
    Ok(())
}

fn print_balances(heap: &mut Heap, customers: &[ObjId], when: &str) {
    println!("balances {when}:");
    for &c in customers {
        let name = heap.get_field(c, "name").unwrap();
        let balance = heap.get_field(c, "balance_cents").unwrap();
        println!("  {name}: {balance} cents");
    }
}
