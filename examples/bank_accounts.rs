//! First-class remote objects: the RMI factory pattern.
//!
//! A `Bank` factory service opens `Account` objects that live on the
//! server (`UnicastRemoteObject` semantics: passed by reference, never
//! copied). The client receives stubs and invokes methods directly on
//! them with `Session::call_on`; a copy-restore `Statement` argument
//! shows how remote receivers and restorable arguments compose.
//!
//! ```text
//! cargo run --example bank_accounts
//! ```

use nrmi::core::{FnService, NrmiError, Session};
use nrmi::heap::{ClassRegistry, HeapAccess, Value};

fn main() -> Result<(), NrmiError> {
    let mut reg = ClassRegistry::new();
    // class Account extends UnicastRemoteObject { String owner; long cents; }
    let account = reg
        .define("Account")
        .field_str("owner")
        .field_long("cents")
        .remote()
        .register();
    // class Statement implements java.rmi.Restorable { String owner; long balance; }
    let statement = reg
        .define("Statement")
        .field_str("owner")
        .field_long("balance")
        .restorable()
        .register();
    let registry = reg.snapshot();

    let mut session = Session::builder(registry)
        .serve(
            "bank",
            Box::new(FnService::new(move |method, args, heap| match method {
                "open" => {
                    let owner = args[0].as_str().ok_or_else(|| NrmiError::app("owner"))?;
                    let acct = heap
                        .alloc_raw(account, vec![Value::Str(owner.to_owned()), Value::Long(0)])?;
                    Ok(Value::Ref(acct)) // exported; the client gets a stub
                }
                other => Err(NrmiError::app(format!("no method {other}"))),
            })),
        )
        .serve_class(
            account,
            Box::new(FnService::new(|method, args, heap| {
                let this = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("receiver"))?;
                match method {
                    "deposit" | "withdraw" => {
                        let amount = args[1].as_long().ok_or_else(|| NrmiError::app("amount"))?;
                        let sign = if method == "deposit" { 1 } else { -1 };
                        let balance = heap.get_field(this, "cents")?.as_long().unwrap_or(0);
                        let updated = balance + sign * amount;
                        if updated < 0 {
                            return Err(NrmiError::app("insufficient funds"));
                        }
                        heap.set_field(this, "cents", Value::Long(updated))?;
                        Ok(Value::Long(updated))
                    }
                    "statement" => {
                        let stmt = args[1].as_ref_id().ok_or_else(|| NrmiError::app("stmt"))?;
                        let owner = heap.get_field(this, "owner")?;
                        let balance = heap.get_field(this, "cents")?;
                        heap.set_field(stmt, "owner", owner)?;
                        heap.set_field(stmt, "balance", balance)?;
                        Ok(Value::Null)
                    }
                    other => Err(NrmiError::app(format!("no method {other}"))),
                }
            })),
        )
        .build();

    // Open two server-resident accounts through the factory.
    let ada = session.call("bank", "open", &[Value::Str("ada".into())])?;
    let bob = session.call("bank", "open", &[Value::Str("bob".into())])?;
    let (ada, bob) = (ada.as_ref_id().unwrap(), bob.as_ref_id().unwrap());
    println!(
        "opened two accounts; client holds stubs (keys {:?}, {:?})",
        session.heap().stub_key(ada)?,
        session.heap().stub_key(bob)?
    );

    // Method calls dispatch on the receiver's class, server-side.
    session.call_on(ada, "deposit", &[Value::Long(500)])?;
    session.call_on(bob, "deposit", &[Value::Long(120)])?;
    let after = session.call_on(ada, "withdraw", &[Value::Long(150)])?;
    println!("ada after deposit 500 / withdraw 150: {after} cents");

    // A remote exception from the class behavior:
    let err = session
        .call_on(bob, "withdraw", &[Value::Long(1_000_000)])
        .unwrap_err();
    println!("bob overdraw rejected: {err}");

    // Restorable argument filled in by the remote receiver:
    let stmt = session
        .heap()
        .alloc(statement, vec![Value::Null, Value::Long(0)])?;
    session.call_on(ada, "statement", &[Value::Ref(stmt)])?;
    println!(
        "statement for {}: {} cents (copy-restored into the caller's object)",
        session.heap().get_field(stmt, "owner")?,
        session.heap().get_field(stmt, "balance")?
    );

    // DGC: dropping bob's stub releases the server-side account.
    session.release_stub(bob)?;
    let server = session.shutdown()?;
    println!(
        "after releasing bob: server still pins {} exported account(s)",
        server.state.exports.len()
    );
    Ok(())
}
