//! The paper's GUI translation application (§4.3, first bullet).
//!
//! "We distribute with NRMI a modified version of one of the Swing API
//! example applications ... The remote server accepts a vector of words
//! (strings) used throughout the graphical interface of the application
//! and translates them between English, German and French. The updated
//! list is restored on the client site transparently and the GUI is
//! updated to show the translated words in its menus, labels, etc."
//!
//! The GUI model here: `Label` objects hold the display strings; menus,
//! toolbars, and a status bar all *alias* the same labels
//! (model-view-controller style). The words vector passed to the remote
//! translator contains references to those same labels. One
//! copy-restore call updates every widget.
//!
//! ```text
//! cargo run --example translation_service
//! ```

use nrmi::core::{FnService, NrmiError, Session};
use nrmi::heap::{ClassRegistry, FieldType, Heap, HeapAccess, ObjId, Value};

/// (English, German, French) triples for the demo UI strings; the
/// translator matches the current text in ANY language.
fn dictionary() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("File", "Datei", "Fichier"),
        ("Edit", "Bearbeiten", "Édition"),
        ("View", "Ansicht", "Affichage"),
        ("Open", "Öffnen", "Ouvrir"),
        ("Save", "Speichern", "Enregistrer"),
        ("Quit", "Beenden", "Quitter"),
        ("Ready", "Bereit", "Prêt"),
    ]
}

fn label_texts(heap: &mut Heap, labels: &[ObjId]) -> Vec<String> {
    labels
        .iter()
        .map(|&l| {
            heap.get_field(l, "text")
                .ok()
                .and_then(|v| v.as_str().map(str::to_owned))
                .unwrap_or_default()
        })
        .collect()
}

fn main() -> Result<(), NrmiError> {
    let mut registry = ClassRegistry::new();
    // class Label implements Serializable { String text; }
    let label = registry
        .define("Label")
        .field_str("text")
        .serializable()
        .register();
    // class WordVector implements java.rmi.Restorable — the argument type.
    // (Everything reachable from a restorable parameter is restored.)
    let word_vector = registry.define_array("WordVector", FieldType::Ref);
    // Mark the vector's CLASS restorable by wrapping: arrays are
    // serializable by default; the restorable marker sits on the holder.
    let holder = registry
        .define("RestorableWords")
        .field_ref("words")
        .restorable()
        .register();
    let registry = registry.snapshot();

    // The remote translation server.
    let dict = dictionary();
    let mut session = Session::builder(registry)
        .serve(
            "translator",
            Box::new(FnService::new(move |method, args, heap| {
                let target = match method {
                    "to_german" => 0,
                    "to_french" => 1,
                    other => return Err(NrmiError::app(format!("no language {other}"))),
                };
                let holder = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("expected the word holder"))?;
                let vector = heap
                    .get_ref(holder, "words")?
                    .ok_or_else(|| NrmiError::app("holder has no word vector"))?;
                let count = heap.slot_count(vector)?;
                for i in 0..count {
                    let Some(lbl) = heap.get_element(vector, i)?.as_ref_id() else {
                        continue;
                    };
                    let text = heap
                        .get_field(lbl, "text")?
                        .as_str()
                        .map(str::to_owned)
                        .unwrap_or_default();
                    if let Some(&(en, de, fr)) = dict
                        .iter()
                        .find(|(en, de, fr)| text == *en || text == *de || text == *fr)
                    {
                        let translated = match target {
                            0 => de,
                            1 => fr,
                            _ => en,
                        };
                        heap.set_field(lbl, "text", Value::Str(translated.to_owned()))?;
                    }
                }
                Ok(Value::Int(count as i32))
            })),
        )
        .build();

    // --- Build the client GUI model --------------------------------------
    let heap = session.heap();
    let words = ["File", "Edit", "View", "Open", "Save", "Quit", "Ready"];
    let labels: Vec<ObjId> = words
        .iter()
        .map(|w| heap.alloc(label, vec![Value::Str((*w).to_owned())]))
        .collect::<Result<_, _>>()?;

    // Multiple GUI surfaces alias the SAME label objects:
    let menu_bar = heap.alloc_array(
        word_vector,
        labels[..3].iter().map(|&l| Value::Ref(l)).collect(),
    )?;
    let toolbar = heap.alloc_array(
        word_vector,
        vec![
            Value::Ref(labels[3]),
            Value::Ref(labels[4]),
            Value::Ref(labels[5]),
        ],
    )?;
    let status_bar = heap.alloc_array(
        word_vector,
        vec![Value::Ref(labels[6]), Value::Ref(labels[3])],
    )?;

    // The vector handed to the translator aliases all of them.
    let all_words =
        heap.alloc_array(word_vector, labels.iter().map(|&l| Value::Ref(l)).collect())?;
    let words_arg = heap.alloc(holder, vec![Value::Ref(all_words)])?;

    println!("menus before:   {:?}", label_texts(heap, &labels[..3]));
    println!("toolbar before: {:?}", label_texts(heap, &labels[3..6]));

    // --- One remote call translates the whole UI -------------------------
    let translated = session.call("translator", "to_german", &[Value::Ref(words_arg)])?;
    println!(
        "\ntranslated {} labels to German via one copy-restore call",
        translated
    );

    let heap = session.heap();
    println!("menus after:    {:?}", label_texts(heap, &labels[..3]));
    println!("toolbar after:  {:?}", label_texts(heap, &labels[3..6]));

    // The aliasing GUI surfaces see the translation without any fix-up:
    let via_menu = heap.get_element(menu_bar, 0)?.as_ref_id().unwrap();
    let via_status = heap.get_element(status_bar, 1)?.as_ref_id().unwrap();
    assert_eq!(heap.get_field(via_menu, "text")?.as_str(), Some("Datei"));
    assert_eq!(heap.get_field(via_status, "text")?.as_str(), Some("Öffnen"));
    let _ = toolbar;

    // And back to French, proving round trips compose.
    session.call("translator", "to_french", &[Value::Ref(words_arg)])?;
    let heap = session.heap();
    println!("menus (French): {:?}", label_texts(heap, &labels[..3]));
    assert_eq!(
        label_texts(heap, &labels[..3]),
        vec!["Fichier", "Édition", "Affichage"]
    );

    println!("\nevery aliased view updated transparently — no client fix-up code");
    Ok(())
}
