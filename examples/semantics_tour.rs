//! A tour of the four calling semantics on one workload.
//!
//! Runs the paper's running example (`foo` on the Figure 1 tree) under
//! every semantics the middleware supports, printing what the *caller*
//! observes afterwards:
//!
//! * call-by-copy — mutations lost;
//! * call-by-copy-restore (NRMI) — identical to a local call (Figure 2);
//! * DCE RPC — mutations to parameter-unreachable data dropped (Figure 9);
//! * call-by-reference via remote pointers — also identical to local,
//!   but at the cost of a network round trip per field access (Figure 3).
//!
//! ```text
//! cargo run --example semantics_tour
//! ```

use nrmi::core::{CallOptions, FnService, NrmiError, PassMode, Session};
use nrmi::heap::tree::{self, TreeClasses};
use nrmi::heap::{ClassRegistry, HeapAccess, SharedRegistry, Value};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = tree::register_tree_classes(&mut reg);
    reg.snapshot()
}

fn run_semantics(name: &str, opts: CallOptions) -> Result<(), NrmiError> {
    let registry = registry();
    let mut session = Session::builder(registry)
        .serve(
            "tour",
            Box::new(FnService::new(|_method, args, heap| {
                let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                tree::run_foo(heap, root)?;
                Ok(Value::Null)
            })),
        )
        .build();
    let classes = TreeClasses {
        tree: session
            .heap()
            .registry_handle()
            .by_name("Tree")
            .expect("registered"),
    };
    let ex = tree::build_running_example(session.heap(), &classes)?;
    let (_, stats) = session.call_with_stats("tour", "foo", &[Value::Ref(ex.root)], opts)?;

    let heap = session.heap();
    let alias1_data = heap.get_field(ex.alias1_target, "data")?;
    let alias2_data = heap.get_field(ex.alias2_target, "data")?;
    let t_left = heap.get_ref(ex.root, "left")?;
    let t_right_is_new = heap.get_ref(ex.root, "right")? != Some(ex.right);

    println!("{name}:");
    println!("  alias1.data = {alias1_data} (local: 0)   alias2.data = {alias2_data} (local: 9)");
    println!(
        "  t.left = {}   t.right replaced by new node: {}",
        t_left.map_or("null".to_owned(), |id| id.to_string()),
        t_right_is_new
    );
    println!(
        "  wire: {} request objects, {} reply bytes, {} restored in place, {} callbacks",
        stats.request_objects, stats.reply_bytes, stats.restored_objects, stats.callbacks_served
    );

    let violations = tree::figure2_violations(heap, &ex)
        .unwrap_or_else(|e| vec![format!("(cross-heap state: {e})")]);
    if violations.is_empty() {
        println!("  ≡ local execution (all Figure-2 expectations hold)\n");
    } else {
        println!("  differs from local execution:");
        for v in violations.iter().take(4) {
            println!("    - {v}");
        }
        println!();
    }
    Ok(())
}

fn main() -> Result<(), NrmiError> {
    println!("the same remote call, four calling semantics\n");
    run_semantics(
        "call-by-copy (standard RMI)",
        CallOptions::forced(PassMode::Copy),
    )?;
    run_semantics(
        "call-by-copy-restore (NRMI)",
        CallOptions::forced(PassMode::CopyRestore),
    )?;
    run_semantics(
        "call-by-copy-restore with delta replies (§5.2.4 opt. 2)",
        CallOptions::copy_restore_delta(),
    )?;
    run_semantics(
        "DCE RPC approximation (§4.2)",
        CallOptions::forced(PassMode::DceRpc),
    )?;
    run_semantics(
        "call-by-reference via remote pointers (Figure 3)",
        CallOptions::forced(PassMode::RemoteRef),
    )?;
    Ok(())
}
