//! Offline stand-in for the `bytes` crate: a `Vec<u8>`-backed
//! [`BytesMut`] plus the [`BufMut`] methods this workspace uses. The
//! build environment cannot fetch crates, so the workspace path-depends
//! on this shim; swapping back to the real crate requires no call-site
//! changes.

/// Append-oriented byte sink, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a byte slice.
    fn put_slice(&mut self, v: &[u8]);
    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64);
}

/// Growable byte buffer, mirroring the subset of `bytes::BytesMut` the
/// wire layer needs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes currently stored.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no bytes are stored.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> BytesMut {
        BytesMut { buf }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_in_order() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        b.put_u64_le(0x0807_0605_0403_0201);
        assert_eq!(b.len(), 11);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec()[..3], [1, 2, 3]);
        assert_eq!(b.as_ref()[3..], [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(Vec::from(b).len(), 11);
    }
}
