//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`
//! primitives. Exposes the subset of the API this workspace uses:
//! poison-free `Mutex` and `RwLock` whose guards behave like
//! `parking_lot`'s (no `Result` wrapping on acquisition).
//!
//! The build environment cannot fetch crates from the network, so the
//! workspace path-depends on this shim instead. Swap the dependency back
//! to the real crate when a registry is available — no call sites change.

use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A panic in a previous
    /// holder does not poison the lock (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("mutex value inaccessible"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "no poisoning");
    }
}
