//! Offline stand-in for the `proptest` crate: randomized property
//! testing with the same API shape (`proptest!`, `prop_assert*!`,
//! `prop_oneof!`, `Strategy` with `prop_map`/`prop_flat_map`, `any`,
//! `Just`, `collection::vec`, `option::of`, `ProptestConfig`) but no
//! shrinking — a failing case panics with the case number so it can be
//! replayed deterministically. The build environment cannot fetch
//! crates, so the workspace path-depends on this shim; swapping back to
//! the real crate requires no call-site changes.

pub mod test_runner {
    //! RNG and per-test configuration.

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a label (the test name).
        pub fn deterministic(label: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Subset of `proptest::test_runner::Config` the workspace uses.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// `generate` is object-safe; combinators are gated on `Sized` so
    /// `Box<dyn Strategy<Value = T>>` works (needed by `prop_oneof!`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one random value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy, inferring the value type (used by `prop_oneof!`).
    pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice among type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must sum to a non-zero value.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return arm.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weights sum covered all picks")
        }
    }

    /// Uniform values of a primitive type (backs [`crate::arbitrary::any`]).
    #[derive(Debug, Clone)]
    pub struct ArbitraryStrategy<T> {
        _marker: PhantomData<T>,
    }

    impl<T> ArbitraryStrategy<T> {
        pub(crate) fn new() -> Self {
            ArbitraryStrategy {
                _marker: PhantomData,
            }
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for ArbitraryStrategy<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ArbitraryStrategy<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for ArbitraryStrategy<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    let pick = if span == 0 { rng.next_u64() } else { rng.below(span) };
                    (start as u64).wrapping_add(pick) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` entry point.

    use crate::strategy::ArbitraryStrategy;

    /// Uniform values of `T` (primitives only in this shim).
    pub fn any<T>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy::new()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Vectors whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Some` from `inner` half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure — no
/// shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Weighted (`w => strat`) or unweighted choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed_strategy($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed_strategy($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `config.cases` random cases. A failure panics
/// with the case number (deterministic per test name, so re-running the
/// test replays the same cases).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`] — one test fn per munch.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic seed; re-run replays it)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone, PartialEq)]
    enum Move {
        Up(i32),
        Down,
    }

    fn move_strategy() -> impl Strategy<Value = Move> {
        prop_oneof![
            3 => any::<i32>().prop_map(Move::Up),
            1 => Just(Move::Down),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds and tuples generate componentwise.
        #[test]
        fn ranges_and_tuples(pair in (0usize..10, -5i32..5), flag in any::<bool>()) {
            prop_assert!(pair.0 < 10);
            prop_assert!((-5..5).contains(&pair.1));
            prop_assert_eq!(flag, flag);
        }

        /// Vec lengths respect both exclusive and inclusive size ranges.
        #[test]
        fn vec_lengths(short in crate::collection::vec(any::<u8>(), 0..4),
                       exact in crate::collection::vec(any::<i32>(), 3..=3)) {
            prop_assert!(short.len() < 4);
            prop_assert_eq!(exact.len(), 3);
        }

        /// flat_map threads the outer value into the inner strategy.
        #[test]
        fn flat_map_dependent(v in (1usize..8).prop_flat_map(|n| crate::collection::vec(0usize..n, n..=n))) {
            let n = v.len();
            prop_assert!((1..8).contains(&n));
            prop_assert!(v.iter().all(|&x| x < n));
        }

        /// option::of produces both variants; oneof respects arm types.
        #[test]
        fn option_and_oneof(o in crate::option::of(0u8..10), m in move_strategy()) {
            if let Some(x) = o {
                prop_assert!(x < 10);
            }
            match m {
                Move::Up(_) | Move::Down => {}
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("alpha");
        let mut c = TestRng::deterministic("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys, "same label, same stream");
        assert_ne!(xs, zs, "different label, different stream");
    }
}
