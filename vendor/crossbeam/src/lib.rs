//! Offline stand-in for the `crossbeam` crate: the `channel` subset the
//! transport layer uses, backed by `std::sync::mpsc`. The build
//! environment cannot fetch crates, so the workspace path-depends on
//! this shim; swapping back to the real crate requires no call-site
//! changes.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if the receiver was dropped.
        ///
        /// # Errors
        /// [`SendError`] carrying the value back when disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        ///
        /// # Errors
        /// [`RecvError`] when disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks with a deadline.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a message if one is already queued.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] if the queue is empty,
        /// [`RecvTimeoutError::Disconnected`] if all senders are gone.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
