//! Offline stand-in for the `rand` crate: a SplitMix64-backed [`rngs::StdRng`]
//! plus the [`Rng`]/[`SeedableRng`] subset this workspace uses. The build
//! environment cannot fetch crates, so the workspace path-depends on this
//! shim; swapping back to the real crate requires no call-site changes.
//! All workspace uses seed explicitly (`seed_from_u64`), so determinism is
//! preserved — though the exact stream differs from upstream `rand`.

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG seeded from a `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::r#gen`].
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let r = rng.next_u64() as $wide % span;
                (self.start as $wide).wrapping_add(r) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                let r = if span == 0 { rng.next_u64() as $wide } else { rng.next_u64() as $wide % span };
                (start as $wide).wrapping_add(r) as $t
            }
        }
    )*};
}

impl_int_ranges! {
    i32 => u64,
    i64 => u64,
    u8 => u64,
    u16 => u64,
    u32 => u64,
    u64 => u64,
    usize => u64,
    isize => u64,
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for i32 {
    fn sample(rng: &mut dyn RngCore) -> i32 {
        rng.next_u64() as i32
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample(rng: &mut dyn RngCore) -> u8 {
        rng.next_u64() as u8
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws one uniformly-distributed value of `T`.
    #[allow(clippy::should_implement_trait)]
    fn r#gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic RNG (SplitMix64), standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0usize..100), b.gen_range(0usize..100));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-1000..1000);
            assert!((-1000..1000).contains(&v));
            let u = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((600..1400).contains(&heads), "p=0.5 badly skewed: {heads}");
    }
}
