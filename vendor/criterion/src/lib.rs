//! Offline stand-in for the `criterion` crate: a minimal timing harness
//! with the same API shape (`Criterion`, `benchmark_group`,
//! `bench_with_input`, `Bencher::{iter, iter_custom, iter_batched}`,
//! `criterion_group!`/`criterion_main!`). The build environment cannot
//! fetch crates, so the workspace path-depends on this shim; swapping
//! back to the real crate requires no call-site changes.
//!
//! Statistics are deliberately simple — each benchmark runs a handful of
//! timed samples and reports the per-iteration mean. Benchmarks exist to
//! compile and to produce indicative numbers, not rigorous confidence
//! intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup; all variants behave identically
/// here (per-iteration setup outside the timed region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Hands the iteration count to `f`, which returns the measured time.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }

    /// Times `routine` only, regenerating its input with `setup` outside
    /// the timed region each iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark registry/driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: 10,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (capped low — this is a smoke harness).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 10);
        self
    }

    /// Runs one benchmark with an input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Runs one benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for sample in 0..self.samples {
            let mut b = Bencher {
                iters: if sample == 0 { 1 } else { 2 },
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if sample > 0 {
                // Sample 0 is warmup.
                total += b.elapsed;
                iters += b.iters;
            }
        }
        let mean_ns = (total.as_nanos() as u64).checked_div(iters).unwrap_or(0);
        println!(
            "bench {}/{}: {} ns/iter ({} iters)",
            self.name, id, mean_ns, iters
        );
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_all_styles() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("iter", 1), &5u32, |b, &n| {
            b.iter(|| n + 1);
            ran += 1;
        });
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(2 + 2);
                }
                start.elapsed()
            });
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
        assert!(ran >= 1, "closure ran at least once");
    }
}
