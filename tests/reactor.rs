//! The reactor server core end to end: tagged calls offloaded to the
//! fixed worker pool, exclusive traffic escalated to dedicated threads,
//! shutdown through the poller waker — and the tentpole claim itself,
//! that hundreds of idle connections cost no extra threads.

#![cfg(unix)]

use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use nrmi::core::{
    FnService, NrmiError, PipelinedCall, RetryPolicy, ServerNode, ServerPool, Session,
};
use nrmi::heap::{ClassRegistry, HeapAccess, SharedRegistry, Value};
use nrmi::transport::{MachineSpec, TcpListenerTransport};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = reg
        .define("Cell")
        .field_int("value")
        .restorable()
        .register();
    reg.snapshot()
}

fn counting_server(registry: &SharedRegistry) -> ServerNode {
    let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
    let mut total = 0i64;
    server.bind(
        "adder",
        Box::new(FnService::new(move |_m, args, _h| {
            total += i64::from(args[0].as_int().unwrap_or(0));
            Ok(Value::Int(total as i32))
        })),
    );
    server
}

/// Reliable (tagged) calls from several clients concurrently: all of
/// them run through the reactor's offload path, and shutdown hands back
/// the node with every call's effect applied exactly once.
#[test]
fn reactor_serves_tagged_calls_from_many_clients() {
    const CLIENTS: usize = 4;
    const CALLS_PER_CLIENT: i32 = 25;

    let registry = registry();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = ServerPool::new()
        .serve_reactor(counting_server(&registry), listener)
        .expect("serve_reactor");

    let mut client_threads = Vec::new();
    for c in 0..CLIENTS {
        let registry = registry.clone();
        client_threads.push(thread::spawn(move || {
            let mut client = Session::connect_tcp_reliable(registry, addr, RetryPolicy::default())
                .expect("connect");
            for i in 0..CALLS_PER_CLIENT {
                let ret = client.call("adder", "add", &[Value::Int(1)]).expect("call");
                assert!(ret.as_int().unwrap() > i, "client {c}: total is monotone");
            }
            client.close().expect("close");
        }));
    }
    for t in client_threads {
        t.join().expect("client thread");
    }

    assert_eq!(
        handle.connections_served(),
        CLIENTS,
        "every client went through the reactor"
    );

    // Under `--features lockcheck`, every scenario above doubles as a
    // lock-discipline audit of the real server (DESIGN.md §3i).
    #[cfg(feature = "lockcheck")]
    nrmi::check::assert_discipline_clean("reactor: tagged calls from many clients");
    let node = handle.shutdown().expect("shutdown");
    drop(node);
}

/// A pipelined batch over one reactor connection: independent calls
/// overlap in the worker pool, a slow call does not block the fast ones
/// behind it, and replies route back to the right requests.
#[test]
fn reactor_overlaps_pipelined_batch() {
    let registry = registry();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
    server.bind(
        "slow",
        Box::new(FnService::new(|_m, _args, _h| {
            thread::sleep(Duration::from_millis(100));
            Ok(Value::Int(-1))
        })),
    );
    server.bind(
        "fast",
        Box::new(FnService::new(|_m, args, _h| {
            Ok(Value::Int(args[0].as_int().unwrap_or(0) + 1))
        })),
    );
    let handle = ServerPool::new()
        .serve_reactor(server, listener)
        .expect("serve_reactor");

    let mut session =
        Session::connect_tcp_reliable(registry, addr, RetryPolicy::default()).expect("connect");
    let batch = [
        PipelinedCall::new("slow", "probe", vec![Value::Null]),
        PipelinedCall::new("fast", "inc", vec![Value::Int(10)]),
        PipelinedCall::new("fast", "inc", vec![Value::Int(20)]),
    ];
    let started = Instant::now();
    let results = session.call_pipelined(&batch).expect("pipelined batch");
    let elapsed = started.elapsed();
    assert_eq!(results[0].as_ref().expect("slow"), &Value::Int(-1));
    assert_eq!(results[1].as_ref().expect("fast 1"), &Value::Int(11));
    assert_eq!(results[2].as_ref().expect("fast 2"), &Value::Int(21));
    // All three overlapped in the worker pool: the batch takes ~one
    // slow call, not three sequential turns.
    assert!(
        elapsed < Duration::from_millis(300),
        "batch took {elapsed:?}; calls did not overlap"
    );

    let _ = session.close();
    handle.shutdown().expect("shutdown");
}

/// Untagged cold calls (a plain client) and warm calls are exclusive
/// traffic: the reactor escalates those connections to dedicated
/// blocking threads and the PR 5/6 semantics — copy-restore effects,
/// warm deltas — come out identical to the pooled mode.
#[test]
fn reactor_escalates_exclusive_traffic() {
    let registry = registry();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
    server.bind(
        "bump",
        Box::new(FnService::new(|_m, args, heap| {
            let cell = args[0]
                .as_ref_id()
                .ok_or_else(|| NrmiError::app("want cell"))?;
            let v = heap.get_field(cell, "value")?.as_int().unwrap_or(0);
            heap.set_field(cell, "value", Value::Int(v + 1))?;
            Ok(Value::Int(v + 1))
        })),
    );
    let handle = ServerPool::new()
        .serve_reactor(server, listener)
        .expect("serve_reactor");

    // Plain client: untagged CallRequest frames — escalated on frame 1.
    let mut plain = Session::connect_tcp(registry.clone(), addr).expect("connect plain");
    let cell_cls = registry.by_name("Cell").expect("Cell");
    let cell = plain
        .heap()
        .alloc(cell_cls, vec![Value::Int(41)])
        .expect("alloc");
    let ret = plain
        .call("bump", "bump", &[Value::Ref(cell)])
        .expect("cold call");
    assert_eq!(ret, Value::Int(42));
    // Copy-restore wrote the server's mutation back onto our object.
    assert_eq!(
        plain.heap().get_field(cell, "value").expect("field"),
        Value::Int(42)
    );

    // Warm client: warm traffic is exclusive too, same escalation path.
    let mut warm = Session::connect_tcp_reliable(registry.clone(), addr, RetryPolicy::default())
        .expect("connect warm");
    let wcell = warm
        .heap()
        .alloc(cell_cls, vec![Value::Int(0)])
        .expect("alloc");
    for i in 1..=3 {
        let (ret, _stats) = warm
            .call_warm_with_stats("bump", "bump", &[Value::Ref(wcell)])
            .expect("warm call");
        assert_eq!(ret, Value::Int(i));
        assert_eq!(
            warm.heap().get_field(wcell, "value").expect("field"),
            Value::Int(i)
        );
    }

    let _ = plain.close();
    let _ = warm.close();
    handle.shutdown().expect("shutdown");
}

#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("/proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|n| n.trim().parse().ok())
        .expect("Threads: line")
}

/// The tentpole claim as a regression test: parking 256 mostly-idle
/// connections on the reactor adds **zero** threads — the process stays
/// at O(reactor + worker pool), where thread-per-connection would add
/// 256 and the pipelined pooled mode several times that.
#[test]
#[cfg(target_os = "linux")]
fn reactor_holds_idle_connections_without_threads() {
    const IDLE_CONNS: usize = 256;

    let registry = registry();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = ServerPool::new()
        .max_live_connections(IDLE_CONNS + 8)
        .serve_reactor(counting_server(&registry), listener)
        .expect("serve_reactor");

    // Settle: one round-trip guarantees the reactor thread and the
    // whole worker pool are spawned before the baseline is taken.
    {
        let mut client =
            Session::connect_tcp_reliable(registry.clone(), addr, RetryPolicy::default())
                .expect("connect warmup");
        client
            .call("adder", "add", &[Value::Int(0)])
            .expect("warmup call");
        let _ = client.close();
    }
    let baseline = thread_count();

    let conns: Vec<TcpStream> = (0..IDLE_CONNS)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}")))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(20);
    while handle.live_connections() < IDLE_CONNS {
        assert!(
            Instant::now() < deadline,
            "only {} of {IDLE_CONNS} connections accepted",
            handle.live_connections()
        );
        thread::sleep(Duration::from_millis(10));
    }

    let with_idle = thread_count();
    assert!(
        with_idle <= baseline + 2,
        "{IDLE_CONNS} idle connections grew the thread count {baseline} -> {with_idle}; \
         the reactor must hold them without per-connection threads"
    );

    // The fleet still works: a tagged call lands while the idle herd is
    // parked.
    let mut client =
        Session::connect_tcp_reliable(registry, addr, RetryPolicy::default()).expect("connect");
    assert_eq!(
        client.call("adder", "add", &[Value::Int(5)]).expect("call"),
        Value::Int(5)
    );
    let _ = client.close();

    drop(conns);
    handle.shutdown().expect("shutdown");
}

/// Shutdown with parked idle connections returns promptly: the waker
/// interrupts the poller, the drain pass closes the idle herd, and the
/// node comes back.
#[test]
fn reactor_shutdown_drains_idle_connections() {
    const IDLE_CONNS: usize = 32;

    let registry = registry();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = ServerPool::new()
        .serve_reactor(counting_server(&registry), listener)
        .expect("serve_reactor");

    let conns: Vec<TcpStream> = (0..IDLE_CONNS)
        .map(|_| TcpStream::connect(addr).expect("connect"))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.live_connections() < IDLE_CONNS {
        assert!(Instant::now() < deadline, "accept stalled");
        thread::sleep(Duration::from_millis(5));
    }

    let started = Instant::now();
    let node = handle.shutdown().expect("shutdown");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "shutdown with idle connections took {:?}",
        started.elapsed()
    );
    drop(node);
    drop(conns);
}

/// `max_total_connections` works in reactor mode: after the limit the
/// listener stops accepting, and `join` returns once the last
/// connection drains.
#[test]
fn reactor_honors_total_connection_limit() {
    let registry = registry();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = ServerPool::new()
        .max_total_connections(2)
        .serve_reactor(counting_server(&registry), listener)
        .expect("serve_reactor");

    for _ in 0..2 {
        let mut client =
            Session::connect_tcp_reliable(registry.clone(), addr, RetryPolicy::default())
                .expect("connect");
        client.call("adder", "add", &[Value::Int(1)]).expect("call");
        client.close().expect("close");
    }

    // Under `--features lockcheck`, every scenario above doubles as a
    // lock-discipline audit of the real server (DESIGN.md §3i).
    #[cfg(feature = "lockcheck")]
    nrmi::check::assert_discipline_clean("reactor: total connection limit");
    let node = handle.join().expect("join after total limit");
    drop(node);
}
