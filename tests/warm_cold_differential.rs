//! Differential property test: a warm session (request deltas against a
//! cached server graph) must be observationally identical to a cold
//! session (full copy-restore each call) for *any* graph shape and any
//! schedule of client- and server-side mutations.
//!
//! Both worlds start from the same random (possibly cyclic, aliased)
//! graph, run the same deterministic mutator service for `k` calls, and
//! apply the same client-side edits between calls. After every call the
//! two client heaps must be isomorphic and the return values equal.

use proptest::prelude::*;

use nrmi::core::{CallOptions, FnService, NrmiError, RemoteService, Session};
use nrmi::heap::graph::{first_difference, isomorphic_multi};
use nrmi::heap::{ClassRegistry, Heap, HeapAccess, ObjId, Value};

/// One mutation, addressed by *preorder index* (not ObjId) so it means
/// the same thing on any isomorphic copy of the graph:
/// `(op, target_index, value)` with `op % 4` selecting
/// 0 = set data, 1 = unlink a child, 2 = alias to an existing node,
/// 3 = allocate a fresh node and link it in.
type Op = (u8, usize, i32);

#[derive(Clone, Debug)]
struct GraphSpec {
    data: Vec<i32>,
    edges: Vec<(usize, bool, usize)>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (1usize..24).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<i32>(), n..=n),
            proptest::collection::vec((0usize..n, any::<bool>(), 0usize..n), 0..36),
        )
            .prop_map(|(data, edges)| GraphSpec { data, edges })
    })
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0usize..64, -100i32..100), 0..5)
}

/// Per-call schedule: what the server does during the call, and what the
/// client does to its own graph after the call returns.
fn schedule() -> impl Strategy<Value = Vec<(Vec<Op>, Vec<Op>)>> {
    proptest::collection::vec((ops(), ops()), 1..5)
}

fn fresh_heap() -> Heap {
    let mut reg = ClassRegistry::new();
    reg.define("Node")
        .field_int("data")
        .field_ref("left")
        .field_ref("right")
        .restorable()
        .register();
    Heap::new(reg.snapshot())
}

fn build(heap: &mut Heap, spec: &GraphSpec) -> ObjId {
    let class = heap.registry_handle().by_name("Node").expect("Node");
    let nodes: Vec<ObjId> = spec
        .data
        .iter()
        .map(|&d| {
            heap.alloc(class, vec![Value::Int(d), Value::Null, Value::Null])
                .unwrap()
        })
        .collect();
    for &(from, left, to) in &spec.edges {
        let side = if left { "left" } else { "right" };
        heap.set_field(nodes[from], side, Value::Ref(nodes[to]))
            .unwrap();
    }
    nodes[0]
}

/// Deterministic preorder over `left` then `right` — the shared
/// coordinate system both worlds address mutations in.
fn preorder(heap: &mut dyn HeapAccess, root: ObjId) -> nrmi::heap::Result<Vec<ObjId>> {
    let mut order = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        order.push(id);
        // Push right first so left is visited first.
        for slot in [2usize, 1] {
            if let Some(child) = heap.get_field_raw(id, slot)?.as_ref_id() {
                stack.push(child);
            }
        }
    }
    Ok(order)
}

/// Applies one batch of ops to whatever heap (client's real heap or the
/// server's proxied one) — identical meaning on isomorphic graphs.
fn apply_ops(heap: &mut dyn HeapAccess, root: ObjId, ops: &[Op]) -> nrmi::heap::Result<()> {
    for &(op, idx, val) in ops {
        let order = preorder(heap, root)?;
        let target = order[idx % order.len()];
        let slot = 1 + (val.rem_euclid(2) as usize);
        match op % 4 {
            0 => heap.set_field_raw(target, 0, Value::Int(val))?,
            1 => heap.set_field_raw(target, slot, Value::Null)?,
            2 => {
                let other = order[(val.unsigned_abs() as usize) % order.len()];
                heap.set_field_raw(target, slot, Value::Ref(other))?;
            }
            3 => {
                let class = heap.class_of(target)?;
                let fresh =
                    heap.alloc_raw(class, vec![Value::Int(val), Value::Null, Value::Null])?;
                heap.set_field_raw(target, slot, Value::Ref(fresh))?;
            }
            _ => unreachable!(),
        }
    }
    Ok(())
}

/// Checksum of the reachable graph: order-sensitive fold over preorder
/// data fields, so any divergence in shape or values shows up.
fn checksum(heap: &mut dyn HeapAccess, root: ObjId) -> nrmi::heap::Result<i64> {
    let mut sum = 0i64;
    for (i, id) in preorder(heap, root)?.into_iter().enumerate() {
        let d = i64::from(heap.get_field_raw(id, 0)?.as_int().unwrap_or(0));
        sum = sum.wrapping_mul(31).wrapping_add(d ^ i as i64);
    }
    Ok(sum)
}

/// The server-side mutator: call `i` applies `schedule[i]` and returns
/// the post-mutation checksum.
fn mutator(schedule: Vec<Vec<Op>>) -> Box<dyn RemoteService> {
    Box::new(FnService::new(move |_m, args, heap| {
        let root = args[0]
            .as_ref_id()
            .ok_or_else(|| NrmiError::app("want graph"))?;
        let call = args[1]
            .as_int()
            .ok_or_else(|| NrmiError::app("want call index"))? as usize;
        let ops = schedule.get(call).cloned().unwrap_or_default();
        apply_ops(heap, root, &ops)?;
        Ok(Value::Int(checksum(heap, root)? as i32))
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// warm ≡ cold: same graphs, same returns, call after call.
    #[test]
    fn warm_session_is_observationally_cold(
        spec in graph_spec(),
        plan in schedule(),
    ) {
        let server_side: Vec<Vec<Op>> = plan.iter().map(|(s, _)| s.clone()).collect();

        let mut reg = ClassRegistry::new();
        reg.define("Node")
            .field_int("data")
            .field_ref("left")
            .field_ref("right")
            .restorable()
            .register();
        let mut cold = Session::builder(reg.snapshot())
            .serve("mutate", mutator(server_side.clone()))
            .build();
        let mut warm = Session::builder(reg.snapshot())
            .serve("mutate", mutator(server_side))
            .build();

        let cold_root = build(cold.heap(), &spec);
        let warm_root = build(warm.heap(), &spec);
        let opts = CallOptions::copy_restore_delta();

        for (i, (_, client_ops)) in plan.iter().enumerate() {
            let args = [Value::Ref(cold_root), Value::Int(i as i32)];
            let cv = cold.call_with_stats("mutate", "run", &args, opts).unwrap().0;
            let wargs = [Value::Ref(warm_root), Value::Int(i as i32)];
            let wv = warm.call_warm("mutate", "run", &wargs).unwrap();
            prop_assert_eq!(cv, wv, "call {}: same return value", i);

            prop_assert!(
                isomorphic_multi(cold.heap(), &[cold_root], warm.heap(), &[warm_root]).unwrap(),
                "call {}: client heaps diverged: {:?}",
                i,
                first_difference(cold.heap(), &[cold_root], warm.heap(), &[warm_root]).unwrap()
            );

            // Same client-side edits between calls in both worlds.
            apply_ops(cold.heap(), cold_root, client_ops).unwrap();
            apply_ops(warm.heap(), warm_root, client_ops).unwrap();
        }

        // The warm session really was warm the whole time.
        prop_assert_eq!(warm.warm_generation("mutate"), Some(plan.len() as u64));
    }
}

/// A directed (non-random) case covering the trickiest delta interaction:
/// the client unlinks a shared subtree (freed positions) while also
/// grafting new nodes, then the server re-aliases what is left.
#[test]
fn directed_free_then_alias_case() {
    let spec = GraphSpec {
        data: vec![1, 2, 3, 4, 5],
        edges: vec![
            (0, true, 1),
            (0, false, 2),
            (1, true, 3),
            (2, true, 3),
            (3, false, 4),
        ],
    };
    let server_side = vec![vec![(2u8, 0usize, 3i32)], vec![(0u8, 2usize, 77i32)]];
    let client_side: Vec<Op> = vec![(1, 1, 0), (3, 0, 9)];

    let mut cold = {
        let h = fresh_heap();
        Session::builder(h.registry_handle().clone())
            .serve("mutate", mutator(server_side.clone()))
            .build()
    };
    let mut warm = {
        let h = fresh_heap();
        Session::builder(h.registry_handle().clone())
            .serve("mutate", mutator(server_side))
            .build()
    };
    let cold_root = build(cold.heap(), &spec);
    let warm_root = build(warm.heap(), &spec);
    let opts = CallOptions::copy_restore_delta();

    for i in 0..2 {
        let cv = cold
            .call_with_stats(
                "mutate",
                "run",
                &[Value::Ref(cold_root), Value::Int(i)],
                opts,
            )
            .unwrap()
            .0;
        let wv = warm
            .call_warm("mutate", "run", &[Value::Ref(warm_root), Value::Int(i)])
            .unwrap();
        assert_eq!(cv, wv, "call {i}");
        assert!(
            isomorphic_multi(cold.heap(), &[cold_root], warm.heap(), &[warm_root]).unwrap(),
            "call {i} diverged"
        );
        apply_ops(cold.heap(), cold_root, &client_side).unwrap();
        apply_ops(warm.heap(), warm_root, &client_side).unwrap();
    }
    assert_eq!(warm.warm_generation("mutate"), Some(2));
}
