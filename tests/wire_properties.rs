//! Property-based tests on the wire layer and heap invariants, driven
//! through the public facade: serialization round trips, linear-map
//! laws, and delta-encoding correctness on arbitrary graphs.

use proptest::prelude::*;

use nrmi::heap::copy::deep_copy_between;
use nrmi::heap::graph::isomorphic_multi;
use nrmi::heap::{ClassRegistry, Heap, HeapAccess, LinearMap, ObjId, Value};
use nrmi::wire::{apply_delta, deserialize_graph, encode_delta, serialize_graph, GraphSnapshot};

/// Specification of a random graph: node payloads and an edge list.
#[derive(Clone, Debug)]
struct GraphSpec {
    data: Vec<i32>,
    edges: Vec<(usize, bool, usize)>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (1usize..32).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<i32>(), n..=n),
            proptest::collection::vec((0usize..n, any::<bool>(), 0usize..n), 0..48),
        )
            .prop_map(|(data, edges)| GraphSpec { data, edges })
    })
}

fn build(heap: &mut Heap, spec: &GraphSpec) -> Vec<ObjId> {
    let class = heap.registry_handle().by_name("Node").expect("Node");
    let nodes: Vec<ObjId> = spec
        .data
        .iter()
        .map(|&d| {
            heap.alloc(class, vec![Value::Int(d), Value::Null, Value::Null])
                .unwrap()
        })
        .collect();
    for &(from, left, to) in &spec.edges {
        let side = if left { "left" } else { "right" };
        heap.set_field(nodes[from], side, Value::Ref(nodes[to]))
            .unwrap();
    }
    nodes
}

fn fresh_heap() -> Heap {
    let mut reg = ClassRegistry::new();
    reg.define("Node")
        .field_int("data")
        .field_ref("left")
        .field_ref("right")
        .restorable()
        .register();
    Heap::new(reg.snapshot())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// serialize ∘ deserialize preserves alias structure exactly.
    #[test]
    fn wire_roundtrip_is_isomorphic(spec in graph_spec()) {
        let mut heap = fresh_heap();
        let nodes = build(&mut heap, &spec);
        let root = nodes[0];
        let enc = serialize_graph(&heap, &[Value::Ref(root)]).unwrap();
        let mut dst = Heap::new(heap.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut dst).unwrap();
        let root2 = dec.roots[0].as_ref_id().unwrap();
        prop_assert!(isomorphic_multi(&heap, &[root], &dst, &[root2]).unwrap());
        // Object counts agree with the reachable set.
        let map = LinearMap::build(&heap, &[root]).unwrap();
        prop_assert_eq!(enc.object_count(), map.len());
        prop_assert_eq!(dec.object_count(), map.len());
    }

    /// The linear map is deterministic and position-stable across
    /// isomorphic heaps (the property the restore algorithm relies on).
    #[test]
    fn linear_maps_correspond_across_copies(spec in graph_spec()) {
        let mut heap = fresh_heap();
        let nodes = build(&mut heap, &spec);
        let root = nodes[0];
        let mut dst = Heap::new(heap.registry_handle().clone());
        let translation = deep_copy_between(&heap, &[root], &mut dst).unwrap();
        let src_map = LinearMap::build(&heap, &[root]).unwrap();
        let dst_map = LinearMap::build(&dst, &[translation[&root]]).unwrap();
        prop_assert_eq!(src_map.len(), dst_map.len());
        for (pos, id) in src_map.iter() {
            prop_assert_eq!(dst_map.at(pos), Some(translation[&id]),
                "position {} maps to the translated object", pos);
        }
    }

    /// Delta encode/apply reproduces arbitrary post-mutation states.
    #[test]
    fn delta_reproduces_mutations(
        spec in graph_spec(),
        tweaks in proptest::collection::vec((0usize..32, any::<i32>()), 0..8),
        unlink in proptest::collection::vec((0usize..32, any::<bool>()), 0..4)
    ) {
        // Client graph + serialized request.
        let mut client = fresh_heap();
        let nodes = build(&mut client, &spec);
        let root = nodes[0];
        let enc = serialize_graph(&client, &[Value::Ref(root)]).unwrap();

        // Server: decode, snapshot, mutate, delta.
        let mut server = Heap::new(client.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut server).unwrap();
        let snapshot = GraphSnapshot::capture(&server, &dec.linear).unwrap();
        for &(i, v) in &tweaks {
            let target = dec.linear[i % dec.linear.len()];
            server.set_field(target, "data", Value::Int(v)).unwrap();
        }
        for &(i, left) in &unlink {
            let target = dec.linear[i % dec.linear.len()];
            let side = if left { "left" } else { "right" };
            server.set_field(target, side, Value::Null).unwrap();
        }
        let server_root = dec.roots[0].as_ref_id().unwrap();
        let delta = encode_delta(&server, &snapshot, &[Value::Ref(server_root)]).unwrap();

        // Client: apply; the graphs (over the FULL old set, not just the
        // root) must now be isomorphic to the server's.
        let applied = apply_delta(&delta.bytes, &mut client, &enc.linear).unwrap();
        prop_assert_eq!(applied.roots[0].clone(), Value::Ref(root));
        prop_assert!(
            isomorphic_multi(&server, &dec.linear, &client, &enc.linear).unwrap(),
            "server and client disagree after delta application"
        );
    }

    /// A no-op call's delta is tiny regardless of graph size — the
    /// paper's claimed benefit of the (then future-work) optimization.
    #[test]
    fn noop_delta_is_constant_size(spec in graph_spec()) {
        let mut client = fresh_heap();
        let nodes = build(&mut client, &spec);
        let root = nodes[0];
        let enc = serialize_graph(&client, &[Value::Ref(root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let dec = deserialize_graph(&enc.bytes, &mut server).unwrap();
        let snapshot = GraphSnapshot::capture(&server, &dec.linear).unwrap();
        let delta = encode_delta(&server, &snapshot, &[]).unwrap();
        prop_assert!(delta.bytes.len() < 24, "no-change delta was {} bytes", delta.bytes.len());
    }

    /// Mark-sweep collects exactly the unreachable portion.
    #[test]
    fn mark_sweep_partition(spec in graph_spec(), keep_root in any::<bool>()) {
        let mut heap = fresh_heap();
        let nodes = build(&mut heap, &spec);
        let root = nodes[0];
        let reachable = LinearMap::build(&heap, &[root]).unwrap().len();
        let total = heap.live_count();
        let roots: Vec<ObjId> = if keep_root { vec![root] } else { vec![] };
        let freed = nrmi::heap::gc::mark_sweep(&mut heap, &roots).unwrap();
        if keep_root {
            prop_assert_eq!(freed, total - reachable);
            prop_assert_eq!(heap.live_count(), reachable);
        } else {
            prop_assert_eq!(freed, total);
            prop_assert_eq!(heap.live_count(), 0);
        }
    }
}
