//! Semantics edge cases: shared arguments, mixed markers, primitives,
//! argument validation, and the §4.1 statelessness caveat.

use nrmi::core::{CallOptions, FnService, NrmiError, PassMode, Session};
use nrmi::heap::{ClassRegistry, HeapAccess, SharedRegistry, Value};

fn tree_registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = nrmi::heap::tree::register_tree_classes(&mut reg);
    reg.snapshot()
}

fn tree_class(session: &mut Session) -> nrmi::heap::ClassId {
    session
        .heap()
        .registry_handle()
        .by_name("Tree")
        .expect("Tree")
}

#[test]
fn same_parameter_passed_twice_is_one_copy() {
    // §4.1: "the middleware implementation can notice the sharing of
    // structure and replicate the sharing in the copy" — contra the
    // often-repeated claim that copy-restore forces multiple copies.
    let mut session = Session::builder(tree_registry())
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let a = args[0].as_ref_id().ok_or_else(|| NrmiError::app("a"))?;
                let b = args[1].as_ref_id().ok_or_else(|| NrmiError::app("b"))?;
                // The server observes ONE object behind both parameters.
                if a != b {
                    return Err(NrmiError::app("sharing was duplicated"));
                }
                heap.set_field(a, "data", Value::Int(77))?;
                // Visible through the second parameter as well:
                if heap.get_field(b, "data")? != Value::Int(77) {
                    return Err(NrmiError::app("parameters are distinct copies"));
                }
                Ok(Value::Null)
            })),
        )
        .build();
    let class = tree_class(&mut session);
    let obj = session
        .heap()
        .alloc(class, vec![Value::Int(1), Value::Null, Value::Null])
        .unwrap();
    session
        .call("svc", "check", &[Value::Ref(obj), Value::Ref(obj)])
        .expect("shared-arg call");
    assert_eq!(
        session.heap().get_field(obj, "data").unwrap(),
        Value::Int(77)
    );
}

#[test]
fn two_arguments_sharing_substructure_restore_consistently() {
    let mut session = Session::builder(tree_registry())
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let a = args[0].as_ref_id().unwrap();
                let b = args[1].as_ref_id().unwrap();
                let shared_a = heap.get_ref(a, "left")?.unwrap();
                let shared_b = heap.get_ref(b, "left")?.unwrap();
                if shared_a != shared_b {
                    return Err(NrmiError::app("cross-parameter sharing lost"));
                }
                heap.set_field(shared_a, "data", Value::Int(42))?;
                Ok(Value::Null)
            })),
        )
        .build();
    let class = tree_class(&mut session);
    let heap = session.heap();
    let shared = heap
        .alloc(class, vec![Value::Int(0), Value::Null, Value::Null])
        .unwrap();
    let a = heap
        .alloc(class, vec![Value::Int(1), Value::Ref(shared), Value::Null])
        .unwrap();
    let b = heap
        .alloc(class, vec![Value::Int(2), Value::Ref(shared), Value::Null])
        .unwrap();
    session
        .call("svc", "touch", &[Value::Ref(a), Value::Ref(b)])
        .expect("call");
    // One object, one restore, visible through both parents:
    let heap = session.heap();
    assert_eq!(heap.get_field(shared, "data").unwrap(), Value::Int(42));
    assert_eq!(
        heap.get_ref(a, "left").unwrap(),
        heap.get_ref(b, "left").unwrap()
    );
}

#[test]
fn mixed_markers_copy_arg_not_restored_restorable_arg_restored() {
    let mut reg = ClassRegistry::new();
    // Snapshot is copy-only; Record is restorable.
    let snapshot = reg
        .define("Snapshot")
        .field_int("v")
        .serializable()
        .register();
    let record = reg.define("Record").field_int("v").restorable().register();
    let mut session = Session::builder(reg.snapshot())
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                for arg in args {
                    let obj = arg.as_ref_id().unwrap();
                    heap.set_field(obj, "v", Value::Int(100))?;
                }
                Ok(Value::Null)
            })),
        )
        .build();
    let heap = session.heap();
    let snap = heap.alloc(snapshot, vec![Value::Int(1)]).unwrap();
    let rec = heap.alloc(record, vec![Value::Int(2)]).unwrap();
    session
        .call("svc", "bump", &[Value::Ref(snap), Value::Ref(rec)])
        .expect("mixed call");
    let heap = session.heap();
    assert_eq!(
        heap.get_field(snap, "v").unwrap(),
        Value::Int(1),
        "Serializable-only argument keeps call-by-copy semantics"
    );
    assert_eq!(
        heap.get_field(rec, "v").unwrap(),
        Value::Int(100),
        "Restorable argument is restored"
    );
}

#[test]
fn primitive_arguments_pass_by_value_and_return_values_work() {
    let reg = ClassRegistry::new().snapshot();
    let mut session = Session::builder(reg)
        .serve(
            "calc",
            Box::new(FnService::new(|method, args, _h| match method {
                "mix" => {
                    let i = args[0].as_int().unwrap_or(0) as f64;
                    let d = args[1].as_double().unwrap_or(0.0);
                    let b = args[2].as_bool().unwrap_or(false);
                    let s = args[3].as_str().unwrap_or("").len() as f64;
                    Ok(Value::Double(if b { i + d + s } else { 0.0 }))
                }
                _ => Err(NrmiError::app("nope")),
            })),
        )
        .build();
    let ret = session
        .call(
            "calc",
            "mix",
            &[
                Value::Int(2),
                Value::Double(0.5),
                Value::Bool(true),
                Value::Str("abc".into()),
            ],
        )
        .expect("call");
    assert_eq!(ret, Value::Double(5.5));
}

#[test]
fn non_serializable_argument_is_rejected_client_side() {
    let mut reg = ClassRegistry::new();
    let plain = reg.define("Plain").field_int("x").register();
    let mut session = Session::builder(reg.snapshot())
        .serve(
            "svc",
            Box::new(FnService::new(|_m, _a, _h| Ok(Value::Null))),
        )
        .build();
    let obj = session.heap().alloc_default(plain).unwrap();
    let err = session.call("svc", "run", &[Value::Ref(obj)]).unwrap_err();
    assert!(matches!(err, NrmiError::Wire(_)), "{err}");
    assert!(err.to_string().contains("not serializable"));
}

#[test]
fn stateless_server_copy_restore_equals_remote_ref() {
    // §4.1: "for a single-threaded client, call-by-copy-restore
    // semantics is identical to call-by-reference if the remote routine
    // is stateless." Run the same routine under both; outcomes on the
    // caller's own objects must agree.
    let registry = tree_registry();
    let run = |opts: CallOptions| {
        let mut session = Session::builder(registry.clone())
            .serve(
                "svc",
                Box::new(FnService::new(|_m, args, heap| {
                    let root = args[0].as_ref_id().unwrap();
                    let v = heap.get_field(root, "data")?.as_int().unwrap_or(0);
                    heap.set_field(root, "data", Value::Int(v * 10))?;
                    let left = heap.get_ref(root, "left")?.unwrap();
                    heap.set_field(left, "data", Value::Int(-1))?;
                    Ok(Value::Null)
                })),
            )
            .build();
        let class = session.heap().registry_handle().by_name("Tree").unwrap();
        let heap = session.heap();
        let leaf = heap
            .alloc(class, vec![Value::Int(2), Value::Null, Value::Null])
            .unwrap();
        let root = heap
            .alloc(class, vec![Value::Int(5), Value::Ref(leaf), Value::Null])
            .unwrap();
        session
            .call_with("svc", "run", &[Value::Ref(root)], opts)
            .expect("call");
        let heap = session.heap();
        (
            heap.get_field(root, "data").unwrap(),
            heap.get_field(leaf, "data").unwrap(),
        )
    };
    let cbcr = run(CallOptions::forced(PassMode::CopyRestore));
    let by_ref = run(CallOptions::forced(PassMode::RemoteRef));
    assert_eq!(
        cbcr, by_ref,
        "stateless routine: copy-restore ≡ call-by-reference"
    );
    assert_eq!(cbcr, (Value::Int(50), Value::Int(-1)));
}

#[test]
fn stateful_server_breaks_the_equivalence() {
    // §4.1's caveat: if the server keeps an alias to the input data that
    // outlives the call, copy-restore and call-by-reference diverge —
    // the retained alias points at a dead copy under copy-restore, but
    // at the caller's live object under call-by-reference.
    let registry = tree_registry();
    let run = |opts: CallOptions| {
        let mut session = Session::builder(registry.clone())
            .serve(
                "svc",
                Box::new(FnService::new({
                    let mut retained: Option<nrmi::heap::ObjId> = None;
                    move |method, args, heap| match method {
                        "keep" => {
                            retained = args[0].as_ref_id();
                            Ok(Value::Null)
                        }
                        "mutate_kept" => {
                            let kept = retained.ok_or_else(|| NrmiError::app("nothing kept"))?;
                            heap.set_field(kept, "data", Value::Int(999))?;
                            Ok(Value::Null)
                        }
                        _ => Err(NrmiError::app("nope")),
                    }
                })),
            )
            .build();
        let class = session.heap().registry_handle().by_name("Tree").unwrap();
        let obj = session
            .heap()
            .alloc(class, vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        session
            .call_with("svc", "keep", &[Value::Ref(obj)], opts)
            .expect("keep");
        session
            .call_with("svc", "mutate_kept", &[], opts)
            .expect("mutate");
        session.heap().get_field(obj, "data").unwrap()
    };
    // Copy-restore: the server mutated its stale copy; caller unaffected.
    assert_eq!(
        run(CallOptions::forced(PassMode::CopyRestore)),
        Value::Int(1)
    );
    // Call-by-reference: the retained stub still aims at the caller's
    // object; the late mutation IS visible.
    assert_eq!(
        run(CallOptions::forced(PassMode::RemoteRef)),
        Value::Int(999)
    );
}

#[test]
fn no_such_method_is_a_remote_error() {
    let mut session = Session::builder(tree_registry())
        .serve(
            "svc",
            Box::new(FnService::new(|method, _a, _h| {
                Err(NrmiError::NoSuchMethod {
                    service: "svc".into(),
                    method: method.into(),
                })
            })),
        )
        .build();
    let err = session.call("svc", "nothere", &[]).unwrap_err();
    assert!(err.to_string().contains("nothere"), "{err}");
}

#[test]
fn session_tracing_records_calls_and_errors() {
    let mut session = Session::builder(tree_registry())
        .serve(
            "svc",
            Box::new(FnService::new(|method, args, heap| match method {
                "touch" => {
                    let root = args[0].as_ref_id().unwrap();
                    heap.set_field(root, "data", Value::Int(1))?;
                    Ok(Value::Null)
                }
                _ => Err(NrmiError::app("nope")),
            })),
        )
        .build();
    session.enable_tracing();
    let class = tree_class(&mut session);
    let obj = session
        .heap()
        .alloc(class, vec![Value::Int(0), Value::Null, Value::Null])
        .unwrap();
    session.call("svc", "touch", &[Value::Ref(obj)]).unwrap();
    let _ = session.call("svc", "missing", &[]);
    let _ = session.call_with(
        "svc",
        "touch",
        &[Value::Ref(obj)],
        CallOptions::copy_restore_delta(),
    );

    let tracer = session.tracer();
    assert_eq!(tracer.entries().len(), 3);
    let (calls, errors, req, _reply, _cb) = tracer.totals();
    assert_eq!((calls, errors), (3, 1));
    assert!(req > 0);
    let rendered = tracer.render();
    assert!(rendered.contains("svc.touch [auto]"), "{rendered}");
    assert!(rendered.contains("copy-restore+delta"), "{rendered}");
    assert!(rendered.contains("ERR"), "{rendered}");
    assert!(rendered.contains("restored=1"), "{rendered}");
}

#[test]
fn shutdown_returns_server_state_for_inspection() {
    let mut session = Session::builder(tree_registry())
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                // Leave a copy on the server (stateless in the aliasing
                // sense, but the heap retains garbage until GC).
                let root = args[0].as_ref_id().unwrap();
                let _ = heap.get_field(root, "data")?;
                Ok(Value::Null)
            })),
        )
        .build();
    let class = tree_class(&mut session);
    let obj = session
        .heap()
        .alloc(class, vec![Value::Int(1), Value::Null, Value::Null])
        .unwrap();
    session
        .call("svc", "peek", &[Value::Ref(obj)])
        .expect("call");
    let server = session.shutdown().expect("shutdown");
    assert!(
        server.state.heap.live_count() > 0,
        "server materialized the copy"
    );
    assert!(server.is_bound("svc"));
}
