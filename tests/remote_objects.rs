//! First-class remote objects: the RMI factory pattern end to end.
//!
//! A named factory service hands back remote-marked objects; the client
//! receives stubs and invokes methods ON them directly
//! (`Session::call_on`), with the server dispatching to the behavior
//! bound to the receiver's class — `UnicastRemoteObject` semantics. The
//! receiver's state lives on the server; its mutable-argument semantics
//! (copy-restore for restorable args) compose as usual.

use nrmi::core::{CallOptions, FnService, NrmiError, PassMode, Session};
use nrmi::heap::{ClassRegistry, HeapAccess, Value};

/// Bank/account schema: `Bank` is a named factory; `Account` is a remote
/// class whose instances live on the server.
fn build_session() -> (Session, nrmi::heap::ClassId) {
    let mut reg = ClassRegistry::new();
    // class Account extends UnicastRemoteObject { String owner; long cents; }
    let account = reg
        .define("Account")
        .field_str("owner")
        .field_long("cents")
        .remote()
        .register();
    // class Statement implements Restorable { long balance; String owner; }
    let statement = reg
        .define("Statement")
        .field_long("balance")
        .field_str("owner")
        .restorable()
        .register();
    let registry = reg.snapshot();

    let session = Session::builder(registry)
        // The factory: a named service creating server-resident accounts.
        .serve(
            "bank",
            Box::new(FnService::new(move |method, args, heap| match method {
                "open_account" => {
                    let owner = args[0].as_str().ok_or_else(|| NrmiError::app("owner"))?;
                    let acct = heap
                        .alloc_raw(account, vec![Value::Str(owner.to_owned()), Value::Long(0)])?;
                    // Returning a remote-marked object exports it; the
                    // client receives a stub.
                    Ok(Value::Ref(acct))
                }
                other => Err(NrmiError::app(format!("no method {other}"))),
            })),
        )
        // The Account class behavior: receiver arrives as args[0].
        .serve_class(
            account,
            Box::new(FnService::new(move |method, args, heap| {
                let this = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("receiver"))?;
                match method {
                    "deposit" => {
                        let amount = args[1].as_long().ok_or_else(|| NrmiError::app("amount"))?;
                        let balance = heap.get_field(this, "cents")?.as_long().unwrap_or(0);
                        heap.set_field(this, "cents", Value::Long(balance + amount))?;
                        Ok(Value::Long(balance + amount))
                    }
                    "balance" => heap.get_field(this, "cents").map_err(NrmiError::from),
                    // Fill a caller-supplied restorable Statement object:
                    // remote receiver + copy-restore argument compose.
                    "fill_statement" => {
                        let stmt = args[1].as_ref_id().ok_or_else(|| NrmiError::app("stmt"))?;
                        let balance = heap.get_field(this, "cents")?;
                        let owner = heap.get_field(this, "owner")?;
                        heap.set_field(stmt, "balance", balance)?;
                        heap.set_field(stmt, "owner", owner)?;
                        Ok(Value::Null)
                    }
                    other => Err(NrmiError::app(format!("no method {other}"))),
                }
            })),
        )
        .build();
    (session, statement)
}

#[test]
fn factory_returns_stub_and_methods_dispatch_on_it() {
    let (mut session, _) = build_session();
    let acct = session
        .call("bank", "open_account", &[Value::Str("ada".into())])
        .unwrap()
        .as_ref_id()
        .expect("stub");
    assert!(
        session.heap().stub_key(acct).unwrap().is_some(),
        "client holds a stub"
    );

    assert_eq!(
        session
            .call_on(acct, "deposit", &[Value::Long(100)])
            .unwrap(),
        Value::Long(100)
    );
    assert_eq!(
        session
            .call_on(acct, "deposit", &[Value::Long(42)])
            .unwrap(),
        Value::Long(142)
    );
    assert_eq!(
        session.call_on(acct, "balance", &[]).unwrap(),
        Value::Long(142)
    );
}

#[test]
fn two_accounts_have_independent_server_state() {
    let (mut session, _) = build_session();
    let a = session
        .call("bank", "open_account", &[Value::Str("a".into())])
        .unwrap()
        .as_ref_id()
        .unwrap();
    let b = session
        .call("bank", "open_account", &[Value::Str("b".into())])
        .unwrap()
        .as_ref_id()
        .unwrap();
    assert_ne!(a, b, "distinct stubs");
    session.call_on(a, "deposit", &[Value::Long(10)]).unwrap();
    session.call_on(b, "deposit", &[Value::Long(99)]).unwrap();
    assert_eq!(session.call_on(a, "balance", &[]).unwrap(), Value::Long(10));
    assert_eq!(session.call_on(b, "balance", &[]).unwrap(), Value::Long(99));
}

#[test]
fn remote_receiver_composes_with_copy_restore_arguments() {
    let (mut session, statement) = build_session();
    let acct = session
        .call("bank", "open_account", &[Value::Str("turing".into())])
        .unwrap()
        .as_ref_id()
        .unwrap();
    session
        .call_on(acct, "deposit", &[Value::Long(777)])
        .unwrap();

    // Pass a restorable Statement; the remote method fills it in and the
    // restore brings the data home into the caller's object.
    let stmt = session
        .heap()
        .alloc(statement, vec![Value::Long(0), Value::Null])
        .unwrap();
    session
        .call_on(acct, "fill_statement", &[Value::Ref(stmt)])
        .unwrap();
    assert_eq!(
        session.heap().get_field(stmt, "balance").unwrap(),
        Value::Long(777)
    );
    assert_eq!(
        session.heap().get_field(stmt, "owner").unwrap(),
        Value::Str("turing".into())
    );
}

#[test]
fn client_owned_remote_object_acts_as_a_callback_listener() {
    // The RMI callback pattern, inverted ownership: the CLIENT owns a
    // remote-marked listener object. Passing it to the server (AUTO
    // mode) ships a stub; when the service writes through that stub,
    // the write crosses back mid-call and lands on the client's
    // original object — no restore phase involved.
    let mut reg = ClassRegistry::new();
    let listener = reg
        .define("Listener")
        .field_str("last_event")
        .field_int("events")
        .remote()
        .register();
    let mut session = Session::builder(reg.snapshot())
        .serve(
            "notifier",
            Box::new(FnService::new(|_m, args, heap| {
                let l = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("listener"))?;
                let n = heap.get_field(l, "events")?.as_int().unwrap_or(0);
                heap.set_field(l, "last_event", Value::Str("job-done".into()))?;
                heap.set_field(l, "events", Value::Int(n + 1))?;
                Ok(Value::Null)
            })),
        )
        .build();
    let l = session
        .heap()
        .alloc(listener, vec![Value::Null, Value::Int(0)])
        .unwrap();
    let (_, stats) = session
        .call_with_stats("notifier", "notify", &[Value::Ref(l)], CallOptions::auto())
        .unwrap();
    assert!(
        stats.callbacks_served >= 3,
        "writes crossed back mid-call: {stats:?}"
    );
    let heap = session.heap();
    assert_eq!(
        heap.get_field(l, "last_event").unwrap(),
        Value::Str("job-done".into())
    );
    assert_eq!(heap.get_field(l, "events").unwrap(), Value::Int(1));
}

#[test]
fn stub_passed_back_as_argument_resolves_to_the_original_server_object() {
    // The client passes a stub BACK to the server inside an ordinary
    // (copy-mode) call: on the wire it travels as a remote reference,
    // and the server resolves it to its own original object — RMI's
    // round-tripping of remote parameters.
    let mut reg = ClassRegistry::new();
    let cell = reg.define("Cell").field_long("v").remote().register();
    let mut session = Session::builder(reg.snapshot())
        .serve(
            "svc",
            Box::new(FnService::new(move |method, args, heap| match method {
                "make" => Ok(Value::Ref(heap.alloc_raw(cell, vec![Value::Long(7)])?)),
                "read_back" => {
                    // The argument must be the server's ORIGINAL object,
                    // directly readable (no stub indirection here).
                    let obj = args[0].as_ref_id().ok_or_else(|| NrmiError::app("ref"))?;
                    heap.get_field(obj, "v").map_err(NrmiError::from)
                }
                other => Err(NrmiError::app(format!("no method {other}"))),
            })),
        )
        .build();
    let stub = session
        .call("svc", "make", &[])
        .unwrap()
        .as_ref_id()
        .unwrap();
    assert!(session.heap().stub_key(stub).unwrap().is_some());
    let v = session
        .call("svc", "read_back", &[Value::Ref(stub)])
        .unwrap();
    assert_eq!(
        v,
        Value::Long(7),
        "server resolved its own export, not a copy"
    );
}

#[test]
fn call_on_non_stub_is_rejected() {
    let (mut session, statement) = build_session();
    let local = session
        .heap()
        .alloc(statement, vec![Value::Long(0), Value::Null])
        .unwrap();
    let err = session.call_on(local, "balance", &[]).unwrap_err();
    assert!(matches!(err, NrmiError::InvalidArgument(_)), "{err}");
}

#[test]
fn call_on_class_without_behavior_is_a_remote_error() {
    // Export an object whose class has no bound behavior: the server
    // reports it like a missing service.
    let mut reg = ClassRegistry::new();
    let widget = reg.define("Widget").remote().register();
    let mut session = Session::builder(reg.snapshot())
        .serve(
            "maker",
            Box::new(FnService::new(move |_m, _a, heap| {
                Ok(Value::Ref(heap.alloc_raw(widget, vec![])?))
            })),
        )
        .build();
    let stub = session
        .call("maker", "make", &[])
        .unwrap()
        .as_ref_id()
        .unwrap();
    let err = session.call_on(stub, "spin", &[]).unwrap_err();
    assert!(err.to_string().contains("Widget"), "{err}");
}

#[test]
fn delta_mode_falls_back_to_full_reply_when_server_links_a_stub() {
    // The remote method links a REMOTE-marked (server-owned) object into
    // the caller's restorable graph. The delta encoder cannot express
    // that; the server must transparently fall back to the annotated
    // full reply, and the call still restores correctly.
    let mut reg = ClassRegistry::new();
    let printer = reg.define("Printer").field_str("name").remote().register();
    let holder = reg
        .define("Holder")
        .field_ref("device")
        .restorable()
        .register();
    let mut session = Session::builder(reg.snapshot())
        .serve(
            "svc",
            Box::new(FnService::new(move |_m, args, heap| {
                let h = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("holder"))?;
                let dev = heap.alloc_raw(printer, vec![Value::Str("lp0".into())])?;
                heap.set_field(h, "device", Value::Ref(dev))?;
                Ok(Value::Null)
            })),
        )
        .build();
    let h = session.heap().alloc(holder, vec![Value::Null]).unwrap();
    session
        .call_with(
            "svc",
            "attach",
            &[Value::Ref(h)],
            CallOptions::copy_restore_delta(),
        )
        .expect("delta call with stub-bearing reply must fall back, not fail");
    // The caller's holder now references a stub for the server printer.
    let dev = session
        .heap()
        .get_ref(h, "device")
        .unwrap()
        .expect("device attached");
    assert!(
        session.heap().stub_key(dev).unwrap().is_some(),
        "device is a remote stub"
    );
}

#[test]
fn released_stub_cannot_be_called() {
    let (mut session, _) = build_session();
    let acct = session
        .call("bank", "open_account", &[Value::Str("gone".into())])
        .unwrap()
        .as_ref_id()
        .unwrap();
    session.release_stub(acct).unwrap();
    // The stub object is freed locally; calling on it is a heap error.
    assert!(session.call_on(acct, "balance", &[]).is_err());
}

#[test]
fn dropped_factory_products_are_collected_but_live_ones_survive() {
    let (mut session, _) = build_session();
    let keep = session
        .call("bank", "open_account", &[Value::Str("keep".into())])
        .unwrap()
        .as_ref_id()
        .unwrap();
    for i in 0..5 {
        let _ = session
            .call("bank", "open_account", &[Value::Str(format!("tmp{i}"))])
            .unwrap();
    }
    let (_, cleans) = session.collect_garbage(&[keep]).unwrap();
    assert_eq!(cleans, 5, "five unreferenced accounts released");
    // The kept account still works.
    assert_eq!(
        session
            .call_on_with(keep, "balance", &[], CallOptions::forced(PassMode::Copy))
            .unwrap(),
        Value::Long(0)
    );
}
