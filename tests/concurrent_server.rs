//! Multi-client serving: several TCP clients hitting one shared server
//! concurrently (§4.1: "servers can always be multi-threaded and
//! accept requests from multiple client machines without sacrificing
//! network transparency").

use std::thread;

use nrmi::core::{serve_tcp_concurrent, FnService, NrmiError, ServerNode, ServerPool, Session};
use nrmi::heap::tree::{self};
use nrmi::heap::{ClassRegistry, SharedRegistry, Value};
use nrmi::transport::{MachineSpec, TcpListenerTransport};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = tree::register_tree_classes(&mut reg);
    reg.snapshot()
}

#[test]
fn concurrent_clients_share_server_state() {
    const CLIENTS: usize = 4;
    const CALLS_PER_CLIENT: i32 = 25;

    let registry = registry();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
    let mut total = 0i32;
    server.bind(
        "accumulator",
        Box::new(FnService::new(move |_m, args, _h| {
            total += args[0].as_int().unwrap_or(0);
            Ok(Value::Int(total))
        })),
    );
    // No connection count and no dummy connection: the pool accepts
    // until `shutdown()` unblocks its accept loop.
    let handle = ServerPool::new().serve(server, listener);

    let mut client_threads = Vec::new();
    for c in 0..CLIENTS {
        let registry = registry.clone();
        client_threads.push(thread::spawn(move || {
            let mut client = Session::connect_tcp(registry, addr).expect("connect");
            for i in 0..CALLS_PER_CLIENT {
                let ret = client
                    .call("accumulator", "add", &[Value::Int(1)])
                    .expect("call");
                // The running total is monotone and at least our own
                // contribution so far.
                assert!(ret.as_int().unwrap() > i, "client {c}");
            }
            client.close().expect("close");
        }));
    }
    for t in client_threads {
        t.join().expect("client thread");
    }
    // All contributions arrived exactly once: a fresh connection reads
    // the final total with an add(0) and it must be exact — neither a
    // lost increment nor a double-counted one.
    let mut auditor = Session::connect_tcp(registry, addr).expect("connect auditor");
    let total = auditor
        .call("accumulator", "add", &[Value::Int(0)])
        .expect("audit call");
    assert_eq!(
        total.as_int().unwrap(),
        CLIENTS as i32 * CALLS_PER_CLIENT,
        "every increment must be applied exactly once"
    );
    auditor.close().expect("close auditor");
    let server = handle.shutdown().expect("shutdown");
    assert!(server.is_bound("accumulator"), "binding survives the pool");
}

#[test]
fn concurrent_copy_restore_calls_do_not_interfere() {
    const CLIENTS: usize = 3;
    let registry = registry();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let server_registry = registry.clone();
    let server_thread = thread::spawn(move || {
        let mut server = ServerNode::new(server_registry, MachineSpec::fast());
        server.bind(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                tree::run_foo(heap, root)?;
                Ok(Value::Null)
            })),
        );
        serve_tcp_concurrent(server, listener, CLIENTS).expect("serve")
    });

    let mut client_threads = Vec::new();
    for _ in 0..CLIENTS {
        let registry = registry.clone();
        client_threads.push(thread::spawn(move || {
            let mut client = Session::connect_tcp(registry, addr).expect("connect");
            let classes = tree::TreeClasses {
                tree: client.heap().registry_handle().by_name("Tree").unwrap(),
            };
            // Each client runs the running example several times on
            // fresh trees; every restore must be exact despite the
            // interleaving on the server.
            for _ in 0..5 {
                let ex = tree::build_running_example(client.heap(), &classes).unwrap();
                client
                    .call("svc", "foo", &[Value::Ref(ex.root)])
                    .expect("call");
                let violations = tree::figure2_violations(client.heap(), &ex).unwrap();
                assert!(violations.is_empty(), "{violations:?}");
            }
            client.close().expect("close");
        }));
    }
    for t in client_threads {
        t.join().expect("client thread");
    }
    let server = server_thread.join().expect("server thread");
    // Call copies live in per-connection heaps and are reclaimed when
    // the connection ends — the shared node no longer accumulates them.
    assert_eq!(
        server.state.heap.live_count(),
        0,
        "call copies are confined to connection heaps and freed on disconnect"
    );
}
