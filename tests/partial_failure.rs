//! Partial failure: the paper's §6.2 stance, under fault injection.
//!
//! "Approaches that hide the fact that a network is present have often
//! been criticized ... Just like RMI, NRMI remote methods throw remote
//! exceptions that the programmer is responsible for catching." These
//! tests inject deterministic transport faults and verify that (a) the
//! failure surfaces as an error, and (b) the caller's heap is never left
//! half-restored — a failed copy-restore call restores *nothing*.

use std::thread;
use std::time::Duration;

use nrmi::core::{
    client_invoke, serve_connection, CallOptions, ClientNode, FnService, NrmiError, PassMode,
    ServerNode,
};
use nrmi::heap::tree::{self};
use nrmi::heap::{ClassRegistry, HeapAccess, SharedRegistry, Value};
use nrmi::transport::{channel_pair, FaultPlan, FaultyTransport, LinkSpec, MachineSpec, Transport};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = tree::register_tree_classes(&mut reg);
    reg.snapshot()
}

/// Runs one faulty call: returns the call result and the client node for
/// post-mortem heap inspection. The server thread dies with the channel.
fn faulty_call(
    plan: FaultPlan,
    opts: CallOptions,
) -> (
    Result<Value, NrmiError>,
    ClientNode,
    nrmi::heap::tree::RunningExample,
) {
    let registry = registry();
    let (client_t, mut server_t) = channel_pair(None, LinkSpec::free());
    let server_registry = registry.clone();
    let _server = thread::spawn(move || {
        let mut server = ServerNode::new(server_registry, MachineSpec::fast());
        server.bind(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                tree::run_foo(heap, root)?;
                Ok(Value::Null)
            })),
        );
        let _ = serve_connection(&mut server, &mut server_t);
    });

    let mut client = ClientNode::new(registry, MachineSpec::fast());
    let classes = tree::TreeClasses {
        tree: client.state.heap.registry_handle().by_name("Tree").unwrap(),
    };
    let ex = tree::build_running_example(&mut client.state.heap, &classes).unwrap();
    let mut transport = FaultyTransport::new(client_t, plan);
    let result = client_invoke(
        &mut client,
        &mut transport,
        "svc",
        "foo",
        &[Value::Ref(ex.root)],
        opts,
    );
    (result, client, ex)
}

fn assert_heap_untouched(client: &mut ClientNode, ex: &tree::RunningExample) {
    let heap = &mut client.state.heap;
    assert_eq!(heap.get_field(ex.root, "data").unwrap(), Value::Int(5));
    assert_eq!(
        heap.get_field(ex.alias1_target, "data").unwrap(),
        Value::Int(3)
    );
    assert_eq!(
        heap.get_field(ex.alias2_target, "data").unwrap(),
        Value::Int(7)
    );
    assert_eq!(heap.get_ref(ex.root, "left").unwrap(), Some(ex.left));
    assert_eq!(heap.get_ref(ex.root, "right").unwrap(), Some(ex.right));
}

#[test]
fn disconnect_before_request_surfaces_and_leaves_heap_untouched() {
    let (result, mut client, ex) = faulty_call(
        FaultPlan::disconnect_on_send(0),
        CallOptions::forced(PassMode::CopyRestore),
    );
    let err = result.unwrap_err();
    assert!(matches!(err, NrmiError::Transport(_)), "{err}");
    assert_heap_untouched(&mut client, &ex);
}

#[test]
fn disconnect_while_awaiting_reply_surfaces_and_leaves_heap_untouched() {
    // The request reaches the server (which mutates ITS copy), but the
    // client's receive fails: no restore may happen.
    let plan = FaultPlan {
        sends: Vec::new(),
        recvs: vec![nrmi::transport::Fault::Disconnect],
    };
    let (result, mut client, ex) = faulty_call(plan, CallOptions::forced(PassMode::CopyRestore));
    let err = result.unwrap_err();
    assert!(matches!(err, NrmiError::Transport(_)), "{err}");
    assert_heap_untouched(&mut client, &ex);
}

#[test]
fn corrupted_reply_is_rejected_not_half_applied() {
    let (result, mut client, ex) = faulty_call(
        FaultPlan::corrupt_on_recv(0),
        CallOptions::forced(PassMode::CopyRestore),
    );
    assert!(result.is_err(), "corrupted reply must fail the call");
    assert_heap_untouched(&mut client, &ex);
}

#[test]
fn remote_ref_disconnect_mid_call_surfaces_as_remote_exception() {
    // Remote-pointer mode: the SERVER's proxy dies when the callback
    // channel breaks; the client sees the failed call (or the broken
    // transport, depending on which side observes it first).
    let plan = FaultPlan {
        sends: vec![
            nrmi::transport::Fault::Pass,       // the CallRequest
            nrmi::transport::Fault::Disconnect, // first callback reply
        ],
        recvs: Vec::new(),
    };
    let (result, _client, _ex) = faulty_call(plan, CallOptions::forced(PassMode::RemoteRef));
    assert!(result.is_err(), "mid-call failure must surface");
}

#[test]
fn call_timeout_fires_on_a_slow_server_and_leaves_heap_untouched() {
    use nrmi::core::{CallOptions as CO, Session};
    let registry = registry();
    let mut session = Session::builder(registry)
        .serve(
            "sleepy",
            Box::new(FnService::new(|_m, args, heap| {
                let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                thread::sleep(Duration::from_millis(250));
                tree::run_foo(heap, root)?;
                Ok(Value::Null)
            })),
        )
        .build();
    let classes = tree::TreeClasses {
        tree: session.heap().registry_handle().by_name("Tree").unwrap(),
    };
    let ex = tree::build_running_example(session.heap(), &classes).unwrap();
    let err = session
        .call_with(
            "sleepy",
            "foo",
            &[Value::Ref(ex.root)],
            CO::forced(PassMode::CopyRestore).with_timeout(Duration::from_millis(30)),
        )
        .unwrap_err();
    assert!(matches!(err, NrmiError::Transport(_)), "{err}");
    // No partial restore:
    assert_eq!(
        session.heap().get_field(ex.alias1_target, "data").unwrap(),
        Value::Int(3)
    );
}

#[test]
fn classpath_skew_fails_cleanly() {
    // Client and server built against DIFFERENT registries (the Java
    // analogue: mismatched classpaths). Decoding the request on the
    // server hits an unknown class id; the failure travels back as a
    // remote exception instead of corrupting anything.
    let mut client_reg = ClassRegistry::new();
    let _ = tree::register_tree_classes(&mut client_reg);
    let extra = client_reg
        .define("OnlyOnClient")
        .field_int("x")
        .restorable()
        .register();

    let server_reg = ClassRegistry::new(); // knows nothing but the stub class

    let (client_t, mut server_t) = channel_pair(None, LinkSpec::free());
    let server_registry = server_reg.snapshot();
    let server = thread::spawn(move || {
        let mut server = ServerNode::new(server_registry, MachineSpec::fast());
        server.bind(
            "svc",
            Box::new(FnService::new(|_m, _a, _h| Ok(Value::Null))),
        );
        let _ = serve_connection(&mut server, &mut server_t);
    });

    let mut client = ClientNode::new(client_reg.snapshot(), MachineSpec::fast());
    let obj = client.state.heap.alloc(extra, vec![Value::Int(1)]).unwrap();
    let mut transport = FaultyTransport::new(client_t, FaultPlan::none());
    let err = client_invoke(
        &mut client,
        &mut transport,
        "svc",
        "run",
        &[Value::Ref(obj)],
        CallOptions::forced(PassMode::CopyRestore),
    )
    .unwrap_err();
    assert!(matches!(err, NrmiError::Remote(_)), "{err}");
    assert!(err.to_string().contains("unknown class"), "{err}");
    // Caller state untouched.
    assert_eq!(
        client.state.heap.get_field(obj, "x").unwrap(),
        Value::Int(1)
    );
    drop(transport);
    let _ = server.join();
}

// ---------------------------------------------------------------------------
// The retry matrix: the same lost-message faults, but through the
// at-most-once reliability layer — instead of surfacing an error, the
// call must complete with its effect applied exactly once.
// ---------------------------------------------------------------------------

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nrmi::core::{ReliableTransport, RetryPolicy};

/// Runs `calls` reliable calls against a counting service with `plan`
/// injected under the retry layer. Returns the per-call results, the
/// number of times the service body actually executed, and the client's
/// retry stats.
fn retried_calls(
    plan: FaultPlan,
    calls: usize,
) -> (Vec<Result<Value, NrmiError>>, usize, nrmi::core::RetryStats) {
    let registry = registry();
    let (client_t, mut server_t) = channel_pair(None, LinkSpec::free());
    let executions = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&executions);
    let server_registry = registry.clone();
    let server = thread::spawn(move || {
        let mut node = ServerNode::new(server_registry, MachineSpec::fast());
        node.bind(
            "count",
            Box::new(FnService::new(move |_m, args, _h| {
                let n = counter.fetch_add(1, Ordering::SeqCst);
                let _ = args;
                Ok(Value::Int(n as i32 + 1))
            })),
        );
        let _ = serve_connection(&mut node, &mut server_t);
    });

    let mut client = ClientNode::new(registry, MachineSpec::fast());
    let policy = RetryPolicy {
        deadline: Duration::from_secs(5),
        attempt_timeout: Duration::from_millis(40),
        max_attempts: 6,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        jitter: false,
    };
    let mut transport = ReliableTransport::new(FaultyTransport::new(client_t, plan), policy);
    let results = (0..calls)
        .map(|i| {
            client_invoke(
                &mut client,
                &mut transport,
                "count",
                "tick",
                &[Value::Int(i as i32)],
                CallOptions::forced(PassMode::Copy),
            )
        })
        .collect();
    let stats = transport.stats();
    let _ = transport.send(&nrmi::transport::Frame::Shutdown);
    drop(transport);
    server.join().expect("server thread");
    (results, executions.load(Ordering::SeqCst), stats)
}

#[test]
fn lost_reply_is_retried_and_executes_exactly_once() {
    // The reply to the first call vanishes; the retransmission must be
    // answered from the server's reply cache, not re-executed.
    let (results, executions, stats) = retried_calls(FaultPlan::drop_on_recv(0), 2);
    assert_eq!(results[0].as_ref().unwrap(), &Value::Int(1));
    assert_eq!(results[1].as_ref().unwrap(), &Value::Int(2));
    assert_eq!(executions, 2, "each call executed exactly once");
    assert!(stats.retries >= 1, "the lost reply forced a retransmission");
    assert!(stats.replays >= 1, "the retransmission hit the reply cache");
}

#[test]
fn lost_request_is_retried_and_executes_exactly_once() {
    // The first request never reaches the server; the retransmission is
    // the first copy it sees, so it executes fresh — once.
    let (results, executions, stats) = retried_calls(FaultPlan::drop_on_send(0), 2);
    assert_eq!(results[0].as_ref().unwrap(), &Value::Int(1));
    assert_eq!(results[1].as_ref().unwrap(), &Value::Int(2));
    assert_eq!(executions, 2, "each call executed exactly once");
    assert!(
        stats.retries >= 1,
        "the lost request forced a retransmission"
    );
    assert_eq!(
        stats.replays, 0,
        "nothing executed twice, nothing to replay"
    );
}

#[test]
fn duplicated_request_is_suppressed_and_executes_exactly_once() {
    // The first request arrives twice; the second copy must replay the
    // cached reply. The stale extra reply is discarded by the client.
    let (results, executions, stats) = retried_calls(FaultPlan::duplicate_on_send(0), 3);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.as_ref().unwrap(), &Value::Int(i as i32 + 1));
    }
    assert_eq!(executions, 3, "the duplicate did not re-execute");
    assert!(
        stats.stale_discarded >= 1,
        "the duplicate's extra reply was discarded as stale"
    );
}

#[test]
fn deadline_exceeded_when_every_attempt_is_lost() {
    // Every send the client makes vanishes: the call must fail with a
    // deadline error after its attempt budget — and must not hang.
    let plan = FaultPlan {
        sends: vec![nrmi::transport::Fault::DropFrame; 8],
        recvs: Vec::new(),
    };
    let started = std::time::Instant::now();
    let (results, executions, stats) = retried_calls(plan, 1);
    let err = results[0].as_ref().unwrap_err();
    assert!(
        matches!(
            err,
            NrmiError::Transport(nrmi::transport::TransportError::DeadlineExceeded { .. })
        ),
        "{err}"
    );
    assert_eq!(executions, 0, "the server never saw the call");
    assert_eq!(stats.deadline_failures, 1);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the client must not hang past its deadline"
    );
}

#[test]
fn timeout_is_observable_when_a_reply_is_dropped() {
    // A dropped CallRequest means no reply ever arrives; a bounded recv
    // makes that observable instead of hanging forever.
    let registry = registry();
    let (client_t, _server_t_unserved) = channel_pair(None, LinkSpec::free());
    let mut transport = FaultyTransport::new(client_t, FaultPlan::none());
    transport
        .send(&nrmi::transport::Frame::Lookup { name: "x".into() })
        .unwrap();
    let err = transport
        .recv_timeout(Duration::from_millis(30))
        .unwrap_err();
    assert!(
        matches!(err, nrmi::transport::TransportError::Timeout),
        "{err:?}"
    );
    let _ = registry;
}
