//! Determinism guarantees: the simulated evaluation is exactly
//! reproducible, run to run and machine to machine — the property that
//! makes the regenerated tables meaningful.

use nrmi::core::{CallOptions, JdkGeneration, NrmiFlavor, PassMode, RuntimeProfile, Session};
use nrmi::heap::Value;
use nrmi::transport::{LinkSpec, MachineSpec, SimEnv};
use nrmi_bench::workload::{bench_classes, build_workload, scenario_service, Scenario};

fn measure_once(mode: PassMode) -> (f64, u64) {
    let classes = bench_classes();
    let env = SimEnv::new();
    let svc = scenario_service(
        &classes,
        Scenario::III,
        99,
        Some(env.clone()),
        MachineSpec::fast(),
        JdkGeneration::Jdk14,
    );
    let mut session = Session::builder(classes.registry.clone())
        .serve("bench", Box::new(svc))
        .simulated(
            env.clone(),
            LinkSpec::lan_100mbps(),
            MachineSpec::slow(),
            MachineSpec::fast(),
            RuntimeProfile {
                jdk: JdkGeneration::Jdk14,
                flavor: NrmiFlavor::Optimized,
            },
        )
        .build();
    let w = build_workload(session.heap(), &classes, Scenario::III, 128, 99).unwrap();
    session
        .call_with(
            "bench",
            "mutate",
            &[Value::Ref(w.root)],
            CallOptions::forced(mode),
        )
        .unwrap();
    let report = env.report();
    (report.total_us(), report.bytes_sent)
}

#[test]
fn simulated_measurements_are_bit_identical_across_runs() {
    for mode in [
        PassMode::Copy,
        PassMode::CopyRestore,
        PassMode::RemoteRef,
        PassMode::DceRpc,
    ] {
        let (us1, bytes1) = measure_once(mode);
        let (us2, bytes2) = measure_once(mode);
        assert_eq!(bytes1, bytes2, "{mode:?}: byte counts must be identical");
        assert!(
            (us1 - us2).abs() < f64::EPSILON * us1.abs(),
            "{mode:?}: simulated time must be identical: {us1} vs {us2}"
        );
        assert!(us1 > 0.0 && bytes1 > 0, "{mode:?}: something was measured");
    }
}

#[test]
fn workloads_and_mutations_are_identical_across_heaps() {
    // Two independent builds of the same seeded workload, mutated by two
    // independent server runs, end isomorphic — the property the linear
    // map's position matching relies on.
    let classes = bench_classes();
    let build_and_mutate = || {
        let mut heap = nrmi::heap::Heap::new(classes.registry.clone());
        let w = build_workload(&mut heap, &classes, Scenario::III, 96, 5).unwrap();
        nrmi_bench::workload::mutate_tree(&mut heap, w.root, Scenario::III, 5).unwrap();
        (heap, w)
    };
    let (h1, w1) = build_and_mutate();
    let (h2, w2) = build_and_mutate();
    let mut roots1 = vec![w1.root];
    roots1.extend(&w1.aliases);
    let mut roots2 = vec![w2.root];
    roots2.extend(&w2.aliases);
    assert!(nrmi::heap::graph::isomorphic_multi(&h1, &roots1, &h2, &roots2).unwrap());
}
