//! At-most-once delivery under chaos: for ANY drop/duplicate/delay/
//! disconnect schedule, every call's observable server-side effect
//! happens exactly once, or the client gets a deadline error — never
//! twice, and never a hang past the deadline.
//!
//! The oracle is arithmetic: call `i` adds `3^i` to a server-side
//! accumulator, so the final total is a base-3 numeral whose `i`-th
//! digit counts how many times call `i` executed. Any digit ≥ 2 is a
//! double execution — the failure mode the reply cache exists to
//! prevent. A digit of 1 under a deadline error is legal ("executed,
//! reply lost"); a digit of 0 under success is the opposite corruption
//! (a lost effect) and equally fatal.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use nrmi::core::{
    client_invoke, client_invoke_warm_with_stats, client_marshal_call, serve_connection,
    serve_connection_pooled, serve_tcp_concurrent, CallOptions, ClientNode, FnService, NrmiError,
    PassMode, PipelinedCall, ReliableTransport, ReplyCache, ReplyDecision, RetryPolicy, ServerNode,
    Session, SharedServer, REPLY_EVICTED,
};
use nrmi::heap::{ClassRegistry, HeapAccess, SharedRegistry, Value};
use nrmi::transport::{
    channel_pair, Fault, FaultPlan, FaultyTransport, Frame, LinkSpec, MachineSpec,
    TcpListenerTransport, TcpTransport, Transport, TransportError,
};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    reg.define("Cell").field_int("data").restorable().register();
    reg.snapshot()
}

/// Binds the digit accumulator: `tick` adds `3^i` for call index `i`,
/// `read` returns the accumulator untouched.
fn bind_digit_service(node: &mut ServerNode) {
    let mut total = 0i64;
    node.bind(
        "digits",
        Box::new(FnService::new(move |method, args, _h| {
            if method == "read" {
                return Ok(Value::Long(total));
            }
            let i = args[0].as_int().unwrap_or(0) as u32;
            total += 3i64.pow(i);
            Ok(Value::Long(total))
        })),
    );
}

fn test_policy() -> RetryPolicy {
    RetryPolicy {
        deadline: Duration::from_secs(3),
        attempt_timeout: Duration::from_millis(60),
        max_attempts: 8,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        jitter: false,
    }
}

fn chaos_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        5 => Just(Fault::Pass),
        2 => Just(Fault::DropFrame),
        2 => Just(Fault::Duplicate),
        1 => Just(Fault::Disconnect),
        1 => (1u64..30).prop_map(|ms| Fault::Delay(Duration::from_millis(ms))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_effect_happens_exactly_once_or_the_call_deadline_errors(
        sends in proptest::collection::vec(chaos_fault(), 0..8),
        recvs in proptest::collection::vec(chaos_fault(), 0..8),
    ) {
        const CALLS: usize = 6;
        let registry = registry();
        let (client_t, mut server_t) = channel_pair(None, LinkSpec::free());
        let server_registry = registry.clone();
        let server = thread::spawn(move || {
            let mut node = ServerNode::new(server_registry, MachineSpec::fast());
            bind_digit_service(&mut node);
            let _ = serve_connection(&mut node, &mut server_t);
        });

        let mut client = ClientNode::new(registry, MachineSpec::fast());
        let policy = test_policy();
        let faulty = FaultyTransport::new(client_t, FaultPlan { sends, recvs });
        let mut transport = ReliableTransport::new(faulty, policy);

        let mut succeeded = [false; CALLS];
        for (i, ok) in succeeded.iter_mut().enumerate() {
            let started = Instant::now();
            let result = client_invoke(
                &mut client,
                &mut transport,
                "digits",
                "tick",
                &[Value::Int(i as i32)],
                CallOptions::forced(PassMode::Copy),
            );
            prop_assert!(
                started.elapsed() < policy.deadline + Duration::from_secs(2),
                "call {i} hung past its deadline: {:?}",
                started.elapsed()
            );
            match result {
                Ok(_) => *ok = true,
                Err(NrmiError::Transport(TransportError::DeadlineExceeded { .. })) => {}
                Err(other) => prop_assert!(
                    false,
                    "call {i}: the only legal failure is a deadline error, got {other}"
                ),
            }
        }

        // The schedules are exhausted by now (≤ 8 faults a side); the
        // audit read runs clean.
        let total = client_invoke(
            &mut client,
            &mut transport,
            "digits",
            "read",
            &[Value::Int(-1)],
            CallOptions::forced(PassMode::Copy),
        )
        .expect("audit read")
        .as_long()
        .expect("long total");

        for (i, &ok) in succeeded.iter().enumerate() {
            let digit = (total / 3i64.pow(i as u32)) % 3;
            prop_assert!(
                digit <= 1,
                "call {i} executed {digit} times (total {total}): at-most-once violated"
            );
            if ok {
                prop_assert_eq!(
                    digit, 1,
                    "call {} reported success but its effect is missing (total {})", i, total
                );
            }
        }
        prop_assert!(total < 3i64.pow(CALLS as u32), "effects beyond the last call");

        let _ = transport.send(&Frame::Shutdown);
        drop(transport);
        server.join().expect("server thread");
    }
}

#[test]
fn tcp_reconnect_retransmits_and_executes_exactly_once() {
    let registry = registry();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server_registry = registry.clone();
    let server = thread::spawn(move || {
        let mut node = ServerNode::new(server_registry, MachineSpec::fast());
        bind_digit_service(&mut node);
        serve_tcp_concurrent(node, listener, 2).expect("serve")
    });

    let mut client = ClientNode::new(registry, MachineSpec::fast());
    let transport = TcpTransport::connect(addr).expect("connect");
    let mut transport = ReliableTransport::new(transport, test_policy());

    let call = |client: &mut ClientNode,
                transport: &mut ReliableTransport<TcpTransport>,
                i: i32|
     -> Result<Value, NrmiError> {
        client_invoke(
            client,
            transport,
            "digits",
            "tick",
            &[Value::Int(i)],
            CallOptions::forced(PassMode::Copy),
        )
    };

    assert_eq!(
        call(&mut client, &mut transport, 0).unwrap(),
        Value::Long(1)
    );

    // An orderly Shutdown ends connection 1 on the server; the next
    // call's request lands on a dead socket, and the client must
    // re-dial and retransmit — landing on connection 2, where the
    // shared reply cache still guards against double execution.
    transport.send(&Frame::Shutdown).expect("shutdown conn 1");
    assert_eq!(
        call(&mut client, &mut transport, 1).unwrap(),
        Value::Long(4),
        "3^0 + 3^1: both calls executed exactly once across the reconnect"
    );
    assert!(
        transport.stats().reconnects >= 1,
        "the second call crossed a reconnect: {:?}",
        transport.stats()
    );

    // Under `--features lockcheck`, every scenario above doubles as a
    // lock-discipline audit of the real server (DESIGN.md §3i).
    #[cfg(feature = "lockcheck")]
    nrmi::check::assert_discipline_clean("reliability: tcp reconnect retransmit");
    transport.send(&Frame::Shutdown).expect("shutdown conn 2");
    drop(transport);
    server.join().expect("server thread");
}

#[test]
fn warm_sessions_fall_back_to_a_cold_reseed_across_reconnect() {
    // Warm sessions cache the argument graph per CONNECTION; a reconnect
    // loses them. The client must recover by falling back to a cold
    // (seed) call that rebuilds the server cache — transparently, with
    // the same answer a never-disconnected session would give.
    let registry = registry();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server_registry = registry.clone();
    let server = thread::spawn(move || {
        let mut node = ServerNode::new(server_registry, MachineSpec::fast());
        node.bind(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let cell = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("want a cell"))?;
                let d = heap.get_field(cell, "data")?.as_int().unwrap_or(0);
                heap.set_field(cell, "data", Value::Int(3 * d + 1))?;
                Ok(Value::Long(i64::from(d)))
            })),
        );
        serve_tcp_concurrent(node, listener, 2).expect("serve")
    });

    let mut client = ClientNode::new(registry.clone(), MachineSpec::fast());
    let cell_class = registry.by_name("Cell").expect("registered");
    let cell = client
        .state
        .heap
        .alloc(cell_class, vec![Value::Int(1)])
        .expect("alloc");
    let transport = TcpTransport::connect(addr).expect("connect");
    let mut transport = ReliableTransport::new(transport, test_policy());

    // Seed the warm session on connection 1: returns the old value 1,
    // restores 4 into the client's cell.
    let (v1, _) = client_invoke_warm_with_stats(
        &mut client,
        &mut transport,
        "svc",
        "bump",
        &[Value::Ref(cell)],
    )
    .expect("warm call 1");
    assert_eq!(v1, Value::Long(1));
    assert_eq!(
        client.state.heap.get_field(cell, "data").unwrap(),
        Value::Int(4)
    );

    // Kill connection 1. The client's warm cache now names a session
    // generation the server lost with the connection.
    transport.send(&Frame::Shutdown).expect("shutdown conn 1");

    // The next warm call reconnects, gets CacheMiss for the orphaned
    // session, and reseeds — the observable result is exactly one more
    // application of the mutation.
    let (v2, _) = client_invoke_warm_with_stats(
        &mut client,
        &mut transport,
        "svc",
        "bump",
        &[Value::Ref(cell)],
    )
    .expect("warm call 2");
    assert_eq!(v2, Value::Long(4), "the old value, applied exactly once");
    assert_eq!(
        client.state.heap.get_field(cell, "data").unwrap(),
        Value::Int(13),
        "3*4 + 1, not a double application"
    );
    assert!(transport.stats().reconnects >= 1, "{:?}", transport.stats());

    transport.send(&Frame::Shutdown).expect("shutdown conn 2");
    drop(transport);
    server.join().expect("server thread");
}

#[test]
fn evicted_reply_racing_a_pipelined_retransmit_reports_not_reexecutes() {
    // Two calls pipelined on one connection, both replies lost, and a
    // reply cache so tight that storing the second reply evicts the
    // first. The retransmissions must resolve deterministically: the
    // evicted call gets the definite REPLY_EVICTED error, the cached
    // call gets its stored reply replayed — and neither executes twice.
    // The test thread plays the server inline over a channel pair, so
    // every interleaving step is explicit.
    let registry = registry();
    let (client_t, mut server_t) = channel_pair(None, LinkSpec::free());
    let mut client = ClientNode::new(registry, MachineSpec::fast());
    let mut transport = ReliableTransport::new(client_t, test_policy());

    let marshal = |client: &mut ClientNode, i: i32| {
        let (frame, _pending) = client_marshal_call(
            client,
            "digits",
            "tick",
            &[Value::Int(i)],
            CallOptions::forced(PassMode::Copy),
        )
        .expect("marshal");
        frame
    };
    let f0 = marshal(&mut client, 0);
    let f1 = marshal(&mut client, 1);
    let seq0 = transport.send_call(&f0).expect("send 0").expect("tagged");
    let seq1 = transport.send_call(&f1).expect("send 1").expect("tagged");
    assert_eq!(transport.pending_calls(), 2);

    // Server, fresh pass: execute both, store both replies — the 1-byte
    // cap means storing the second evicts the first — and "lose" both
    // replies (send nothing).
    let mut cache = ReplyCache::with_limits(1, 8);
    let mut executions = 0usize;
    for _ in 0..2 {
        let frame = server_t.recv().expect("fresh request");
        let Frame::Tagged { nonce, seq, frame } = frame else {
            panic!("pipelined call escaped the connection untagged: {frame:?}");
        };
        assert!(matches!(*frame, Frame::CallRequest { .. }));
        assert_eq!(cache.begin(nonce, seq), ReplyDecision::Fresh);
        executions += 1;
        cache.store(
            nonce,
            seq,
            &Frame::CallError {
                message: format!("stored-{seq}"),
            },
        );
    }

    // Client: the poll window closes after the attempt timeout, so both
    // calls go back on the wire before it returns.
    assert!(matches!(
        transport.recv_reply_timeout(seq0, Duration::from_millis(200)),
        Err(TransportError::Timeout)
    ));

    // Server, retransmission pass: the duplicates must classify as
    // Evicted/Replay — a Fresh here would be a re-execution.
    let mut answered = std::collections::HashSet::new();
    while answered.len() < 2 {
        let frame = server_t
            .recv_timeout(Duration::from_secs(2))
            .expect("retransmission");
        let Frame::Tagged { nonce, seq, .. } = frame else {
            panic!("expected a tagged retransmission, got {frame:?}");
        };
        let reply = match cache.decision(nonce, seq) {
            ReplyDecision::Evicted => {
                assert_eq!(seq, seq0, "the LRU entry (the first call) was evicted");
                Frame::CallError {
                    message: REPLY_EVICTED.into(),
                }
            }
            ReplyDecision::Replay(cached) => {
                assert_eq!(seq, seq1);
                cached
            }
            other => panic!("retransmission of call {seq} classified {other:?}"),
        };
        if answered.insert(seq) {
            server_t
                .send(&Frame::ReplyCached {
                    nonce,
                    seq,
                    frame: Box::new(reply),
                })
                .expect("send reply");
        }
    }
    assert_eq!(executions, 2, "each call executed exactly once");

    // Client: the evicted call resolves to the definite error, the
    // cached call to its replayed reply — routed by call id, in any
    // collection order.
    match transport.recv_reply(seq0).expect("evicted outcome") {
        Frame::CallError { message } => assert_eq!(message, REPLY_EVICTED),
        other => panic!("evicted call resolved to {other:?}"),
    }
    match transport.recv_reply(seq1).expect("replayed outcome") {
        Frame::CallError { message } => assert_eq!(message, format!("stored-{seq1}")),
        other => panic!("cached call resolved to {other:?}"),
    }
    assert_eq!(transport.pending_calls(), 0);
    assert!(transport.stats().retries >= 2, "{:?}", transport.stats());
}

#[test]
fn pipelined_tcp_batch_overlaps_execution_and_collects_in_issue_order() {
    // End to end over TCP against the pooled serve loop: a slow call
    // issued first and two fast calls issued behind it. The fast calls
    // must execute while the slow one sleeps (their count is read by
    // the slow service as it wakes), which forces the slow reply to be
    // the LAST on the wire — and the client must still deliver it in
    // slot 0, reordered by call id.
    let registry = registry();
    let fast_done = Arc::new(AtomicUsize::new(0));
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mut node = ServerNode::new(registry.clone(), MachineSpec::fast());
    let slow_sees = fast_done.clone();
    node.bind(
        "slow",
        Box::new(FnService::new(move |_m, _args, _h| {
            thread::sleep(Duration::from_millis(150));
            Ok(Value::Int(slow_sees.load(Ordering::SeqCst) as i32))
        })),
    );
    let fast_ticks = fast_done.clone();
    node.bind(
        "fast",
        Box::new(FnService::new(move |_m, args, _h| {
            fast_ticks.fetch_add(1, Ordering::SeqCst);
            Ok(Value::Int(args[0].as_int().unwrap_or(0) + 1))
        })),
    );
    let shared = Arc::new(SharedServer::from_node(node));
    let server = {
        let shared = shared.clone();
        thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            serve_connection_pooled(&shared, &mut conn).expect("serve");
        })
    };

    let mut session =
        Session::connect_tcp_reliable(registry, addr, RetryPolicy::default()).expect("connect");
    let batch = [
        PipelinedCall::new("slow", "probe", vec![Value::Null]),
        PipelinedCall::new("fast", "inc", vec![Value::Int(10)]),
        PipelinedCall::new("fast", "inc", vec![Value::Int(20)]),
    ];
    let results = session.call_pipelined(&batch).expect("pipelined batch");
    assert_eq!(
        results[0].as_ref().expect("slow"),
        &Value::Int(2),
        "both fast calls must have executed while the slow call slept"
    );
    assert_eq!(results[1].as_ref().expect("fast 1"), &Value::Int(11));
    assert_eq!(results[2].as_ref().expect("fast 2"), &Value::Int(21));

    let _ = session.close();
    server.join().expect("server thread");
}

/// A transport whose first connection dies right after the request goes
/// out: `recv` reports `Disconnected` until `reconnect` swaps in the
/// standby connection. This makes the reconnect-mid-execution race
/// deterministic — the retransmission always lands on a second server
/// connection while the first is still executing.
struct SwitchTransport {
    active: TcpTransport,
    standby: Option<TcpTransport>,
}

impl Transport for SwitchTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.active.send(frame)
    }

    fn recv(&mut self) -> Result<Frame, TransportError> {
        if self.standby.is_some() {
            return Err(TransportError::Disconnected);
        }
        self.active.recv()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame, TransportError> {
        if self.standby.is_some() {
            return Err(TransportError::Disconnected);
        }
        self.active.recv_timeout(timeout)
    }

    fn reconnect(&mut self) -> Result<bool, TransportError> {
        match self.standby.take() {
            Some(fresh) => {
                self.active = fresh;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

#[test]
fn duplicate_on_second_connection_mid_execution_runs_once() {
    // A client disconnects after sending a warm SEED call, reconnects,
    // and retransmits the same call id on a new connection while the
    // original execution is still running on the first. The warm path
    // decides and stores under separate lock scopes, so the duplicate
    // must be held off by the reply cache's executing marker — without
    // it, the duplicate reads Fresh and the seed executes twice.
    let registry = registry();
    let executions = Arc::new(AtomicUsize::new(0));
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server_registry = registry.clone();
    let server_executions = executions.clone();
    let server = thread::spawn(move || {
        let mut node = ServerNode::new(server_registry, MachineSpec::fast());
        node.bind(
            "slow",
            Box::new(FnService::new(move |_m, args, heap| {
                // Slow enough that the retransmission arrives while this
                // execution is still in flight.
                thread::sleep(Duration::from_millis(150));
                server_executions.fetch_add(1, Ordering::SeqCst);
                let cell = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("want a cell"))?;
                let d = heap.get_field(cell, "data")?.as_int().unwrap_or(0);
                heap.set_field(cell, "data", Value::Int(d + 1))?;
                Ok(Value::Long(i64::from(d)))
            })),
        );
        serve_tcp_concurrent(node, listener, 2).expect("serve")
    });

    let mut client = ClientNode::new(registry.clone(), MachineSpec::fast());
    let cell_class = registry.by_name("Cell").expect("registered");
    let cell = client
        .state
        .heap
        .alloc(cell_class, vec![Value::Int(0)])
        .expect("alloc");

    let conn1 = TcpTransport::connect(addr).expect("connect 1");
    let conn2 = TcpTransport::connect(addr).expect("connect 2");
    let mut transport = ReliableTransport::new(
        SwitchTransport {
            active: conn1,
            standby: Some(conn2),
        },
        test_policy(),
    );

    let (v, _) = client_invoke_warm_with_stats(
        &mut client,
        &mut transport,
        "slow",
        "bump",
        &[Value::Ref(cell)],
    )
    .expect("warm seed call across the reconnect");
    assert_eq!(v, Value::Long(0));
    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "the seed call executed more than once: duplicate suppression \
         failed across connections"
    );
    assert_eq!(
        client.state.heap.get_field(cell, "data").unwrap(),
        Value::Int(1),
        "the restore must be applied exactly once"
    );
    assert!(transport.stats().reconnects >= 1, "{:?}", transport.stats());
    assert!(transport.stats().retries >= 1, "{:?}", transport.stats());

    // Under `--features lockcheck`, every scenario above doubles as a
    // lock-discipline audit of the real server (DESIGN.md §3i).
    #[cfg(feature = "lockcheck")]
    nrmi::check::assert_discipline_clean("reliability: duplicate across connections");
    transport.send(&Frame::Shutdown).expect("shutdown conn 2");
    drop(transport);
    server.join().expect("server thread");
}
