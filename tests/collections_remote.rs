//! The `RestorableHashMap` pattern (§5.1) end to end: heap-resident
//! collections passed by copy-restore, mutated remotely, restored in
//! place — the paper's canonical API example working over the full
//! middleware stack.

use nrmi::core::{CallOptions, FnService, NrmiError, PassMode, Session};
use nrmi::heap::collections::{collection_classes, register_collections, HList, HMap};
use nrmi::heap::{ClassRegistry, SharedRegistry, Value};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = register_collections(&mut reg);
    reg.snapshot()
}

#[test]
fn restorable_hash_map_mutated_remotely() {
    let mut session = Session::builder(registry())
        .serve(
            "inventory",
            Box::new(FnService::new(|method, args, heap| {
                let classes = collection_classes(heap.registry());
                let map = HMap::from_id(args[0].as_ref_id().unwrap(), classes);
                match method {
                    "restock" => {
                        // Read-modify-write through the heap map.
                        for key in ["widgets", "gadgets"] {
                            let current = map.get(heap, key)?.and_then(|v| v.as_int()).unwrap_or(0);
                            map.put(heap, key, Value::Int(current + 10))?;
                        }
                        map.put(heap, "sprockets", Value::Int(5))?;
                        map.remove(heap, "discontinued")?;
                        Ok(Value::Int(map.len(heap)? as i32))
                    }
                    other => Err(NrmiError::app(format!("no method {other}"))),
                }
            })),
        )
        .build();

    let classes = collection_classes(session.heap().registry_handle());
    let map = HMap::new(session.heap(), classes).unwrap();
    map.put(session.heap(), "widgets", Value::Int(3)).unwrap();
    map.put(session.heap(), "gadgets", Value::Int(0)).unwrap();
    map.put(session.heap(), "discontinued", Value::Int(99))
        .unwrap();

    // HashMap is restorable: the default call semantics restores it.
    let count = session
        .call("inventory", "restock", &[Value::Ref(map.id())])
        .unwrap();
    assert_eq!(count, Value::Int(3));

    // The CALLER's map object was updated in place:
    assert_eq!(
        map.get(session.heap(), "widgets").unwrap(),
        Some(Value::Int(13))
    );
    assert_eq!(
        map.get(session.heap(), "gadgets").unwrap(),
        Some(Value::Int(10))
    );
    assert_eq!(
        map.get(session.heap(), "sprockets").unwrap(),
        Some(Value::Int(5))
    );
    assert_eq!(map.get(session.heap(), "discontinued").unwrap(), None);
    assert_eq!(map.len(session.heap()).unwrap(), 3);
}

#[test]
fn map_identity_preserved_when_aliased_from_a_list() {
    // A list and a variable both alias the same map; a remote call
    // mutating the map is visible through both (the multiple-indexing
    // story with library collections).
    let mut session = Session::builder(registry())
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let classes = collection_classes(heap.registry());
                let map = HMap::from_id(args[0].as_ref_id().unwrap(), classes);
                map.put(heap, "touched", Value::Bool(true))?;
                Ok(Value::Null)
            })),
        )
        .build();
    let classes = collection_classes(session.heap().registry_handle());
    let map = HMap::new(session.heap(), classes).unwrap();
    let list = HList::new(session.heap(), classes).unwrap();
    list.push(session.heap(), Value::Ref(map.id())).unwrap();

    session
        .call("svc", "touch", &[Value::Ref(map.id())])
        .unwrap();

    // Through the alias held by the list:
    let via_list = list.get(session.heap(), 0).unwrap().as_ref_id().unwrap();
    assert_eq!(via_list, map.id(), "object identity preserved");
    let aliased = HMap::from_id(via_list, classes);
    assert_eq!(
        aliased.get(session.heap(), "touched").unwrap(),
        Some(Value::Bool(true))
    );
}

#[test]
fn list_grown_remotely_restores_header_and_new_backing_array() {
    // Remote pushes grow the backing array server-side (a NEW array
    // object); the restore must reseat the caller's header to the new
    // array while keeping the header's identity.
    let mut session = Session::builder(registry())
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let classes = collection_classes(heap.registry());
                let list = HList::from_id(args[0].as_ref_id().unwrap(), classes);
                for i in 0..50 {
                    list.push(heap, Value::Int(i))?;
                }
                Ok(Value::Null)
            })),
        )
        .build();
    let classes = collection_classes(session.heap().registry_handle());
    let list = HList::new(session.heap(), classes).unwrap();
    list.push(session.heap(), Value::Int(-1)).unwrap();

    session
        .call_with(
            "svc",
            "fill",
            &[Value::Ref(list.id())],
            CallOptions::forced(PassMode::CopyRestore),
        )
        .unwrap();

    assert_eq!(list.len(session.heap()).unwrap(), 51);
    assert_eq!(list.get(session.heap(), 0).unwrap(), Value::Int(-1));
    assert_eq!(list.get(session.heap(), 50).unwrap(), Value::Int(49));
}

#[test]
fn collections_work_over_remote_pointers_too() {
    // The same HMap code runs against the remote-heap proxy: every
    // bucket probe crosses the network. Updates to EXISTING entries land
    // directly in the caller's map; entries the server ALLOCATES live on
    // the server and appear to the caller as stubs — exactly Figure 3's
    // split-heap picture.
    let mut session = Session::builder(registry())
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let classes = collection_classes(heap.registry());
                let map = HMap::from_id(args[0].as_ref_id().unwrap(), classes);
                let existing = map.get(heap, "seed")?;
                // In-place update of the existing entry (no allocation).
                map.put(heap, "seed", Value::Int(8))?;
                Ok(existing.unwrap_or(Value::Null))
            })),
        )
        .build();
    let classes = collection_classes(session.heap().registry_handle());
    let map = HMap::new(session.heap(), classes).unwrap();
    map.put(session.heap(), "seed", Value::Int(7)).unwrap();

    let (ret, stats) = session
        .call_with_stats(
            "svc",
            "put",
            &[Value::Ref(map.id())],
            CallOptions::forced(PassMode::RemoteRef),
        )
        .unwrap();
    assert_eq!(
        ret,
        Value::Int(7),
        "server read the caller's entry over the wire"
    );
    assert!(
        stats.callbacks_served > 5,
        "bucket walks crossed the network: {stats:?}"
    );
    assert_eq!(
        map.get(session.heap(), "seed").unwrap(),
        Some(Value::Int(8)),
        "the in-place update landed directly in the caller's map"
    );
}
