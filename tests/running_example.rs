//! End-to-end reproduction of the paper's running example (Figures 1–9)
//! through the full middleware stack (session, transport, wire format).

use nrmi::core::{CallOptions, FnService, NrmiError, PassMode, Session};
use nrmi::heap::tree::{self, RunningExample, TreeClasses};
use nrmi::heap::{ClassRegistry, HeapAccess, SharedRegistry, Value};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = tree::register_tree_classes(&mut reg);
    reg.snapshot()
}

fn foo_session(registry: SharedRegistry) -> Session {
    Session::builder(registry)
        .serve(
            "svc",
            Box::new(FnService::new(|method, args, heap| match method {
                "foo" => {
                    let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                    tree::run_foo(heap, root)?;
                    Ok(Value::Null)
                }
                "foo_and_return_new" => {
                    let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                    tree::run_foo(heap, root)?;
                    // Return the node foo spliced in (t.right after foo).
                    heap.get_field(root, "right").map_err(NrmiError::from)
                }
                other => Err(NrmiError::app(format!("no method {other}"))),
            })),
        )
        .build()
}

fn build(session: &mut Session) -> (RunningExample, TreeClasses) {
    let classes = TreeClasses {
        tree: session
            .heap()
            .registry_handle()
            .by_name("Tree")
            .expect("Tree"),
    };
    let ex = tree::build_running_example(session.heap(), &classes).expect("example");
    (ex, classes)
}

#[test]
fn copy_restore_call_reproduces_figure_2() {
    let mut session = foo_session(registry());
    let (ex, _) = build(&mut session);
    session
        .call_with(
            "svc",
            "foo",
            &[Value::Ref(ex.root)],
            CallOptions::forced(PassMode::CopyRestore),
        )
        .expect("call");
    let violations = tree::figure2_violations(session.heap(), &ex).expect("check");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn auto_mode_picks_copy_restore_for_restorable_tree() {
    let mut session = foo_session(registry());
    let (ex, _) = build(&mut session);
    session
        .call("svc", "foo", &[Value::Ref(ex.root)])
        .expect("call");
    let violations = tree::figure2_violations(session.heap(), &ex).expect("check");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn delta_reply_reproduces_figure_2() {
    let mut session = foo_session(registry());
    let (ex, _) = build(&mut session);
    let (_, stats) = session
        .call_with_stats(
            "svc",
            "foo",
            &[Value::Ref(ex.root)],
            CallOptions::copy_restore_delta(),
        )
        .expect("call");
    // foo changes 4 of the 7 old objects; the delta must not resend the rest.
    assert_eq!(stats.restored_objects, 4);
    assert_eq!(stats.new_objects, 1);
    let violations = tree::figure2_violations(session.heap(), &ex).expect("check");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn dce_rpc_call_reproduces_figure_9() {
    let mut session = foo_session(registry());
    let (ex, _) = build(&mut session);
    session
        .call_with(
            "svc",
            "foo",
            &[Value::Ref(ex.root)],
            CallOptions::forced(PassMode::DceRpc),
        )
        .expect("call");
    let violations = tree::figure9_violations(session.heap(), &ex).expect("check");
    assert!(
        violations.is_empty(),
        "DCE semantics diverged from Figure 9: {violations:?}"
    );
}

#[test]
fn plain_copy_call_changes_nothing_on_the_caller() {
    let mut session = foo_session(registry());
    let (ex, _) = build(&mut session);
    session
        .call_with(
            "svc",
            "foo",
            &[Value::Ref(ex.root)],
            CallOptions::forced(PassMode::Copy),
        )
        .expect("call");
    let heap = session.heap();
    assert_eq!(
        heap.get_field(ex.alias1_target, "data").unwrap(),
        Value::Int(3)
    );
    assert_eq!(
        heap.get_field(ex.alias2_target, "data").unwrap(),
        Value::Int(7)
    );
    assert_eq!(heap.get_ref(ex.root, "left").unwrap(), Some(ex.left));
    assert_eq!(heap.get_ref(ex.root, "right").unwrap(), Some(ex.right));
}

#[test]
fn remote_ref_call_mutates_caller_objects_directly() {
    let mut session = foo_session(registry());
    let (ex, _) = build(&mut session);
    let (_, stats) = session
        .call_with_stats(
            "svc",
            "foo",
            &[Value::Ref(ex.root)],
            CallOptions::forced(PassMode::RemoteRef),
        )
        .expect("call");
    assert!(
        stats.callbacks_served > 10,
        "every access crossed the network: {stats:?}"
    );
    let heap = session.heap();
    // Direct mutations visible without any restore phase:
    assert_eq!(
        heap.get_field(ex.alias1_target, "data").unwrap(),
        Value::Int(0)
    );
    assert_eq!(
        heap.get_field(ex.alias2_target, "data").unwrap(),
        Value::Int(9)
    );
    assert_eq!(heap.get_field(ex.rr, "data").unwrap(), Value::Int(8));
    // The spliced node lives on the server; t.right is a stub (Figure 3).
    let t_right = heap.get_ref(ex.root, "right").unwrap().unwrap();
    assert!(heap.stub_key(t_right).unwrap().is_some());
}

#[test]
fn return_value_referencing_new_server_object_is_usable() {
    let mut session = foo_session(registry());
    let (ex, _) = build(&mut session);
    let ret = session
        .call_with(
            "svc",
            "foo_and_return_new",
            &[Value::Ref(ex.root)],
            CallOptions::forced(PassMode::CopyRestore),
        )
        .expect("call");
    let new_node = ret
        .as_ref_id()
        .expect("foo replaces t.right with a new node");
    let heap = session.heap();
    // The returned reference IS the caller's t.right (one object, not a copy).
    assert_eq!(heap.get_ref(ex.root, "right").unwrap(), Some(new_node));
    assert_eq!(heap.get_field(new_node, "data").unwrap(), Value::Int(2));
    // And its left child is the caller's ORIGINAL rr node.
    assert_eq!(heap.get_ref(new_node, "left").unwrap(), Some(ex.rr));
}

#[test]
fn repeated_calls_compose() {
    // Copy-restore twice: the second call operates on the restored
    // state of the first. After foo, t.right.right is null, so a second
    // foo would NPE — run a benign mutation instead.
    let registry = registry();
    let mut session = Session::builder(registry)
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                let v = heap.get_field(root, "data")?.as_int().unwrap_or(0);
                heap.set_field(root, "data", Value::Int(v + 1))?;
                Ok(Value::Int(v + 1))
            })),
        )
        .build();
    let (ex, _) = build(&mut session);
    for expected in 6..=15 {
        let ret = session
            .call("svc", "inc", &[Value::Ref(ex.root)])
            .expect("call");
        assert_eq!(ret, Value::Int(expected));
    }
    assert_eq!(
        session.heap().get_field(ex.root, "data").unwrap(),
        Value::Int(15)
    );
}

#[test]
fn remote_exception_propagates_and_leaves_caller_untouched() {
    let registry = registry();
    let mut session = Session::builder(registry)
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                // Mutate, then fail: the failed call must not restore.
                heap.set_field(root, "data", Value::Int(777))?;
                Err(NrmiError::app("deliberate server failure"))
            })),
        )
        .build();
    let (ex, _) = build(&mut session);
    let err = session
        .call("svc", "boom", &[Value::Ref(ex.root)])
        .unwrap_err();
    assert!(matches!(err, NrmiError::Remote(_)), "{err}");
    assert!(err.to_string().contains("deliberate server failure"));
    // No partial restore happened:
    assert_eq!(
        session.heap().get_field(ex.root, "data").unwrap(),
        Value::Int(5)
    );
}

#[test]
fn auto_mode_with_delta_replies_is_transparent() {
    let mut session = foo_session(registry());
    let (ex, _) = build(&mut session);
    let opts = CallOptions {
        delta_reply: true,
        ..CallOptions::auto()
    };
    session
        .call_with("svc", "foo", &[Value::Ref(ex.root)], opts)
        .expect("call");
    let violations = tree::figure2_violations(session.heap(), &ex).expect("check");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn delta_with_dce_or_remote_ref_is_rejected() {
    let mut session = foo_session(registry());
    let (ex, _) = build(&mut session);
    for mode in [PassMode::DceRpc, PassMode::RemoteRef] {
        let opts = CallOptions {
            delta_reply: true,
            ..CallOptions::forced(mode)
        };
        let err = session
            .call_with("svc", "foo", &[Value::Ref(ex.root)], opts)
            .unwrap_err();
        assert!(
            matches!(err, NrmiError::InvalidArgument(_)),
            "{mode:?}: {err}"
        );
    }
    // The session is still usable afterwards.
    session
        .call("svc", "foo", &[Value::Ref(ex.root)])
        .expect("call");
}

#[test]
fn lookup_reports_bound_services() {
    let mut session = foo_session(registry());
    assert!(session.lookup("svc").expect("lookup"));
    assert!(!session.lookup("missing").expect("lookup"));
}

#[test]
fn unknown_service_is_an_error() {
    let mut session = foo_session(registry());
    let (ex, _) = build(&mut session);
    let err = session
        .call("nope", "foo", &[Value::Ref(ex.root)])
        .unwrap_err();
    assert!(matches!(err, NrmiError::Remote(_)), "{err}");
    assert!(err.to_string().contains("nope"));
}
