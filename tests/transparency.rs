//! Property-based network-transparency tests: the paper's central claim
//! (§4.1/§5.3.2), checked on *random* graphs, aliases, and mutations.
//!
//! For a single-threaded client and a stateless server, a
//! call-by-copy-restore remote call must be indistinguishable from a
//! local call — for arbitrary linked structures, arbitrary aliases, and
//! arbitrary server-side mutations (including unlinking, splicing, and
//! allocation). Each proptest case builds the same graph twice, runs the
//! same mutation script locally and remotely, and compares the heaps up
//! to alias-preserving isomorphism.

use proptest::prelude::*;

use nrmi::core::{CallOptions, FnService, NrmiError, PassMode, Session};
use nrmi::heap::graph::first_difference;
use nrmi::heap::{ClassRegistry, Heap, HeapAccess, ObjId, SharedRegistry, Value};

/// A deterministic mutation script, applied via `HeapAccess` so it runs
/// both locally and on the server.
#[derive(Clone, Debug)]
enum Op {
    /// Set `data` of node `i` (mod live nodes).
    SetData(usize, i32),
    /// Set a child of node `i` to node `j` (mod live nodes) or null.
    Link(usize, bool, Option<usize>),
    /// Splice a new node above node `i`'s child.
    Splice(usize, bool, i32),
}

fn node_class(reg: &mut ClassRegistry) -> nrmi::heap::ClassId {
    reg.define("Node")
        .field_int("data")
        .field_ref("left")
        .field_ref("right")
        .restorable()
        .register()
}

/// Builds a graph from a node count, an edge list, and alias picks.
/// Edges may form shared structure and cycles — the full generality the
/// paper claims.
fn build_graph(
    heap: &mut Heap,
    class: nrmi::heap::ClassId,
    node_count: usize,
    edges: &[(usize, bool, usize)],
    alias_picks: &[usize],
) -> (ObjId, Vec<ObjId>) {
    let nodes: Vec<ObjId> = (0..node_count)
        .map(|i| {
            heap.alloc(class, vec![Value::Int(i as i32), Value::Null, Value::Null])
                .expect("alloc")
        })
        .collect();
    for &(from, left, to) in edges {
        let from = nodes[from % node_count];
        let to = nodes[to % node_count];
        let side = if left { "left" } else { "right" };
        heap.set_field(from, side, Value::Ref(to)).expect("link");
    }
    let aliases: Vec<ObjId> = alias_picks.iter().map(|&i| nodes[i % node_count]).collect();
    (nodes[0], aliases)
}

/// Applies the script over any heap view. Node indexing works over the
/// *current reachable set in traversal order*, which is identical on
/// both sides by determinism.
fn apply_ops(heap: &mut dyn HeapAccess, root: ObjId, ops: &[Op]) -> Result<(), NrmiError> {
    for op in ops {
        // Re-walk each step: structural ops change the reachable set.
        let nodes = walk(heap, root)?;
        match *op {
            Op::SetData(i, v) => {
                let node = nodes[i % nodes.len()];
                heap.set_field(node, "data", Value::Int(v))?;
            }
            Op::Link(i, left, to) => {
                let node = nodes[i % nodes.len()];
                let side = if left { "left" } else { "right" };
                let value = match to {
                    Some(j) => Value::Ref(nodes[j % nodes.len()]),
                    None => Value::Null,
                };
                heap.set_field(node, side, value)?;
            }
            Op::Splice(i, left, data) => {
                let node = nodes[i % nodes.len()];
                let side = if left { "left" } else { "right" };
                let child = heap.get_field(node, side)?;
                let class = heap.class_of(node)?;
                let fresh = heap.alloc_raw(class, vec![Value::Int(data), child, Value::Null])?;
                heap.set_field(node, side, Value::Ref(fresh))?;
            }
        }
    }
    Ok(())
}

fn walk(heap: &mut dyn HeapAccess, root: ObjId) -> Result<Vec<ObjId>, NrmiError> {
    let mut seen = std::collections::HashSet::new();
    let mut order = Vec::new();
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        if !seen.insert(node) {
            continue;
        }
        order.push(node);
        if let Some(r) = heap.get_ref(node, "right")? {
            stack.push(r);
        }
        if let Some(l) = heap.get_ref(node, "left")? {
            stack.push(l);
        }
    }
    Ok(order)
}

/// Runs the script locally (oracle) and remotely under `opts`; returns
/// the first difference between the outcome graphs, if any.
fn transparency_diff(
    node_count: usize,
    edges: Vec<(usize, bool, usize)>,
    alias_picks: Vec<usize>,
    ops: Vec<Op>,
    opts: CallOptions,
) -> Option<String> {
    let mut reg = ClassRegistry::new();
    let class = node_class(&mut reg);
    let registry: SharedRegistry = reg.snapshot();

    // Local oracle.
    let mut oracle = Heap::new(registry.clone());
    let (oracle_root, oracle_aliases) =
        build_graph(&mut oracle, class, node_count, &edges, &alias_picks);
    apply_ops(&mut oracle, oracle_root, &ops).expect("oracle ops");
    let mut oracle_roots = vec![oracle_root];
    oracle_roots.extend(oracle_aliases);

    // Remote execution.
    let remote_ops = ops.clone();
    let mut session = Session::builder(registry)
        .serve(
            "mutator",
            Box::new(FnService::new(move |_m, args, heap| {
                let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("root"))?;
                apply_ops(heap, root, &remote_ops)?;
                Ok(Value::Null)
            })),
        )
        .build();
    let (client_root, client_aliases) =
        build_graph(session.heap(), class, node_count, &edges, &alias_picks);
    session
        .call_with("mutator", "run", &[Value::Ref(client_root)], opts)
        .expect("remote call");
    let mut client_roots = vec![client_root];
    client_roots.extend(client_aliases);

    // Every restore must leave a structurally sound heap.
    nrmi::heap::validate::assert_valid(session.heap());
    first_difference(&oracle, &oracle_roots, session.heap(), &client_roots).expect("compare")
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64, any::<i32>()).prop_map(|(i, v)| Op::SetData(i, v)),
        (0usize..64, any::<bool>(), proptest::option::of(0usize..64))
            .prop_map(|(i, l, t)| Op::Link(i, l, t)),
        (0usize..64, any::<bool>(), any::<i32>()).prop_map(|(i, l, d)| Op::Splice(i, l, d)),
    ]
}

/// (node count, edges, alias picks, mutation script).
type GraphCase = (usize, Vec<(usize, bool, usize)>, Vec<usize>, Vec<Op>);

fn graph_strategy() -> impl Strategy<Value = GraphCase> {
    (2usize..24).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0usize..n, any::<bool>(), 0usize..n), 0..32),
            proptest::collection::vec(0usize..n, 0..5),
            proptest::collection::vec(op_strategy(), 0..12),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: copy-restore ≡ local execution for random
    /// graphs (including cycles and shared structure), random aliases,
    /// and random mutation scripts.
    #[test]
    fn copy_restore_is_network_transparent(
        (n, edges, aliases, ops) in graph_strategy()
    ) {
        let diff = transparency_diff(
            n, edges, aliases, ops,
            CallOptions::forced(PassMode::CopyRestore),
        );
        prop_assert_eq!(diff, None);
    }

    /// The delta-encoded reply path must be observationally identical to
    /// the full-reply path.
    #[test]
    fn delta_replies_are_network_transparent(
        (n, edges, aliases, ops) in graph_strategy()
    ) {
        let diff = transparency_diff(
            n, edges, aliases, ops,
            CallOptions::copy_restore_delta(),
        );
        prop_assert_eq!(diff, None);
    }

    /// Marker-driven AUTO mode equals forced copy-restore for restorable
    /// argument classes.
    #[test]
    fn auto_mode_is_network_transparent_for_restorable(
        (n, edges, aliases, ops) in graph_strategy()
    ) {
        let diff = transparency_diff(n, edges, aliases, ops, CallOptions::auto());
        prop_assert_eq!(diff, None);
    }

    /// Restore never duplicates or replaces old objects: every object
    /// reachable before the call that the oracle still reaches keeps its
    /// exact ObjId on the client — aliases held ANYWHERE keep working.
    #[test]
    fn restore_preserves_object_identity(
        (n, edges, aliases, ops) in graph_strategy()
    ) {
        let mut reg = ClassRegistry::new();
        let class = node_class(&mut reg);
        let registry: SharedRegistry = reg.snapshot();
        let remote_ops = ops.clone();
        let mut session = Session::builder(registry)
            .serve(
                "mutator",
                Box::new(FnService::new(move |_m, args, heap| {
                    let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("root"))?;
                    apply_ops(heap, root, &remote_ops)?;
                    Ok(Value::Null)
                })),
            )
            .build();
        let (client_root, client_aliases) =
            build_graph(session.heap(), class, n, &edges, &aliases);
        // Everything reachable pre-call:
        let pre = nrmi::heap::LinearMap::build(session.heap(), &[client_root]).unwrap();
        session
            .call_with(
                "mutator",
                "run",
                &[Value::Ref(client_root)],
                CallOptions::forced(PassMode::CopyRestore),
            )
            .expect("remote call");
        // Every pre-call object is STILL LIVE at its old ObjId (restore
        // overwrites in place; it never frees or replaces originals).
        for &id in pre.order() {
            prop_assert!(session.heap().contains(id), "old object {id} vanished");
        }
        let _ = client_aliases;
    }

    /// DCE RPC semantics restores a SUBSET of copy-restore: on the
    /// argument graph reachable after the call the two agree; checking
    /// only the root (no aliases) with purely data mutations, DCE is
    /// fully transparent.
    #[test]
    fn dce_equals_copy_restore_for_data_only_mutations(
        n in 2usize..24,
        edges in proptest::collection::vec((0usize..24, any::<bool>(), 0usize..24), 0..24),
        data_ops in proptest::collection::vec((0usize..64, any::<i32>()), 0..8)
    ) {
        let ops: Vec<Op> = data_ops.into_iter().map(|(i, v)| Op::SetData(i, v)).collect();
        let diff = transparency_diff(
            n, edges, Vec::new(), ops,
            CallOptions::forced(PassMode::DceRpc),
        );
        prop_assert_eq!(diff, None);
    }
}
