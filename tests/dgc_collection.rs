//! The complete distributed-GC loop: client GC detects unreachable
//! stubs, sends cleans, the server unpins — and distributed *cycles*
//! still leak, completing the Table 6 story.

use nrmi::core::{CallOptions, FnService, NrmiError, PassMode, Session};
use nrmi::heap::{ClassRegistry, SharedRegistry, Value};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = nrmi::heap::tree::register_tree_classes(&mut reg);
    reg.snapshot()
}

/// A server that hands out fresh server-side nodes by remote reference.
fn maker_session() -> Session {
    Session::builder(registry())
        .serve(
            "maker",
            Box::new(FnService::new(|method, args, heap| {
                let class = heap.registry().by_name("Tree").unwrap();
                match method {
                    "make" => Ok(Value::Ref(
                        heap.alloc_raw(class, vec![Value::Int(1), Value::Null, Value::Null])?,
                    )),
                    "entangle" => {
                        // Cross-heap cycle: server node ↔ client node.
                        let client_obj = args[0].as_ref_id().unwrap();
                        let server_obj = heap.alloc_raw(
                            class,
                            vec![Value::Int(2), Value::Ref(client_obj), Value::Null],
                        )?;
                        heap.set_field(client_obj, "left", Value::Ref(server_obj))?;
                        Ok(Value::Null)
                    }
                    other => Err(NrmiError::app(format!("no method {other}"))),
                }
            })),
        )
        .build()
}

#[test]
fn acyclic_remote_garbage_is_fully_reclaimed() {
    let mut session = maker_session();
    // Acquire three server-object stubs, keep only one reachable.
    let opts = CallOptions::forced(PassMode::RemoteRef);
    let keep = session
        .call_with("maker", "make", &[], opts)
        .unwrap()
        .as_ref_id()
        .unwrap();
    let _drop1 = session.call_with("maker", "make", &[], opts).unwrap();
    let _drop2 = session.call_with("maker", "make", &[], opts).unwrap();
    assert_eq!(session.client().state.stubs.len(), 3);

    let (freed, cleans) = session.collect_garbage(&[keep]).unwrap();
    assert_eq!(cleans, 2, "two unreachable stubs cleaned");
    assert_eq!(freed, 2, "two stub objects freed locally");
    assert!(session.heap().contains(keep), "reachable stub survives");
    assert_eq!(session.client().state.stubs.len(), 1);

    // The server observed the cleans: after shutdown only one export
    // remains pinned, and its local GC reclaims the released objects.
    let mut server = session.shutdown().unwrap();
    assert_eq!(
        server.state.exports.len(),
        1,
        "server unpinned the cleaned exports"
    );
    let live_before = server.state.heap.live_count();
    let freed_server = server.collect_local(&[]).unwrap();
    assert_eq!(
        freed_server,
        live_before - 1,
        "only the pinned export survives"
    );
}

#[test]
fn distributed_cycle_survives_both_collectors() {
    let mut session = maker_session();
    let class = session.heap().registry_handle().by_name("Tree").unwrap();
    let client_obj = session
        .heap()
        .alloc(class, vec![Value::Int(0), Value::Null, Value::Null])
        .unwrap();
    session
        .call_with(
            "maker",
            "entangle",
            &[Value::Ref(client_obj)],
            CallOptions::forced(PassMode::RemoteRef),
        )
        .unwrap();
    // Drop every client root: the whole structure is globally garbage.
    let (_, cleans) = session.collect_garbage(&[]).unwrap();
    // But the client object is pinned by the server's stub, so it (and
    // the stub it holds to the server node) survives — and no clean can
    // be sent for the stub, because it is still reachable from the
    // pinned object. Reference counting cannot break the cycle.
    assert_eq!(
        cleans, 0,
        "cycle: no stub is unreachable from the pinned roots"
    );
    assert!(
        session.heap().contains(client_obj),
        "leaked: pinned by the peer"
    );
    assert!(!session.client().state.exports.is_empty());
    let mut server = session.shutdown().unwrap();
    assert!(
        !server.state.exports.is_empty(),
        "server side equally pinned"
    );
    let freed = server.collect_local(&[]).unwrap();
    assert!(
        server.state.heap.live_count() > 0,
        "server node leaked too (freed {freed})"
    );
}

#[test]
fn repeated_collect_is_stable() {
    let mut session = maker_session();
    let opts = CallOptions::forced(PassMode::RemoteRef);
    let _ = session.call_with("maker", "make", &[], opts).unwrap();
    let (freed1, cleans1) = session.collect_garbage(&[]).unwrap();
    assert_eq!((freed1, cleans1), (1, 1));
    let (freed2, cleans2) = session.collect_garbage(&[]).unwrap();
    assert_eq!((freed2, cleans2), (0, 0), "idempotent once clean");
}
