//! End-to-end tests of the warm-call protocol: session caches, request
//! deltas, coherence invalidation, eviction, and fallback to cold.

use std::sync::{Arc, Mutex};
use std::thread;

use nrmi::core::{
    serve_tcp_concurrent, CallOptions, FnService, NrmiError, RemoteService, ServerNode, Session,
};
use nrmi::heap::tree::{self, TreeClasses};
use nrmi::heap::validate::assert_valid;
use nrmi::heap::{ClassRegistry, HeapAccess, ObjId, SharedRegistry, Value};
use nrmi::transport::{MachineSpec, TcpListenerTransport};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = tree::register_tree_classes(&mut reg);
    reg.snapshot()
}

fn classes_of(session: &mut Session) -> TreeClasses {
    TreeClasses {
        tree: session.heap().registry_handle().by_name("Tree").unwrap(),
    }
}

/// A deterministic mutator: bumps the root's data and, when present, the
/// left child's, and returns the new root value.
fn bump_service() -> Box<dyn RemoteService> {
    Box::new(FnService::new(|_m, args, heap| {
        let root = args[0]
            .as_ref_id()
            .ok_or_else(|| NrmiError::app("want tree"))?;
        let v = heap.get_field(root, "data")?.as_int().unwrap_or(0);
        heap.set_field(root, "data", Value::Int(v + 1))?;
        if let Some(left) = heap.get_ref(root, "left")? {
            let lv = heap.get_field(left, "data")?.as_int().unwrap_or(0);
            heap.set_field(left, "data", Value::Int(lv + 10))?;
        }
        Ok(Value::Int(v + 1))
    }))
}

#[test]
fn warm_calls_restore_like_cold_and_ship_fewer_bytes() {
    const CALLS: usize = 6;
    const NODES: usize = 1_000;

    // Two identical worlds: one always-cold, one warm.
    let mut cold = Session::builder(registry())
        .serve("bump", bump_service())
        .build();
    let mut warm = Session::builder(registry())
        .serve("bump", bump_service())
        .build();
    let cold_classes = classes_of(&mut cold);
    let warm_classes = classes_of(&mut warm);
    let cold_root = tree::build_random_tree(cold.heap(), &cold_classes, NODES, 7).unwrap();
    let warm_root = tree::build_random_tree(warm.heap(), &warm_classes, NODES, 7).unwrap();

    let opts = CallOptions::copy_restore_delta();
    let mut cold_request_bytes = Vec::new();
    let mut warm_request_bytes = Vec::new();
    for i in 0..CALLS {
        let (cv, cs) = cold
            .call_with_stats("bump", "bump", &[Value::Ref(cold_root)], opts)
            .unwrap();
        let (wv, ws) = warm
            .call_warm_with_stats("bump", "bump", &[Value::Ref(warm_root)])
            .unwrap();
        assert_eq!(cv, wv, "call {i}: same return value");
        cold_request_bytes.push(cs.request_bytes);
        warm_request_bytes.push(ws.request_bytes);
        // Restores must leave both heaps structurally sound every round.
        assert_valid(cold.heap());
        assert_valid(warm.heap());
    }

    // The seed request marshals the same full graph as the cold request.
    assert_eq!(
        warm_request_bytes[0], cold_request_bytes[0],
        "seed payload matches the cold request size"
    );
    // Every later warm request is a small delta: the graph is ~1k nodes
    // but only 2 of them were dirtied per call.
    for (i, &bytes) in warm_request_bytes.iter().enumerate().skip(1) {
        assert!(
            bytes * 20 < cold_request_bytes[i],
            "warm call {i} shipped {bytes} bytes vs cold {}",
            cold_request_bytes[i]
        );
    }

    // Both clients converged to the same restored state.
    assert!(nrmi::heap::graph::isomorphic_multi(
        cold.heap(),
        &[cold_root],
        warm.heap(),
        &[warm_root]
    )
    .unwrap());
    assert_eq!(warm.warm_generation("bump"), Some(CALLS as u64));
}

#[test]
fn client_mutations_between_warm_calls_are_shipped() {
    let mut session = Session::builder(registry())
        .serve(
            "read",
            Box::new(FnService::new(|_m, args, heap| {
                let root = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("want tree"))?;
                Ok(heap.get_field(root, "data")?)
            })),
        )
        .build();
    let classes = classes_of(&mut session);
    let root = tree::build_random_tree(session.heap(), &classes, 64, 3).unwrap();

    session
        .heap()
        .set_field(root, "data", Value::Int(100))
        .unwrap();
    assert_eq!(
        session
            .call_warm("read", "read", &[Value::Ref(root)])
            .unwrap(),
        Value::Int(100)
    );
    // Mutate between calls: the dirty slot must travel in the delta.
    session
        .heap()
        .set_field(root, "data", Value::Int(200))
        .unwrap();
    assert_eq!(
        session
            .call_warm("read", "read", &[Value::Ref(root)])
            .unwrap(),
        Value::Int(200)
    );
    // An untouched graph ships nothing but still answers correctly.
    let (v, stats) = session
        .call_warm_with_stats("read", "read", &[Value::Ref(root)])
        .unwrap();
    assert_eq!(v, Value::Int(200));
    assert_eq!(
        stats.request_objects, 0,
        "clean graph: no dirty or new objects"
    );
    assert!(
        stats.request_bytes < 48,
        "clean request delta is tiny: {}",
        stats.request_bytes
    );
}

#[test]
fn structural_changes_ship_new_objects_and_frees() {
    let mut session = Session::builder(registry())
        .serve(
            "count",
            Box::new(FnService::new(|_m, args, heap| {
                let root = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("want tree"))?;
                // DFS through the HeapAccess interface (services see the
                // proxy, not the raw heap).
                let mut seen = std::collections::HashSet::new();
                let mut stack = vec![root];
                while let Some(id) = stack.pop() {
                    if !seen.insert(id) {
                        continue;
                    }
                    for slot in 0..heap.slot_count(id)? {
                        if let Some(child) = heap.get_field_raw(id, slot)?.as_ref_id() {
                            stack.push(child);
                        }
                    }
                }
                Ok(Value::Int(seen.len() as i32))
            })),
        )
        .build();
    let classes = classes_of(&mut session);
    let root = tree::build_random_tree(session.heap(), &classes, 32, 5).unwrap();
    let n0 = nrmi::heap::traverse::reachable_count(session.heap(), &[root]).unwrap();
    assert_eq!(
        session
            .call_warm("count", "count", &[Value::Ref(root)])
            .unwrap(),
        Value::Int(n0 as i32)
    );

    // Graft a fresh chain under the root (new objects travel in the
    // request delta) …
    let heap = session.heap();
    let leaf = heap
        .alloc(classes.tree, vec![Value::Int(1), Value::Null, Value::Null])
        .unwrap();
    let mid = heap
        .alloc(
            classes.tree,
            vec![Value::Int(2), Value::Ref(leaf), Value::Null],
        )
        .unwrap();
    let old_left = heap.get_ref(root, "left").unwrap();
    heap.set_field(root, "left", Value::Ref(mid)).unwrap();
    // … and free the detached subtree (freed positions travel too).
    if let Some(old) = old_left {
        let doomed = nrmi::heap::LinearMap::build(heap, &[old]).unwrap();
        let keep = nrmi::heap::traverse::reachable_set(heap, &[root]).unwrap();
        for &id in doomed.order() {
            if !keep.contains(id) {
                heap.free(id).unwrap();
            }
        }
    }
    let n1 = nrmi::heap::traverse::reachable_count(session.heap(), &[root]).unwrap();
    assert_eq!(
        session
            .call_warm("count", "count", &[Value::Ref(root)])
            .unwrap(),
        Value::Int(n1 as i32),
        "server-side cached graph tracks grafts and frees"
    );
    assert_eq!(session.warm_generation("count"), Some(2));
    assert_valid(session.heap());
}

#[test]
fn out_of_band_mutation_repairs_warm_cache() {
    // "keeper" serves warm calls over a cached graph and leaks the
    // server-side root id; "poker" mutates that cached object during an
    // unrelated (cold) call — the out-of-band write the coherence check
    // must catch. The server answers the next warm call with a targeted
    // `CacheStale` patch: the client's view is repaired in place (the
    // poked value becomes visible on both sides) and the session
    // survives at the same cadence — no cold reseed, and no stale read
    // of the pre-poke value from the cached graph.
    let stashed: Arc<Mutex<Option<ObjId>>> = Arc::new(Mutex::new(None));
    let stash_w = Arc::clone(&stashed);
    let stash_p = Arc::clone(&stashed);
    let mut session = Session::builder(registry())
        .serve(
            "keeper",
            Box::new(FnService::new(move |_m, args, heap| {
                let root = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("want tree"))?;
                *stash_w.lock().unwrap() = Some(root);
                Ok(heap.get_field(root, "data")?)
            })),
        )
        .serve(
            "poker",
            Box::new(FnService::new(move |_m, _args, heap| {
                let target = stash_p.lock().unwrap().expect("keeper ran first");
                heap.set_field(target, "data", Value::Int(666))?;
                Ok(Value::Null)
            })),
        )
        .build();
    let classes = classes_of(&mut session);
    let root = tree::build_random_tree(session.heap(), &classes, 16, 9).unwrap();
    session
        .heap()
        .set_field(root, "data", Value::Int(42))
        .unwrap();

    assert_eq!(
        session
            .call_warm("keeper", "get", &[Value::Ref(root)])
            .unwrap(),
        Value::Int(42)
    );
    assert_eq!(
        session
            .call_warm("keeper", "get", &[Value::Ref(root)])
            .unwrap(),
        Value::Int(42)
    );
    assert_eq!(session.warm_generation("keeper"), Some(2));

    // Out-of-band: a cold call mutates the cached server-side graph.
    session.call("poker", "poke", &[]).unwrap();

    // The warm session is stale but repairable: the server patches the
    // dirty position back to the client and the re-issued call reads the
    // COHERENT (poked) value — never the stale pre-poke one from either
    // side's cache.
    let (v, _) = session
        .call_warm_with_stats("keeper", "get", &[Value::Ref(root)])
        .unwrap();
    assert_eq!(v, Value::Int(666), "out-of-band write visible, coherently");
    assert_eq!(
        session.heap().get_field(root, "data").unwrap(),
        Value::Int(666),
        "coherence patch repaired the client's copy in place"
    );
    assert_eq!(
        session.warm_generation("keeper"),
        Some(3),
        "session repaired, not reseeded (generation advanced normally)"
    );
    assert_valid(session.heap());
}

#[test]
fn eviction_reseeds_and_server_frees_cached_graphs() {
    let mut session = Session::builder(registry())
        .serve("bump", bump_service())
        .build();
    let classes = classes_of(&mut session);
    let root = tree::build_random_tree(session.heap(), &classes, 128, 11).unwrap();

    session.call_warm("bump", "b", &[Value::Ref(root)]).unwrap();
    session.call_warm("bump", "b", &[Value::Ref(root)]).unwrap();
    assert_eq!(session.warm_generation("bump"), Some(2));

    session.evict_warm("bump").unwrap();
    assert_eq!(session.warm_generation("bump"), None);
    // Evicting twice is a no-op.
    session.evict_warm("bump").unwrap();

    // The next call seeds a fresh session.
    session.call_warm("bump", "b", &[Value::Ref(root)]).unwrap();
    assert_eq!(session.warm_generation("bump"), Some(1));

    // After shutdown every cached graph has been released: the server
    // heap holds no leaked session state — and what was freed was freed
    // cleanly (no survivors left dangling at freed neighbors).
    let server = session.shutdown().unwrap();
    assert_valid(&server.state.heap);
    assert_eq!(
        server.state.heap.live_count(),
        0,
        "warm caches freed on teardown"
    );
}

#[test]
fn remote_errors_retire_the_session() {
    let mut session = Session::builder(registry())
        .serve(
            "moody",
            Box::new(FnService::new(|method, args, heap| {
                if method == "boom" {
                    return Err(NrmiError::app("boom"));
                }
                let root = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("want tree"))?;
                Ok(heap.get_field(root, "data")?)
            })),
        )
        .build();
    let classes = classes_of(&mut session);
    let root = tree::build_random_tree(session.heap(), &classes, 8, 13).unwrap();

    session
        .call_warm("moody", "get", &[Value::Ref(root)])
        .unwrap();
    assert_eq!(session.warm_generation("moody"), Some(1));
    let err = session
        .call_warm("moody", "boom", &[Value::Ref(root)])
        .unwrap_err();
    assert!(matches!(err, NrmiError::Remote(_)));
    assert_eq!(
        session.warm_generation("moody"),
        None,
        "error retires the session"
    );
    assert_valid(session.heap());
    // And the next call transparently reseeds.
    session
        .call_warm("moody", "get", &[Value::Ref(root)])
        .unwrap();
    assert_eq!(session.warm_generation("moody"), Some(1));
}

#[test]
fn warm_sessions_are_isolated_per_tcp_client() {
    const CLIENTS: usize = 3;
    const CALLS: usize = 4;
    let registry = registry();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let server_registry = registry.clone();
    let server_thread = thread::spawn(move || {
        let mut server = ServerNode::new(server_registry, MachineSpec::fast());
        server.bind("bump", bump_service());
        serve_tcp_concurrent(server, listener, CLIENTS).expect("serve")
    });

    let mut client_threads = Vec::new();
    for c in 0..CLIENTS {
        let registry = registry.clone();
        client_threads.push(thread::spawn(move || {
            let mut client = Session::connect_tcp(registry, addr).expect("connect");
            let classes = TreeClasses {
                tree: client.heap().registry_handle().by_name("Tree").unwrap(),
            };
            let root = tree::build_random_tree(client.heap(), &classes, 200, c as u64 + 1).unwrap();
            let base = client
                .heap()
                .get_field(root, "data")
                .unwrap()
                .as_int()
                .unwrap();
            for i in 1..=CALLS {
                let v = client
                    .call_warm("bump", "b", &[Value::Ref(root)])
                    .expect("warm call");
                // Each client's session is its own: the counter advances
                // by exactly one per call, never perturbed by peers.
                assert_eq!(v, Value::Int(base + i as i32), "client {c} call {i}");
            }
            assert_eq!(
                client.heap().get_field(root, "data").unwrap(),
                Value::Int(base + CALLS as i32)
            );
            client.close().expect("close");
        }));
    }
    for t in client_threads {
        t.join().expect("client thread");
    }
    let server = server_thread.join().expect("server thread");
    assert_valid(&server.state.heap);
    assert_eq!(
        server.state.heap.live_count(),
        0,
        "every client's cached session graph was released on disconnect"
    );
}

#[test]
fn warm_falls_back_to_cold_for_undeltable_graphs() {
    // A graph that grows a remote-marked object cannot travel as a
    // request delta; the client must transparently retire the session
    // and complete the call cold.
    let mut reg = ClassRegistry::new();
    let classes = tree::register_tree_classes(&mut reg);
    let printer = reg.define("Printer").remote().register();
    let registry = reg.snapshot();
    let mut session = Session::builder(registry)
        .serve(
            "read",
            Box::new(FnService::new(|_m, args, heap| {
                let root = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("want tree"))?;
                Ok(heap.get_field(root, "data")?)
            })),
        )
        .build();
    let root = tree::build_random_tree(session.heap(), &classes, 8, 17).unwrap();
    session
        .heap()
        .set_field(root, "data", Value::Int(5))
        .unwrap();
    assert_eq!(
        session.call_warm("read", "r", &[Value::Ref(root)]).unwrap(),
        Value::Int(5)
    );
    assert_eq!(session.warm_generation("read"), Some(1));

    // Link a remote-marked object into the synchronized graph.
    let svc = session.heap().alloc_default(printer).unwrap();
    session
        .heap()
        .set_field(root, "left", Value::Ref(svc))
        .unwrap();
    assert_eq!(
        session.call_warm("read", "r", &[Value::Ref(root)]).unwrap(),
        Value::Int(5)
    );
    assert_eq!(
        session.warm_generation("read"),
        None,
        "undeltable graph retired the warm session and ran cold"
    );
    assert_valid(session.heap());
}
