//! Typed remote interfaces over the full stack: the compile-time
//! contract of `java.rmi.Remote` interfaces, enforced dynamically at the
//! middleware boundary on both ends.

use std::sync::Arc;

use nrmi::core::{FnService, InterfaceDef, NrmiError, ParamType, Session, TypedService};
use nrmi::heap::{ClassRegistry, HeapAccess, SharedRegistry, Value};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = reg
        .define("Counter")
        .field_int("count")
        .restorable()
        .register();
    reg.snapshot()
}

fn counter_interface() -> Arc<InterfaceDef> {
    Arc::new(
        InterfaceDef::new("CounterService")
            .method(
                "bump",
                &[ParamType::Reference, ParamType::Int],
                ParamType::Int,
            )
            .method("describe", &[], ParamType::Str),
    )
}

fn typed_session() -> Session {
    let iface = counter_interface();
    Session::builder(registry())
        .serve(
            "counter",
            Box::new(TypedService::new(
                iface,
                Box::new(FnService::new(|method, args, heap| match method {
                    "bump" => {
                        let obj = args[0].as_ref_id().ok_or_else(|| NrmiError::app("ref"))?;
                        let by = args[1].as_int().unwrap_or(0);
                        let v = heap.get_field(obj, "count")?.as_int().unwrap_or(0);
                        heap.set_field(obj, "count", Value::Int(v + by))?;
                        Ok(Value::Int(v + by))
                    }
                    "describe" => Ok(Value::Str("a typed counter".into())),
                    // Unreachable: the interface gate rejects first.
                    other => Err(NrmiError::app(format!("no method {other}"))),
                })),
            )),
        )
        .build()
}

#[test]
fn conforming_calls_pass_and_restore() {
    let mut session = typed_session();
    let class = session.heap().registry_handle().by_name("Counter").unwrap();
    let obj = session.heap().alloc(class, vec![Value::Int(5)]).unwrap();
    let ret = session
        .call("counter", "bump", &[Value::Ref(obj), Value::Int(3)])
        .unwrap();
    assert_eq!(ret, Value::Int(8));
    assert_eq!(
        session.heap().get_field(obj, "count").unwrap(),
        Value::Int(8)
    );
    assert_eq!(
        session.call("counter", "describe", &[]).unwrap(),
        Value::Str("a typed counter".into())
    );
}

#[test]
fn wrong_arity_rejected_as_remote_exception() {
    let mut session = typed_session();
    let err = session
        .call("counter", "bump", &[Value::Int(3)])
        .unwrap_err();
    assert!(err.to_string().contains("takes 2"), "{err}");
}

#[test]
fn wrong_shape_rejected_before_the_implementation_runs() {
    let mut session = typed_session();
    let class = session.heap().registry_handle().by_name("Counter").unwrap();
    let obj = session.heap().alloc(class, vec![Value::Int(5)]).unwrap();
    let err = session
        .call(
            "counter",
            "bump",
            &[Value::Ref(obj), Value::Str("three".into())],
        )
        .unwrap_err();
    assert!(err.to_string().contains("must be int"), "{err}");
    // The rejected call mutated nothing.
    assert_eq!(
        session.heap().get_field(obj, "count").unwrap(),
        Value::Int(5)
    );
}

#[test]
fn undeclared_methods_are_invisible() {
    let mut session = typed_session();
    let err = session.call("counter", "reset", &[]).unwrap_err();
    assert!(err.to_string().contains("reset"), "{err}");
}
