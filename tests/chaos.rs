//! Chaos testing: random fault schedules against copy-restore calls.
//!
//! For ANY injected transport fault pattern, a remote call either
//! completes with full local-call semantics or fails with an error — and
//! on failure the caller's *reachable* state is bit-identical to the
//! pre-call state (at worst, unreachable decode debris remains, which
//! one GC sweep removes — the same guarantee Java gives for partially
//! deserialized garbage).

use proptest::prelude::*;
use std::thread;

use nrmi::core::{
    client_invoke, serve_connection, CallOptions, ClientNode, FnService, NrmiError, PassMode,
    ServerNode,
};
use nrmi::heap::snapshot::HeapSnapshot;
use nrmi::heap::tree::{self};
use nrmi::heap::Value;
use nrmi::heap::{ClassRegistry, SharedRegistry};
use nrmi::transport::{channel_pair, Fault, FaultPlan, FaultyTransport, LinkSpec, MachineSpec};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = tree::register_tree_classes(&mut reg);
    reg.snapshot()
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        5 => Just(Fault::Pass),
        1 => Just(Fault::Disconnect),
        1 => Just(Fault::Corrupt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn faulty_copy_restore_calls_never_corrupt_reachable_state(
        sends in proptest::collection::vec(fault_strategy(), 0..3),
        recvs in proptest::collection::vec(fault_strategy(), 0..3),
        size in 2usize..12,
        seed in 0u64..1000,
    ) {
        let registry = registry();
        let (client_t, mut server_t) = channel_pair(None, LinkSpec::free());
        let server_registry = registry.clone();
        let server = thread::spawn(move || {
            let mut server = ServerNode::new(server_registry, MachineSpec::fast());
            server.bind(
                "svc",
                Box::new(FnService::new(move |_m, args, heap| {
                    let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                    // A benign deterministic mutation.
                    let v = heap.get_field(root, "data")?.as_int().unwrap_or(0);
                    heap.set_field(root, "data", Value::Int(v.wrapping_mul(3) + 1))?;
                    Ok(Value::Null)
                })),
            );
            let _ = serve_connection(&mut server, &mut server_t);
            server
        });

        let mut client = ClientNode::new(registry, MachineSpec::fast());
        let classes = tree::TreeClasses {
            tree: client.state.heap.registry_handle().by_name("Tree").unwrap(),
        };
        let root = tree::build_random_tree(&mut client.state.heap, &classes, size, seed).unwrap();
        let before = HeapSnapshot::capture(&client.state.heap);
        let data_before = client.state.heap.get(root).unwrap().body().slots()[0].clone();

        let mut transport =
            FaultyTransport::new(client_t, FaultPlan { sends: sends.clone(), recvs: recvs.clone() });
        let result = client_invoke(
            &mut client,
            &mut transport,
            "svc",
            "mutate",
            &[Value::Ref(root)],
            CallOptions::forced(PassMode::CopyRestore),
        );
        drop(transport);
        let server_node = server.join().expect("server thread");

        // Regardless of outcome, both heaps must be structurally sound:
        // a corrupted or truncated frame may abort the call, but it must
        // never leave either side holding dangling references.
        nrmi::heap::validate::assert_valid(&client.state.heap);
        nrmi::heap::validate::assert_valid(&server_node.state.heap);
        match result {
            Ok(_) => {
                // Success: exactly the server's mutation is visible.
                let expected = match data_before {
                    Value::Int(v) => Value::Int(v.wrapping_mul(3) + 1),
                    other => other,
                };
                let now = client.state.heap.get(root).unwrap().body().slots()[0].clone();
                prop_assert_eq!(now, expected);
            }
            Err(_) => {
                // Failure: reachable state untouched. Decode debris may
                // exist but must be unreachable — one GC sweep restores
                // the exact pre-call heap.
                let _ = nrmi::heap::gc::mark_sweep(&mut client.state.heap, &[root]).unwrap();
                let after = HeapSnapshot::capture(&client.state.heap);
                let diff = before.diff(&after);
                prop_assert!(
                    diff.is_empty(),
                    "failed call perturbed reachable state: {} (sends {:?}, recvs {:?})",
                    diff.summary(),
                    sends,
                    recvs
                );
            }
        }

        // Under `--features lockcheck`, the chaos sweep doubles as a
        // lock-discipline audit of the real server (DESIGN.md §3i).
        #[cfg(feature = "lockcheck")]
        nrmi::check::assert_discipline_clean("chaos: faulty copy-restore sweep");
    }
}
