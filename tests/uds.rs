//! The protocol over Unix-domain sockets: the Table 3 configuration
//! (two runtimes on one machine) on a real same-host IPC path.

#![cfg(unix)]

use std::thread;

use nrmi::core::{serve_connection, FnService, NrmiError, ServerNode, Session};
use nrmi::heap::tree::{self};
use nrmi::heap::{ClassRegistry, HeapAccess, SharedRegistry, Value};
use nrmi::transport::{MachineSpec, UdsListenerTransport};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = tree::register_tree_classes(&mut reg);
    reg.snapshot()
}

#[test]
fn copy_restore_over_unix_domain_socket() {
    let path = std::env::temp_dir().join(format!("nrmi-uds-it-{}", std::process::id()));
    let listener = UdsListenerTransport::bind(&path).expect("bind");
    let registry = registry();
    let server_registry = registry.clone();
    let server = thread::spawn(move || {
        let mut server = ServerNode::new(server_registry, MachineSpec::fast());
        server.bind(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                tree::run_foo(heap, root)?;
                Ok(Value::Null)
            })),
        );
        let mut transport = listener.accept().expect("accept");
        serve_connection(&mut server, &mut transport).expect("serve");
    });

    let mut client = Session::connect_uds(registry, &path).expect("connect");
    let classes = tree::TreeClasses {
        tree: client.heap().registry_handle().by_name("Tree").unwrap(),
    };
    let ex = tree::build_running_example(client.heap(), &classes).unwrap();
    client
        .call("svc", "foo", &[Value::Ref(ex.root)])
        .expect("remote foo over uds");
    let violations = tree::figure2_violations(client.heap(), &ex).unwrap();
    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(
        client.heap().get_field(ex.alias1_target, "data").unwrap(),
        Value::Int(0)
    );
    client.close().expect("close");
    server.join().expect("server thread");
}
