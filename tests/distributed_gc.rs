//! Distributed garbage collection behavior — the mechanism behind the
//! paper's Table 6 observation: "the references back from the server to
//! the client create distributed circular garbage. Since RMI only
//! supports reference counting garbage collection, it cannot reclaim
//! the garbage data", so the remote-pointer benchmark's memory grew
//! until it exhausted the heap.

use nrmi::core::{CallOptions, FnService, PassMode, Session};
use nrmi::heap::gc::mark_sweep;
use nrmi::heap::tree::{self};
use nrmi::heap::{ClassRegistry, HeapAccess, SharedRegistry, Value};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = tree::register_tree_classes(&mut reg);
    reg.snapshot()
}

#[test]
fn remote_ref_calls_grow_export_tables_monotonically() {
    // Each remote-pointer call exports more client objects (the server's
    // stubs pin them); without DGC cleans, memory growth is unbounded —
    // the shape of the paper's leak.
    let mut session = Session::builder(registry())
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let root = args[0].as_ref_id().unwrap();
                // Touch the whole tree so every node gets exported.
                let mut stack = vec![root];
                while let Some(n) = stack.pop() {
                    let v = heap.get_field(n, "data")?.as_int().unwrap_or(0);
                    heap.set_field(n, "data", Value::Int(v + 1))?;
                    for side in ["left", "right"] {
                        if let Some(c) = heap.get_ref(n, side)? {
                            stack.push(c);
                        }
                    }
                }
                Ok(Value::Null)
            })),
        )
        .build();
    let classes = nrmi::heap::tree::TreeClasses {
        tree: session.heap().registry_handle().by_name("Tree").unwrap(),
    };

    let mut exported_after = Vec::new();
    for seed in 0..4 {
        let root = tree::build_random_tree(session.heap(), &classes, 16, seed).unwrap();
        session
            .call_with(
                "svc",
                "inc_all",
                &[Value::Ref(root)],
                CallOptions::forced(PassMode::RemoteRef),
            )
            .expect("call");
        exported_after.push(session.client().state.exports.len());
    }
    assert!(
        exported_after.windows(2).all(|w| w[1] > w[0]),
        "exports grow per call: {exported_after:?}"
    );
    assert!(
        *exported_after.last().unwrap() >= 64,
        "every touched node pinned"
    );
}

#[test]
fn release_stub_sends_clean_and_frees_locally() {
    // A client that holds a stub to a server-created object can release
    // it; the DGC clean unpins the server's export.
    let mut session = Session::builder(registry())
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                // Allocate a node server-side and hand back a reference;
                // under remote-ref the client receives a stub.
                let class = args[0].as_int().map(|_| ()).map_or_else(
                    || heap.registry().by_name("Tree").unwrap(),
                    |_| heap.registry().by_name("Tree").unwrap(),
                );
                let fresh =
                    heap.alloc_raw(class, vec![Value::Int(123), Value::Null, Value::Null])?;
                Ok(Value::Ref(fresh))
            })),
        )
        .build();
    let ret = session
        .call_with(
            "svc",
            "make",
            &[Value::Int(0)],
            CallOptions::forced(PassMode::RemoteRef),
        )
        .expect("call");
    let stub = ret.as_ref_id().expect("stub handle");
    assert!(session.heap().stub_key(stub).unwrap().is_some());

    session.release_stub(stub).expect("release");
    assert!(!session.heap().contains(stub), "stub freed locally");
    // The server processed the clean: its export table is empty again.
    let server = session.shutdown().expect("shutdown");
    assert!(
        server.state.exports.is_empty(),
        "server export unpinned by DGC clean"
    );
}

#[test]
fn export_roots_keep_pinned_objects_alive_across_local_gc() {
    // An object the peer holds a stub to must survive local mark-sweep
    // even when locally unreachable: the export table is a root set.
    let mut session = Session::builder(registry())
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let root = args[0].as_ref_id().unwrap();
                let _ = heap.get_field(root, "data")?;
                Ok(Value::Null)
            })),
        )
        .build();
    let classes = nrmi::heap::tree::TreeClasses {
        tree: session.heap().registry_handle().by_name("Tree").unwrap(),
    };
    let root = tree::build_random_tree(session.heap(), &classes, 4, 1).unwrap();
    session
        .call_with(
            "svc",
            "peek",
            &[Value::Ref(root)],
            CallOptions::forced(PassMode::RemoteRef),
        )
        .expect("call");

    // Drop all client-side references; only the export pins remain.
    let export_roots = session.client().state.exports.roots();
    assert!(!export_roots.is_empty());
    let freed = mark_sweep(session.heap(), &export_roots).expect("gc");
    // Exported root (and what it reaches) survives; nothing else did.
    for id in export_roots {
        assert!(session.heap().contains(id), "pinned object survived GC");
    }
    let _ = freed;
}

#[test]
fn distributed_cycle_leaks_under_reference_counting() {
    // Build the cross-heap cycle the paper describes: the server
    // allocates a node referencing client nodes (stubs server→client),
    // and links it into the client tree (stub client→server). Neither
    // export can ever unpin via reference counting alone.
    let mut session = Session::builder(registry())
        .serve(
            "svc",
            Box::new(FnService::new(|_m, args, heap| {
                let root = args[0].as_ref_id().unwrap();
                let class = heap.class_of(root)?;
                // new Tree(7, root, null); root.left = fresh — a cycle
                // spanning both address spaces.
                let fresh =
                    heap.alloc_raw(class, vec![Value::Int(7), Value::Ref(root), Value::Null])?;
                heap.set_field(root, "left", Value::Ref(fresh))?;
                Ok(Value::Null)
            })),
        )
        .build();
    let classes = nrmi::heap::tree::TreeClasses {
        tree: session.heap().registry_handle().by_name("Tree").unwrap(),
    };
    let root = tree::build_random_tree(session.heap(), &classes, 1, 3).unwrap();
    session
        .call_with(
            "svc",
            "entangle",
            &[Value::Ref(root)],
            CallOptions::forced(PassMode::RemoteRef),
        )
        .expect("call");

    // Client: root.left is a stub to the server node.
    let stub = session
        .heap()
        .get_ref(root, "left")
        .unwrap()
        .expect("stub link");
    assert!(session.heap().stub_key(stub).unwrap().is_some());
    // Both sides hold exports pinned by the other side's stubs.
    assert!(
        !session.client().state.exports.is_empty(),
        "client object pinned by server"
    );
    let server = session.shutdown().expect("shutdown");
    assert!(
        !server.state.exports.is_empty(),
        "server object pinned by client"
    );
    // Reference counting alone can never release either pin (each side
    // would have to drop its stub first — but each stub is reachable
    // from the other side's pinned object). This is the leak: the pins
    // persist even though the whole structure may be garbage globally.
}
