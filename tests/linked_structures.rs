//! Arbitrary linked data structures, end to end — the paper's opening
//! claim covers "lists, graphs, trees, hash tables, or even
//! non-recursive structures like a 'customer' object with pointers to
//! separate 'address' and 'company' objects". Trees are exercised
//! everywhere else; this suite covers singly-linked lists (with a full
//! in-place reversal — every link changes), doubly-linked rings (cyclic
//! graphs crossing the wire), and the customer/address/company record
//! shape from the introduction.

use nrmi::core::{FnService, Session};
use nrmi::heap::{ClassRegistry, Heap, HeapAccess, ObjId, SharedRegistry, Value};

fn list_registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    reg.define("ListNode")
        .field_int("data")
        .field_ref("next")
        .restorable()
        .register();
    reg.define("RingNode")
        .field_str("label")
        .field_ref("next")
        .field_ref("prev")
        .restorable()
        .register();
    reg.snapshot()
}

fn build_list(heap: &mut Heap, values: &[i32]) -> Vec<ObjId> {
    let class = heap.registry_handle().by_name("ListNode").unwrap();
    let mut nodes = Vec::new();
    let mut next = Value::Null;
    for &v in values.iter().rev() {
        let node = heap
            .alloc(class, vec![Value::Int(v), next.clone()])
            .unwrap();
        next = Value::Ref(node);
        nodes.push(node);
    }
    nodes.reverse(); // head first
    nodes
}

fn list_values(heap: &mut Heap, mut cursor: Option<ObjId>) -> Vec<i32> {
    let mut out = Vec::new();
    while let Some(node) = cursor {
        out.push(heap.get_field(node, "data").unwrap().as_int().unwrap());
        cursor = heap.get_ref(node, "next").unwrap();
    }
    out
}

#[test]
fn in_place_list_reversal_restores_every_link() {
    let mut session = Session::builder(list_registry())
        .serve(
            "lists",
            Box::new(FnService::new(|_m, args, heap| {
                // Classic in-place reversal: every `next` pointer changes.
                let mut prev = Value::Null;
                let mut cursor = args[0].as_ref_id();
                while let Some(node) = cursor {
                    let next = heap.get_field(node, "next")?;
                    heap.set_field(node, "next", prev)?;
                    prev = Value::Ref(node);
                    cursor = next.as_ref_id();
                }
                Ok(prev) // the new head
            })),
        )
        .build();

    let nodes = build_list(session.heap(), &[1, 2, 3, 4, 5]);
    let (head, tail) = (nodes[0], nodes[4]);
    let middle = nodes[2]; // the caller's alias into the interior

    let new_head = session
        .call("lists", "reverse", &[Value::Ref(head)])
        .unwrap()
        .as_ref_id()
        .unwrap();

    // The returned head is the caller's ORIGINAL tail object.
    assert_eq!(new_head, tail, "identity preserved through the reversal");
    assert_eq!(
        list_values(session.heap(), Some(new_head)),
        vec![5, 4, 3, 2, 1]
    );
    // The old head is now the last node.
    assert_eq!(session.heap().get_ref(head, "next").unwrap(), None);
    // The alias into the middle sees its reversed link.
    assert_eq!(
        session.heap().get_ref(middle, "next").unwrap(),
        Some(nodes[1])
    );
}

#[test]
fn list_split_leaves_detached_half_visible_through_alias() {
    // The remote method cuts the list in two; the detached half was
    // mutated BEFORE the cut — those changes must be restored (the
    // unreachable-but-aliased case, on a list instead of a tree).
    let mut session = Session::builder(list_registry())
        .serve(
            "lists",
            Box::new(FnService::new(|_m, args, heap| {
                let head = args[0].as_ref_id().unwrap();
                // Mark every node, then cut after the second node.
                let mut cursor = Some(head);
                while let Some(node) = cursor {
                    let v = heap.get_field(node, "data")?.as_int().unwrap();
                    heap.set_field(node, "data", Value::Int(v + 100))?;
                    cursor = heap.get_ref(node, "next")?;
                }
                let second = heap.get_ref(head, "next")?.unwrap();
                heap.set_field(second, "next", Value::Null)?;
                Ok(Value::Null)
            })),
        )
        .build();

    let nodes = build_list(session.heap(), &[1, 2, 3, 4]);
    let detached_alias = nodes[2]; // will be unlinked by the cut

    session
        .call("lists", "mark_and_cut", &[Value::Ref(nodes[0])])
        .unwrap();

    // Reachable half restored:
    assert_eq!(list_values(session.heap(), Some(nodes[0])), vec![101, 102]);
    // Detached half's mutations restored too, visible via the alias:
    assert_eq!(
        list_values(session.heap(), Some(detached_alias)),
        vec![103, 104]
    );
}

fn build_ring(heap: &mut Heap, labels: &[&str]) -> Vec<ObjId> {
    let class = heap.registry_handle().by_name("RingNode").unwrap();
    let nodes: Vec<ObjId> = labels
        .iter()
        .map(|l| {
            heap.alloc(
                class,
                vec![Value::Str((*l).to_owned()), Value::Null, Value::Null],
            )
            .unwrap()
        })
        .collect();
    let n = nodes.len();
    for i in 0..n {
        heap.set_field(nodes[i], "next", Value::Ref(nodes[(i + 1) % n]))
            .unwrap();
        heap.set_field(nodes[i], "prev", Value::Ref(nodes[(i + n - 1) % n]))
            .unwrap();
    }
    nodes
}

#[test]
fn doubly_linked_ring_survives_remote_splice() {
    // A fully cyclic structure crosses the wire, the server splices a
    // new node into the ring, and the restored cycle is intact — with
    // the new node woven between the caller's ORIGINAL objects.
    let mut session = Session::builder(list_registry())
        .serve(
            "rings",
            Box::new(FnService::new(|_m, args, heap| {
                let at = args[0].as_ref_id().unwrap();
                let class = heap.class_of(at)?;
                let next = heap.get_ref(at, "next")?.unwrap();
                let fresh = heap.alloc_raw(
                    class,
                    vec![
                        Value::Str("spliced".into()),
                        Value::Ref(next),
                        Value::Ref(at),
                    ],
                )?;
                heap.set_field(at, "next", Value::Ref(fresh))?;
                heap.set_field(next, "prev", Value::Ref(fresh))?;
                Ok(Value::Ref(fresh))
            })),
        )
        .build();

    let ring = build_ring(session.heap(), &["a", "b", "c"]);
    let fresh = session
        .call("rings", "splice_after", &[Value::Ref(ring[0])])
        .unwrap()
        .as_ref_id()
        .unwrap();

    let heap = session.heap();
    // Forward walk: a -> spliced -> b -> c -> a.
    let mut cursor = ring[0];
    let mut labels = Vec::new();
    for _ in 0..4 {
        labels.push(
            heap.get_field(cursor, "label")
                .unwrap()
                .as_str()
                .unwrap()
                .to_owned(),
        );
        cursor = heap.get_ref(cursor, "next").unwrap().unwrap();
    }
    assert_eq!(cursor, ring[0], "ring closes after four hops");
    assert_eq!(labels, vec!["a", "spliced", "b", "c"]);
    // Backward links consistent, and the new node sits between originals.
    assert_eq!(heap.get_ref(fresh, "prev").unwrap(), Some(ring[0]));
    assert_eq!(heap.get_ref(ring[1], "prev").unwrap(), Some(fresh));
}

#[test]
fn customer_record_shape_from_the_introduction() {
    // "a 'customer' object with pointers to separate 'address' and
    // 'company' objects" — two customers sharing one company; a remote
    // relocation updates the shared company's address object once, and
    // both customers observe it.
    let mut reg = ClassRegistry::new();
    let address = reg
        .define("Address")
        .field_str("city")
        .serializable()
        .register();
    let company = reg
        .define("Company")
        .field_str("name")
        .field_ref("hq")
        .serializable()
        .register();
    let customer = reg
        .define("Customer")
        .field_str("name")
        .field_ref("address")
        .field_ref("company")
        .restorable()
        .register();
    let mut session = Session::builder(reg.snapshot())
        .serve(
            "crm",
            Box::new(FnService::new(|_m, args, heap| {
                let cust = args[0].as_ref_id().unwrap();
                let comp = heap.get_ref(cust, "company")?.unwrap();
                let hq = heap.get_ref(comp, "hq")?.unwrap();
                heap.set_field(hq, "city", Value::Str("Atlanta".into()))?;
                Ok(Value::Null)
            })),
        )
        .build();

    let heap = session.heap();
    let hq = heap
        .alloc(address, vec![Value::Str("Boston".into())])
        .unwrap();
    let acme = heap
        .alloc(company, vec![Value::Str("ACME".into()), Value::Ref(hq)])
        .unwrap();
    let home1 = heap
        .alloc(address, vec![Value::Str("Decatur".into())])
        .unwrap();
    let home2 = heap
        .alloc(address, vec![Value::Str("Macon".into())])
        .unwrap();
    let c1 = heap
        .alloc(
            customer,
            vec![
                Value::Str("eli".into()),
                Value::Ref(home1),
                Value::Ref(acme),
            ],
        )
        .unwrap();
    let c2 = heap
        .alloc(
            customer,
            vec![
                Value::Str("yannis".into()),
                Value::Ref(home2),
                Value::Ref(acme),
            ],
        )
        .unwrap();

    // Relocate via customer 1 only.
    session
        .call("crm", "relocate_hq", &[Value::Ref(c1)])
        .unwrap();

    let heap = session.heap();
    // Customer 2's view of the SHARED company updated too:
    let comp2 = heap.get_ref(c2, "company").unwrap().unwrap();
    assert_eq!(comp2, acme, "still one company object");
    let hq2 = heap.get_ref(comp2, "hq").unwrap().unwrap();
    assert_eq!(
        heap.get_field(hq2, "city").unwrap(),
        Value::Str("Atlanta".into())
    );
    // Personal addresses untouched.
    assert_eq!(
        heap.get_field(home1, "city").unwrap(),
        Value::Str("Decatur".into())
    );
    assert_eq!(
        heap.get_field(home2, "city").unwrap(),
        Value::Str("Macon".into())
    );
}
