//! Regression: a client stalled mid-call must not block other clients.
//!
//! The deadlock this guards against: under the old one-big-lock server,
//! a remote-ref call holds the server lock while the service's heap
//! accesses issue `GetField` callbacks to the *calling* client. If that
//! client is slow to answer, the server worker sits in `recv()` with the
//! lock held and every other connection — including ones talking to
//! completely independent services — freezes for the duration.
//!
//! With the pooled server, a stalled callback pins only the stalling
//! connection's worker (and the mutex of the one service it is executing
//! in). Client B's cold *and* warm calls on an independent service must
//! complete in bounded time while client A is parked mid-call. The same
//! scenario runs over TCP and Unix-domain sockets.

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use nrmi::core::{
    CallOptions, FnService, NrmiError, PassMode, RemoteSession, ServerNode, ServerPool,
};
use nrmi::heap::{ClassRegistry, HeapAccess, SharedRegistry, Value};
use nrmi::transport::{
    Frame, Listener, MachineSpec, TcpListenerTransport, TcpTransport, Transport,
};
#[cfg(unix)]
use nrmi::transport::{UdsListenerTransport, UdsTransport};

/// How long client A delays its callback reply. Client B's bound below
/// must stay comfortably under this, so a serialized server fails loudly.
const STALL: Duration = Duration::from_millis(1200);

/// Wall-clock budget for ALL of client B's calls during the stall.
const B_BUDGET: Duration = Duration::from_millis(900);

/// A transport that delays exactly the second frame it sends. For the
/// stalling client that second frame is the `GetField` callback reply —
/// the request goes out promptly, the server parks mid-call waiting for
/// the answer, and later frames (shutdown) are unaffected.
struct StallSecondSend<T: Transport> {
    inner: T,
    sent: usize,
}

impl<T: Transport> Transport for StallSecondSend<T> {
    fn send(&mut self, frame: &Frame) -> nrmi::transport::Result<()> {
        if self.sent == 1 {
            thread::sleep(STALL);
        }
        self.sent += 1;
        self.inner.send(frame)
    }

    fn recv(&mut self) -> nrmi::transport::Result<Frame> {
        self.inner.recv()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> nrmi::transport::Result<Frame> {
        self.inner.recv_timeout(timeout)
    }
}

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    // class Cell extends UnicastRemoteObject { int v; } — passing one by
    // reference makes the server read it back through a callback.
    reg.define("Cell").field_int("v").remote().register();
    // class Box implements Restorable { int v; } — client B's warm-call
    // payload.
    reg.define("Box").field_int("v").restorable().register();
    reg.snapshot()
}

fn build_server(registry: &SharedRegistry) -> ServerNode {
    let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
    // The stalling service: reading the remote-ref argument's field
    // sends a GetField callback to the caller and blocks this worker —
    // and ONLY this worker — until the caller answers.
    server.bind(
        "slow",
        Box::new(FnService::new(|_m, args, heap| {
            let cell = args[0].as_ref_id().ok_or_else(|| NrmiError::app("cell"))?;
            let v = heap.get_field(cell, "v")?.as_int().unwrap_or(0);
            Ok(Value::Int(v * 2))
        })),
    );
    // An independent service for client B: pure local heap work.
    server.bind(
        "fast",
        Box::new(FnService::new(|_m, args, heap| {
            let b = args[0].as_ref_id().ok_or_else(|| NrmiError::app("box"))?;
            let v = heap.get_field(b, "v")?.as_int().unwrap_or(0);
            heap.set_field(b, "v", Value::Int(v + 1))?;
            Ok(Value::Int(v + 1))
        })),
    );
    server
}

/// Runs the scenario over an already-bound listener, with `connect`
/// dialing a fresh transport to it.
fn stalled_client_does_not_block_others<L, C, T>(listener: L, connect: C)
where
    L: Listener + Send + 'static,
    C: Fn() -> T,
    T: Transport + 'static,
{
    let registry = registry();
    let handle = ServerPool::new().serve(build_server(&registry), listener);

    // --- Client A: remote-ref call whose callback reply stalls ----------
    let a_registry = registry.clone();
    let a_transport = StallSecondSend {
        inner: connect(),
        sent: 0,
    };
    let (in_call_tx, in_call_rx) = mpsc::channel();
    let a_thread = thread::spawn(move || {
        let mut a = RemoteSession::over(a_registry, a_transport);
        let cell_cls = a.heap().registry_handle().by_name("Cell").unwrap();
        let cell = a.heap().alloc_raw(cell_cls, vec![Value::Int(21)]).unwrap();
        in_call_tx.send(()).unwrap();
        let started = Instant::now();
        let ret = a
            .call_with(
                "slow",
                "read",
                &[Value::Ref(cell)],
                CallOptions::forced(PassMode::RemoteRef),
            )
            .expect("stalled call still completes");
        let stalled_for = started.elapsed();
        a.close().expect("close A");
        (ret, stalled_for)
    });

    // --- Client B: independent service, while A is parked mid-call ------
    in_call_rx.recv().expect("A about to call");
    // Let A's request reach the server and its worker park on the
    // callback. A's reply is held for STALL, so the window is wide.
    thread::sleep(Duration::from_millis(150));

    let mut b = RemoteSession::over(registry, connect());
    let box_cls = b.heap().registry_handle().by_name("Box").unwrap();
    let bx = b.heap().alloc_raw(box_cls, vec![Value::Int(0)]).unwrap();
    let b_started = Instant::now();
    let cold = b
        .call("fast", "bump", &[Value::Ref(bx)])
        .expect("B cold call");
    assert_eq!(cold, Value::Int(1));
    let warm1 = b
        .call_warm("fast", "bump", &[Value::Ref(bx)])
        .expect("B warm seed");
    assert_eq!(warm1, Value::Int(2));
    let warm2 = b
        .call_warm("fast", "bump", &[Value::Ref(bx)])
        .expect("B warm delta");
    assert_eq!(warm2, Value::Int(3));
    let b_elapsed = b_started.elapsed();
    b.close().expect("close B");
    assert!(
        b_elapsed < B_BUDGET,
        "client B took {b_elapsed:?} while client A was stalled — \
         head-of-line blocking is back"
    );

    let (a_ret, a_stalled_for) = a_thread.join().expect("client A thread");
    assert_eq!(a_ret, Value::Int(42));
    // Prove the stall actually happened mid-call: A's call cannot have
    // finished before its delayed callback reply was sent.
    assert!(
        a_stalled_for >= STALL,
        "client A finished in {a_stalled_for:?}; the callback never stalled"
    );

    // Under `--features lockcheck`, every scenario above doubles as a
    // lock-discipline audit of the real server (DESIGN.md §3i).
    #[cfg(feature = "lockcheck")]
    nrmi::check::assert_discipline_clean("stalled-callback: pool stays live");
    let server = handle.shutdown().expect("shutdown");
    assert!(server.is_bound("slow") && server.is_bound("fast"));
}

#[test]
fn stalled_callback_does_not_block_other_clients_tcp() {
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    stalled_client_does_not_block_others(listener, move || {
        TcpTransport::connect(addr).expect("connect")
    });
}

#[cfg(unix)]
#[test]
fn stalled_callback_does_not_block_other_clients_uds() {
    let path = std::env::temp_dir().join(format!("nrmi-stall-{}", std::process::id()));
    let listener = UdsListenerTransport::bind(&path).expect("bind");
    let connect_path = path.clone();
    stalled_client_does_not_block_others(listener, move || {
        UdsTransport::connect(&connect_path).expect("connect")
    });
}
