//! The full protocol over real TCP sockets: genuine two-process-style
//! distribution (server on its own thread with its own heap, bytes on a
//! real socket).

use std::thread;

use nrmi::core::{serve_tcp, CallOptions, FnService, NrmiError, PassMode, ServerNode, Session};
use nrmi::heap::tree::{self};
use nrmi::heap::{ClassRegistry, HeapAccess, SharedRegistry, Value};
use nrmi::transport::{MachineSpec, TcpListenerTransport};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = tree::register_tree_classes(&mut reg);
    reg.snapshot()
}

fn spawn_server(
    registry: SharedRegistry,
) -> (std::net::SocketAddr, thread::JoinHandle<ServerNode>) {
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = thread::spawn(move || {
        let mut server = ServerNode::new(registry, MachineSpec::fast());
        server.bind(
            "svc",
            Box::new(FnService::new(|method, args, heap| match method {
                "foo" => {
                    let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                    tree::run_foo(heap, root)?;
                    Ok(Value::Null)
                }
                "echo" => Ok(args.first().cloned().unwrap_or(Value::Null)),
                "fail" => Err(NrmiError::app("tcp failure path")),
                other => Err(NrmiError::app(format!("no method {other}"))),
            })),
        );
        serve_tcp(&mut server, &listener, 1).expect("serve");
        server
    });
    (addr, handle)
}

#[test]
fn copy_restore_over_tcp_reproduces_figure_2() {
    let registry = registry();
    let (addr, server) = spawn_server(registry.clone());
    let mut client = Session::connect_tcp(registry, addr).expect("connect");
    let classes = tree::TreeClasses {
        tree: client.heap().registry_handle().by_name("Tree").unwrap(),
    };
    let ex = tree::build_running_example(client.heap(), &classes).unwrap();
    client
        .call("svc", "foo", &[Value::Ref(ex.root)])
        .expect("remote foo");
    let violations = tree::figure2_violations(client.heap(), &ex).unwrap();
    assert!(violations.is_empty(), "{violations:?}");
    client.close().expect("close");
    server.join().expect("server thread");
}

#[test]
fn remote_ref_callbacks_work_over_tcp() {
    let registry = registry();
    let (addr, server) = spawn_server(registry.clone());
    let mut client = Session::connect_tcp(registry, addr).expect("connect");
    let classes = tree::TreeClasses {
        tree: client.heap().registry_handle().by_name("Tree").unwrap(),
    };
    let ex = tree::build_running_example(client.heap(), &classes).unwrap();
    client
        .call_with(
            "svc",
            "foo",
            &[Value::Ref(ex.root)],
            CallOptions::forced(PassMode::RemoteRef),
        )
        .expect("remote-ref foo over tcp");
    // Mutations landed directly on the caller's objects.
    assert_eq!(
        client.heap().get_field(ex.alias1_target, "data").unwrap(),
        Value::Int(0)
    );
    assert_eq!(
        client.heap().get_field(ex.alias2_target, "data").unwrap(),
        Value::Int(9)
    );
    client.close().expect("close");
    server.join().expect("server thread");
}

#[test]
fn errors_and_primitives_cross_the_socket() {
    let registry = registry();
    let (addr, server) = spawn_server(registry.clone());
    let mut client = Session::connect_tcp(registry, addr).expect("connect");
    let ret = client
        .call("svc", "echo", &[Value::Str("påylöad".into())])
        .expect("echo");
    assert_eq!(ret, Value::Str("påylöad".into()));
    let err = client.call("svc", "fail", &[]).unwrap_err();
    assert!(err.to_string().contains("tcp failure path"), "{err}");
    // Session still usable after a remote exception.
    let ret = client
        .call("svc", "echo", &[Value::Long(-9)])
        .expect("echo after error");
    assert_eq!(ret, Value::Long(-9));
    client.close().expect("close");
    server.join().expect("server thread");
}

#[test]
fn factory_pattern_works_over_tcp() {
    // First-class remote objects across a real socket: open an account
    // through the factory, then dispatch methods on the returned stub.
    let mut reg = ClassRegistry::new();
    let account = reg
        .define("Account")
        .field_long("cents")
        .remote()
        .register();
    let registry = reg.snapshot();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server_registry = registry.clone();
    let server = thread::spawn(move || {
        let mut node = ServerNode::new(server_registry, MachineSpec::fast());
        node.bind(
            "bank",
            Box::new(FnService::new(move |_m, _a, heap| {
                Ok(Value::Ref(heap.alloc_raw(account, vec![Value::Long(0)])?))
            })),
        );
        node.bind_class(
            account,
            Box::new(FnService::new(|method, args, heap| {
                let this = args[0].as_ref_id().unwrap();
                match method {
                    "deposit" => {
                        let amount = args[1].as_long().unwrap_or(0);
                        let v = heap.get_field(this, "cents")?.as_long().unwrap_or(0);
                        heap.set_field(this, "cents", Value::Long(v + amount))?;
                        Ok(Value::Long(v + amount))
                    }
                    _ => Err(NrmiError::app("nope")),
                }
            })),
        );
        nrmi::core::serve_tcp(&mut node, &listener, 1).expect("serve");
    });

    let mut client = Session::connect_tcp(registry, addr).expect("connect");
    let stub = client
        .call("bank", "open", &[])
        .unwrap()
        .as_ref_id()
        .unwrap();
    assert!(client.heap().stub_key(stub).unwrap().is_some());
    assert_eq!(
        client
            .call_on(stub, "deposit", &[Value::Long(125)])
            .unwrap(),
        Value::Long(125)
    );
    assert_eq!(
        client.call_on(stub, "deposit", &[Value::Long(25)]).unwrap(),
        Value::Long(150)
    );
    client.close().expect("close");
    server.join().expect("server thread");
}

#[test]
fn sequential_clients_share_one_server() {
    let registry = registry();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server_registry = registry.clone();
    let handle = thread::spawn(move || {
        let mut server = ServerNode::new(server_registry, MachineSpec::fast());
        let mut counter = 0i32;
        server.bind(
            "counter",
            Box::new(FnService::new(move |_m, _a, _h| {
                counter += 1;
                Ok(Value::Int(counter))
            })),
        );
        serve_tcp(&mut server, &listener, 3).expect("serve");
    });
    for expected in 1..=3 {
        let mut client = Session::connect_tcp(registry.clone(), addr).expect("connect");
        let ret = client.call("counter", "tick", &[]).expect("tick");
        assert_eq!(
            ret,
            Value::Int(expected),
            "server state persists across connections"
        );
        client.close().expect("close");
    }
    handle.join().expect("server thread");
}
