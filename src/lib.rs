//! # NRMI — Natural Remote Method Invocation, in Rust
//!
//! A reproduction of *NRMI: Natural and Efficient Middleware*
//! (Tilevich & Smaragdakis, ICDCS 2003): RPC middleware with
//! **call-by-copy-restore** semantics for arbitrary linked data
//! structures, alongside call-by-copy and call-by-reference.
//!
//! This facade crate re-exports the full stack:
//!
//! * [`heap`] — the managed object-graph substrate (classes, aliased
//!   mutable graphs, traversal, GC);
//! * [`wire`] — alias-preserving graph serialization, linear maps, deltas;
//! * [`transport`] — simulated-time network model, in-memory and TCP
//!   transports, registry;
//! * [`core`] — the calling semantics and the copy-restore algorithm
//!   itself;
//! * [`check`] — static schema analysis, protocol model checking, and
//!   heap diagnostics (`nrmi-check`).
//!
//! ## Quickstart
//!
//! ```
//! use nrmi::prelude::*;
//!
//! # fn main() -> Result<(), NrmiError> {
//! // Classes are the shared "classpath"; markers pick the semantics.
//! let mut reg = ClassRegistry::new();
//! let cell = reg.define("Cell").field_int("value").restorable().register();
//!
//! let mut session = Session::builder(reg.snapshot())
//!     .serve("bump", Box::new(FnService::new(|_m, args, heap| {
//!         let cell = args[0].as_ref_id().ok_or_else(|| NrmiError::app("want ref"))?;
//!         let v = heap.get_field(cell, "value")?.as_int().unwrap_or(0);
//!         heap.set_field(cell, "value", Value::Int(v + 1))?;
//!         Ok(Value::Null)
//!     })))
//!     .build();
//!
//! let obj = session.heap().alloc(cell, vec![Value::Int(41)])?;
//! session.call("bump", "bump", &[Value::Ref(obj)])?;
//! // The server's mutation was restored onto the caller's object:
//! assert_eq!(session.heap().get_field(obj, "value")?, Value::Int(42));
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for the paper's applications; the [`prelude`] brings
//! the common types into scope.

#![deny(unsafe_code)]

pub use nrmi_check as check;
pub use nrmi_core as core;
pub use nrmi_heap as heap;
pub use nrmi_transport as transport;
pub use nrmi_wire as wire;

/// One-stop imports for applications.
pub mod prelude {
    pub use nrmi_core::{
        CallOptions, ClientNode, FnService, InterfaceDef, NrmiError, ParamType, PassMode,
        RemoteService, RuntimeProfile, ServerNode, Session, TypedService,
    };
    pub use nrmi_heap::collections::{HList, HMap};
    pub use nrmi_heap::{
        ClassRegistry, FieldType, Heap, HeapAccess, HeapError, LinearMap, ObjId, Value,
    };
    pub use nrmi_transport::{LinkSpec, MachineSpec, SimEnv};
}
